//! Observability invariants: metrics collection must never perturb the
//! bit-comparable report, and collected counters must be independent of
//! the worker/thread configuration.

use ipv6web::obs;
use ipv6web::{run_study, Scenario};
use std::sync::Mutex;

/// The obs registry is process-global; tests that enable/reset it run
/// under one lock so their snapshots cannot interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn tiny(seed: u64) -> Scenario {
    let mut s = Scenario::quick(seed);
    s.population.n_sites = 600;
    s.tail_sites = 100;
    s.campaign.total_weeks = 12;
    s.timeline.total_weeks = 12;
    s.timeline.iana_week = 4;
    s.timeline.ipv6_day_week = 9;
    s.fig1_from_week = 2;
    s.analysis.min_paired_samples = 4;
    s.route_change = Some((6, 0.03, 0.01));
    s
}

#[test]
fn report_bytes_identical_with_metrics_on_and_off() {
    let _g = OBS_LOCK.lock().unwrap();
    obs::disable();
    obs::reset();
    let off = run_study(&tiny(13)).expect("valid scenario");
    obs::enable();
    let on = run_study(&tiny(13)).expect("valid scenario");
    obs::disable();
    obs::reset();
    assert_eq!(
        serde_json::to_string(&off.report).unwrap(),
        serde_json::to_string(&on.report).unwrap(),
        "metrics collection must not leak into the report"
    );
    for (da, db) in off.dbs.iter().zip(&on.dbs) {
        assert_eq!(da, db, "metrics collection must not perturb measurements");
    }
}

#[test]
fn counters_identical_across_thread_and_worker_counts() {
    let _g = OBS_LOCK.lock().unwrap();

    let run = |threads: &str, workers: usize| {
        obs::reset();
        obs::enable();
        std::env::set_var("IPV6WEB_THREADS", threads);
        let mut s = tiny(17);
        s.campaign.workers = workers;
        let _study = run_study(&s).expect("valid scenario");
        std::env::remove_var("IPV6WEB_THREADS");
        obs::disable();
        obs::flush_thread();
        let snap = obs::snapshot();
        obs::reset();
        snap
    };

    let serial = run("1", 1);
    let parallel = run("4", 8);
    assert_eq!(serial.counters, parallel.counters, "counters must not depend on scheduling");
    assert_eq!(serial.histograms, parallel.histograms, "histograms must not depend on scheduling");
    // sanity: the campaign actually recorded something
    assert!(serial.counter("monitor.probes") > 0, "probes counted");
    assert!(serial.counter("bgp.routes_computed") > 0, "routes counted");
    // gauges are allowed to differ (they report the configuration itself)
    assert_eq!(serial.gauge("par.peak_threads"), 1);
    assert_eq!(parallel.gauge("par.peak_threads"), 4);
    // even with 8 probe workers configured, the shared budget caps them
    assert!(parallel.gauge("monitor.peak_workers") <= 4, "probe pool broke the thread budget");
}

#[test]
fn nat64_counters_identical_across_thread_and_worker_counts() {
    // Same scheduling-invariance contract, but for the translation-plane
    // counters: DNS64 synthesis and NAT64 path selection run inside the
    // probe workers, so any scheduling dependence would show up here.
    let _g = OBS_LOCK.lock().unwrap();

    let tiny_nat64 = |seed: u64| {
        let mut s = Scenario::nat64(seed);
        s.population.n_sites = 400;
        s.tail_sites = 60;
        s.campaign.total_weeks = 12;
        s.timeline.total_weeks = 12;
        s.timeline.iana_week = 4;
        s.timeline.ipv6_day_week = 9;
        s.fig1_from_week = 2;
        s.analysis.min_paired_samples = 4;
        s.route_change = Some((6, 0.03, 0.01));
        s
    };
    let run = |threads: &str, workers: usize| {
        obs::reset();
        obs::enable();
        std::env::set_var("IPV6WEB_THREADS", threads);
        let mut s = tiny_nat64(31);
        s.campaign.workers = workers;
        let _study = run_study(&s).expect("valid scenario");
        std::env::remove_var("IPV6WEB_THREADS");
        obs::disable();
        obs::flush_thread();
        let snap = obs::snapshot();
        obs::reset();
        snap
    };

    let serial = run("1", 1);
    let parallel = run("4", 8);
    assert_eq!(serial.counters, parallel.counters, "xlat counters must not depend on scheduling");
    assert_eq!(serial.histograms, parallel.histograms, "histograms must not depend on scheduling");
    // sanity: the translation plane actually fired
    assert!(serial.counter("dns64.synthesized") > 0, "DNS64 synthesized AAAAs");
    assert!(serial.counter("xlat.translated_paths") > 0, "probes crossed a NAT64 gateway");
}

#[test]
fn worker_budget_is_never_exceeded() {
    // Two-level fan-out: six campaigns race at the top, each opening a
    // probe pool below. The peak concurrency observed at EITHER level must
    // stay inside IPV6WEB_THREADS, regardless of how many workers the
    // campaign config asks for.
    let _g = OBS_LOCK.lock().unwrap();
    obs::reset();
    obs::enable();
    std::env::set_var("IPV6WEB_THREADS", "4");
    let mut s = tiny(29);
    s.campaign.workers = 8;
    let _study = run_study(&s).expect("valid scenario");
    std::env::remove_var("IPV6WEB_THREADS");
    obs::disable();
    obs::flush_thread();
    let snap = obs::snapshot();
    obs::reset();
    let outer = snap.gauge("par.peak_threads");
    let inner = snap.gauge("monitor.peak_workers");
    assert!(outer >= 2, "vantage fan-out never actually ran in parallel");
    assert!(outer <= 4, "par.peak_threads {outer} exceeds the budget of 4");
    assert!(inner <= 4, "monitor.peak_workers {inner} exceeds the budget of 4");
}

#[test]
fn disabled_registry_stays_empty_through_a_study() {
    let _g = OBS_LOCK.lock().unwrap();
    obs::disable();
    obs::reset();
    let _study = run_study(&tiny(19)).expect("valid scenario");
    obs::flush_thread();
    let snap = obs::snapshot();
    assert!(snap.counters.is_empty(), "disabled collection must record nothing");
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
}

#[test]
fn study_timings_cover_every_phase() {
    // lock: a concurrent sibling with collection enabled would otherwise
    // absorb this study's counters into its snapshot
    let _g = OBS_LOCK.lock().unwrap();
    let study = run_study(&tiny(23)).expect("valid scenario");
    let names: Vec<&str> = study.timings.phases.iter().map(|p| p.name.as_str()).collect();
    for phase in [
        "world: topology",
        "world: population",
        "world: dns zone",
        "world: route tables (v4)",
        "world: route tables (v6)",
        "world: route tables (v6 epoch)",
        "ipv6 day rounds",
        "analysis",
        "analysis: ipv6 day",
        "report assembly",
    ] {
        assert!(names.contains(&phase), "missing phase {phase:?} in {names:?}");
    }
    assert!(names.iter().filter(|n| n.starts_with("campaign: ")).count() >= 6, "six campaigns");
    assert!(study.timings.total_seconds() > 0.0);
    // spans collected per run: a second study must not inherit this one's
    let again = run_study(&tiny(23)).expect("valid scenario");
    assert_eq!(again.timings.phases.len(), study.timings.phases.len());
}
