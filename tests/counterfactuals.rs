//! Counterfactual worlds: the pipeline must be able to *falsify* the
//! paper's hypotheses, not merely confirm them. If H1 still "held" in a
//! world with a broken IPv6 data plane, Table 8 would be a rubber stamp.

use ipv6web::analysis::{AsCategory, SiteClass};
use ipv6web::{run_study, Scenario};

fn tiny(seed: u64) -> Scenario {
    let mut s = Scenario::quick(seed);
    s.population.n_sites = 700;
    s.tail_sites = 100;
    s.campaign.total_weeks = 14;
    s.timeline.total_weeks = 14;
    s.timeline.iana_week = 5;
    s.timeline.ipv6_day_week = 11;
    s.fig1_from_week = 2;
    s.route_change = Some((7, 0.03, 0.01));
    s.analysis.min_paired_samples = 5;
    s
}

#[test]
fn broken_v6_forwarding_rejects_h1() {
    // Every dual-stack AS forwards IPv6 at 3-15% of IPv4 capacity: the
    // world where the equipment vendors' claims were false.
    let mut s = tiny(13);
    s.topology.dual = s.topology.dual.with_forwarding_penalty(0.8, (0.03, 0.15));
    let study = run_study(&s).expect("valid scenario");
    let bad_sp = study
        .analyses
        .iter()
        .flat_map(|a| a.sp_groups.values())
        .filter(|g| g.category == AsCategory::Bad)
        .count();
    assert!(bad_sp > 0, "a broken data plane must surface network-attributable SP ASes");
    assert!(
        !study.report.h1.holds,
        "H1 must be rejected in the broken-forwarding world: {}",
        study.report.h1.summary
    );
}

#[test]
fn full_parity_world_dissolves_dp() {
    // The paper's recommendation carried to completion: adoption and
    // peering at parity, no tunnels, no forwarding penalty.
    let mut s = tiny(11);
    s.topology.dual = s.topology.dual.toward_parity(1.0);
    let study = run_study(&s).expect("valid scenario");
    let dp: usize = study.analyses.iter().map(|a| a.count_of(SiteClass::Dp)).sum();
    assert_eq!(dp, 0, "identical topologies must yield identical paths");
    let sp: usize = study.analyses.iter().map(|a| a.count_of(SiteClass::Sp)).sum();
    assert!(sp > 0, "same-location sites must all be SP");
    // SP performance still comparable (servers are the only residual drag)
    assert!(study.report.h1.holds, "{}", study.report.h1.summary);
}

#[test]
fn clean_world_has_no_transitions_or_trends() {
    let mut s = tiny(17);
    s.disturbances = ipv6web::monitor::DisturbanceConfig::none();
    s.route_change = None;
    let study = run_study(&s).expect("valid scenario");
    let non_insufficient: usize = study
        .analyses
        .iter()
        .flat_map(|a| &a.removed)
        .filter(|r| {
            !matches!(r.cause, ipv6web::analysis::sanitize::RemovalCause::InsufficientSamples)
        })
        .count();
    // without injected messiness or route changes, the sanitizer has
    // (almost) nothing to catch — tolerate a stray boundary case
    assert!(
        non_insufficient <= 2,
        "clean world produced {non_insufficient} transition/trend removals"
    );
    // and no path-change attribution row exists at all
    assert!(study.report.transition_path_changes.is_empty());
}

#[test]
fn route_change_epoch_produces_attributable_transitions() {
    // With aggressive mid-campaign route changes, some sites must show
    // sharp transitions the report attributes to real path changes. The
    // length-11 median filter needs a long series on both sides of the
    // step, so this test keeps the full 26-week quick timeline.
    let mut s = Scenario::quick(19);
    s.population.n_sites = 900;
    s.tail_sites = 100;
    s.disturbances = ipv6web::monitor::DisturbanceConfig::none();
    s.route_change = Some((10, 0.25, 0.10));
    let study = run_study(&s).expect("valid scenario");
    assert!(!study.report.transition_path_changes.is_empty());
    let (transitions, changed): (usize, usize) = study
        .report
        .transition_path_changes
        .iter()
        .fold((0, 0), |(t, c), (_, tt, cc)| (t + tt, c + cc));
    assert!(transitions > 0, "aggressive route changes must trip the median-filter detector");
    assert!(changed > 0, "and some transitions must be attributable to changed paths");
    assert!(changed <= transitions);
}
