//! Fault-injection invariants: deterministic chaos, graceful degradation,
//! and exact accounting of everything injected.

use ipv6web::faults::{
    BgpFlap, DnsDisruption, DnsFaultKind, FaultPlan, HttpDisruption, HttpFaultKind, LinkFlap,
    LossBurst, VantageOutage,
};
use ipv6web::topology::Family;
use ipv6web::{obs, run_study, run_study_mode, ExecutionMode, Scenario};
use proptest::prelude::*;
use std::sync::Mutex;

/// The obs registry is process-global; tests that enable/reset it run
/// under one lock so their snapshots cannot interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Same story for the IPV6WEB_THREADS variable.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn tiny(seed: u64) -> Scenario {
    let mut s = Scenario::quick(seed);
    s.population.n_sites = 600;
    s.tail_sites = 100;
    s.campaign.total_weeks = 12;
    s.timeline.total_weeks = 12;
    s.timeline.iana_week = 4;
    s.timeline.ipv6_day_week = 9;
    s.fig1_from_week = 2;
    s.analysis.min_paired_samples = 4;
    s.route_change = Some((6, 0.03, 0.01));
    s
}

fn tiny_faulted(seed: u64) -> Scenario {
    let mut s = tiny(seed);
    s.faults = FaultPlan::demo(s.timeline.total_weeks);
    s
}

#[test]
fn faulted_run_identical_across_thread_counts() {
    // Fault decisions are keyed on (seed, entity, week, round), never on
    // scheduling, so the chaos scenario must be exactly as reproducible as
    // the clean one.
    let _g = ENV_LOCK.lock().unwrap();
    std::env::set_var("IPV6WEB_THREADS", "1");
    let a = run_study(&tiny_faulted(31)).expect("valid scenario");
    std::env::set_var("IPV6WEB_THREADS", "4");
    let b = run_study(&tiny_faulted(31)).expect("valid scenario");
    std::env::remove_var("IPV6WEB_THREADS");
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap(),
        "thread count must never leak into a faulted report"
    );
    for (da, db) in a.dbs.iter().zip(&b.dbs) {
        assert_eq!(da, db, "thread count must never leak into faulted databases");
    }
}

#[test]
fn faulted_sequential_and_parallel_runs_are_byte_identical() {
    // Vantage-parallel execution under a live fault plan: injected chaos is
    // entity-keyed, so racing the six campaigns must reproduce the
    // sequential pipeline byte for byte at every worker budget.
    let _g = ENV_LOCK.lock().unwrap();
    let mut runs = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("IPV6WEB_THREADS", threads);
        for mode in [ExecutionMode::Sequential, ExecutionMode::VantageParallel] {
            let s = run_study_mode(&tiny_faulted(23), mode).expect("valid scenario");
            runs.push((threads, mode, serde_json::to_string(&s.report).unwrap(), s.dbs));
        }
    }
    std::env::remove_var("IPV6WEB_THREADS");
    let (_, _, ref json0, ref dbs0) = runs[0];
    for (threads, mode, json, dbs) in &runs[1..] {
        assert_eq!(
            json, json0,
            "faulted report diverged at IPV6WEB_THREADS={threads}, mode={mode:?}"
        );
        assert_eq!(
            dbs, dbs0,
            "faulted databases diverged at IPV6WEB_THREADS={threads}, mode={mode:?}"
        );
    }
}

#[test]
fn faulted_run_differs_from_clean_run() {
    let clean = run_study(&tiny(31)).expect("valid scenario");
    let faulted = run_study(&tiny_faulted(31)).expect("valid scenario");
    assert_ne!(
        serde_json::to_string(&clean.report).unwrap(),
        serde_json::to_string(&faulted.report).unwrap(),
        "the demo plan must actually perturb the campaign"
    );
    // the demo plan takes Penn (live from week 0) dark for weeks [6, 8)
    let penn = faulted.dbs.iter().find(|d| d.vantage == "Penn").unwrap();
    assert_eq!(penn.outage_weeks, vec![6, 7]);
}

#[test]
fn empty_plan_is_bit_identical_to_no_faults() {
    // A plan whose vectors are all empty — even with a non-default retry
    // policy — must leave the whole pipeline untouched.
    let base = run_study(&tiny(13)).expect("valid scenario");
    let mut s = tiny(13);
    s.faults.retry.max_attempts = 9;
    s.faults.retry.base_backoff_ms = 10.0;
    assert!(s.faults.is_empty());
    let empty = run_study(&s).expect("valid scenario");
    assert_eq!(
        serde_json::to_string(&base.report).unwrap(),
        serde_json::to_string(&empty.report).unwrap(),
        "an empty fault plan must be byte-invisible"
    );
    for (da, db) in base.dbs.iter().zip(&empty.dbs) {
        assert_eq!(da, db);
    }
}

#[test]
fn injected_faults_are_counted_exactly_once() {
    let _g = OBS_LOCK.lock().unwrap();
    obs::reset();
    obs::enable();
    let _study = run_study(&tiny_faulted(17)).expect("valid scenario");
    obs::disable();
    obs::flush_thread();
    let snap = obs::snapshot();
    obs::reset();
    let total = snap.counter("faults.injected_total");
    assert!(total > 0, "the demo plan must inject something");
    let by_kind: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("faults.injected."))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(by_kind, total, "every injected fault must land in exactly one kind counter");
}

// ------------------------------------------------------------- proptest

fn arb_window(total_weeks: u32) -> impl Strategy<Value = (u32, u32)> {
    // sample independently, then clamp the length so the window always
    // fits (the vendored proptest has no flat_map)
    (0..total_weeks, 1..=total_weeks)
        .prop_map(move |(from, len)| (from, len.min(total_weeks - from)))
}

fn arb_plan(total_weeks: u32) -> impl Strategy<Value = FaultPlan> {
    let link = (any::<bool>(), arb_window(total_weeks), 0.0..=0.05f64).prop_map(
        |(v6, (from_week, weeks), edge_frac)| LinkFlap {
            family: if v6 { Family::V6 } else { Family::V4 },
            from_week,
            weeks,
            edge_frac,
        },
    );
    let burst = (any::<bool>(), arb_window(total_weeks), 0.0..=0.1f64, 0.0..=0.05f64).prop_map(
        |(v6, (from_week, weeks), edge_frac, extra_loss)| LossBurst {
            family: if v6 { Family::V6 } else { Family::V4 },
            from_week,
            weeks,
            edge_frac,
            extra_loss,
        },
    );
    let flap = (1..total_weeks, 0.0..=0.02f64, 0.0..=0.02f64)
        .prop_map(|(week, gain_frac, loss_frac)| BgpFlap { week, gain_frac, loss_frac });
    let dns = (0..3u8, 0.0..=0.05f64, arb_window(total_weeks)).prop_map(
        |(kind, prob, (from_week, weeks))| DnsDisruption {
            kind: match kind {
                0 => DnsFaultKind::ServFail,
                1 => DnsFaultKind::Timeout,
                _ => DnsFaultKind::Truncated,
            },
            prob,
            from_week,
            weeks,
        },
    );
    let http = (0..3u8, 0.0..=0.05f64, 100.0..=1000.0f64, arb_window(total_weeks)).prop_map(
        |(kind, prob, stall_ms, (from_week, weeks))| HttpDisruption {
            kind: match kind {
                0 => HttpFaultKind::Stall,
                1 => HttpFaultKind::Reset,
                _ => HttpFaultKind::Truncate,
            },
            prob,
            stall_ms,
            from_week,
            weeks,
        },
    );
    let outage = (0..4u8, arb_window(total_weeks)).prop_map(|(which, (from_week, weeks))| {
        let vantage = match which {
            0 => "Penn",
            1 => "Comcast",
            2 => "Tsinghua U.",
            _ => "nowhere", // names that match no vantage must be harmless
        };
        VantageOutage { vantage: vantage.into(), from_week, weeks }
    });
    (
        proptest::collection::vec(link, 0..2),
        proptest::collection::vec(burst, 0..2),
        proptest::collection::vec(flap, 0..2),
        proptest::collection::vec(dns, 0..2),
        proptest::collection::vec(http, 0..2),
        proptest::collection::vec(outage, 0..2),
    )
        .prop_map(
            |(link_flaps, loss_bursts, bgp_flaps, dns_faults, http_faults, vantage_outages)| {
                FaultPlan {
                    link_flaps,
                    loss_bursts,
                    bgp_flaps,
                    dns_faults,
                    http_faults,
                    vantage_outages,
                    ..FaultPlan::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary valid plans must never panic the driver, and everything
    /// they inject must show up in exactly one `faults.injected.*` counter.
    #[test]
    fn random_plans_never_panic_and_account_for_every_fault(
        plan in arb_plan(12),
        seed in 0u64..1000,
    ) {
        let _g = OBS_LOCK.lock().unwrap();
        let mut s = tiny(seed);
        s.faults = plan;
        prop_assert!(s.validate().is_ok(), "generated plans are valid by construction");
        obs::reset();
        obs::enable();
        let study = run_study(&s).expect("valid scenario");
        obs::disable();
        obs::flush_thread();
        let snap = obs::snapshot();
        obs::reset();
        prop_assert_eq!(study.dbs.len(), 6);
        let total = snap.counter("faults.injected_total");
        let by_kind: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("faults.injected."))
            .map(|(_, v)| v)
            .sum();
        prop_assert_eq!(by_kind, total);
    }
}
