//! The internet scale tier: streamed route tables, interned names, and
//! columnar storage must preserve the determinism guarantees of the
//! store-backed pipeline, and the full-magnitude topology must match the
//! structural properties measured for the real IPv6 AS graph.

use ipv6web::topology::{generate, stats, Family, Tier, TopologyConfig};
use ipv6web::{run_study_mode, ExecutionMode, Scenario, StreamRoutes};
use std::sync::Mutex;

/// `IPV6WEB_THREADS` is process-global: tests that set it run under one
/// lock so concurrent siblings never observe a half-configured budget.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// [`Scenario::internet_smoke`] shrunk to debug-build test cost while
/// keeping everything that distinguishes the internet tier: streamed
/// route tables (`stream_routes`), a hosting-pool cap concentrating
/// destinations, and paper-scale population parameters. The CI
/// `internet-smoke` job runs the full smoke tier in release mode.
fn tiny_internet(seed: u64) -> Scenario {
    let mut s = Scenario::internet_smoke(seed);
    s.topology = TopologyConfig::scaled(900);
    s.population.n_sites = 6_000;
    s.population.hosting_pool_cap = Some(150);
    s.tail_sites = 500;
    s.campaign.total_weeks = 12;
    s.timeline.total_weeks = 12;
    s.timeline.iana_week = 4;
    s.timeline.ipv6_day_week = 9;
    s.fig1_from_week = 2;
    s.analysis.min_paired_samples = 4;
    s.route_change = Some((6, 0.03, 0.01));
    assert!(s.stream_routes.0, "the internet tier must exercise the streamed pipeline");
    s
}

#[test]
fn streamed_internet_tier_is_byte_identical_across_threads_and_modes() {
    let _g = ENV_LOCK.lock().unwrap();
    let mut runs = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("IPV6WEB_THREADS", threads);
        for mode in [ExecutionMode::Sequential, ExecutionMode::VantageParallel] {
            let s = run_study_mode(&tiny_internet(33), mode).expect("valid scenario");
            runs.push((threads, mode, serde_json::to_string(&s.report).unwrap(), s.dbs));
        }
    }
    std::env::remove_var("IPV6WEB_THREADS");
    let (_, _, ref json0, ref dbs0) = runs[0];
    for (threads, mode, json, dbs) in &runs[1..] {
        assert_eq!(json, json0, "report diverged at IPV6WEB_THREADS={threads}, mode={mode:?}");
        assert_eq!(dbs, dbs0, "databases diverged at IPV6WEB_THREADS={threads}, mode={mode:?}");
    }
}

#[test]
fn streamed_tables_match_store_backed_tables() {
    // Flipping `stream_routes` changes memory behavior, never results: the
    // same scenario must produce the identical report either way.
    let a = run_study_mode(&tiny_internet(9), ExecutionMode::Sequential).expect("valid");
    let mut store_backed = tiny_internet(9);
    store_backed.stream_routes = StreamRoutes(false);
    let b = run_study_mode(&store_backed, ExecutionMode::Sequential).expect("valid");
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap(),
        "streamed and store-backed pipelines must agree byte for byte"
    );
}

#[test]
fn internet_scale_topology_matches_ipv6_structural_targets() {
    // Validation targets from the AS-level IPv6 structural study (arxiv
    // 2403.00193): the IPv6 graph is far *sparser* than IPv4 overall —
    // adoption-era parity holds on the provider hierarchy first — while
    // its *core* is dense: the tier-1 backbone forms a near-clique in v6
    // just as in v4.
    let cfg = TopologyConfig::internet_scale();
    let topo = generate(&cfg, 42);
    let s = stats::measure(&topo);
    assert_eq!(s.n_ases, 37_000, "2011 Internet magnitude");

    // peering sparsity: v6 carries a small fraction of the v4 edge set,
    // and peer edges replicate into v6 less readily than provider edges
    let edge_ratio = s.edges_v6 as f64 / s.edges_v4 as f64;
    assert!(
        (0.02..0.35).contains(&edge_ratio),
        "v6/v4 edge ratio {edge_ratio:.3} outside the adoption-era band"
    );
    assert!(
        s.peering_parity < s.provider_parity,
        "peering parity {:.2} must lag provider parity {:.2}",
        s.peering_parity,
        s.provider_parity
    );

    // core density: among dual-stack tier-1 ASes, the v6 mesh is
    // near-complete (the structural study's densely connected v6 core)
    let t1_dual: Vec<_> = topo
        .nodes()
        .iter()
        .filter(|n| n.tier == Tier::Tier1 && n.is_dual_stack())
        .map(|n| n.id)
        .collect();
    assert!(t1_dual.len() >= 3, "the v6 core must include several tier-1 ASes");
    let mut present = 0usize;
    let mut pairs = 0usize;
    for (i, &a) in t1_dual.iter().enumerate() {
        for &b in &t1_dual[i + 1..] {
            pairs += 1;
            if topo.neighbors(a, Family::V6).iter().any(|&(n, _, _)| n == b) {
                present += 1;
            }
        }
    }
    let core_density = present as f64 / pairs as f64;
    assert!(
        core_density > 0.9,
        "v6 core density {core_density:.2} — the tier-1 backbone must stay a near-clique"
    );
}
