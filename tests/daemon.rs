//! `ipv6webd` end to end: jobs over real sockets, crash recovery, resume,
//! and the daemon-vs-`repro` report identity the service is held to.

use ipv6web::daemon::{api, Daemon, JobRecord, JobSpec, JobState, JobStore};
use ipv6web::monitor::run_campaign_resumable;
use ipv6web::{run_study, Scenario, World};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Daemons spawn worker pools and the obs registry is process-global, so
/// these tests run one at a time.
static LOCK: Mutex<()> = Mutex::new(());

fn tiny(seed: u64) -> Scenario {
    let mut s = Scenario::quick(seed);
    s.population.n_sites = 600;
    s.tail_sites = 100;
    s.campaign.total_weeks = 12;
    s.timeline.total_weeks = 12;
    s.timeline.iana_week = 4;
    s.timeline.ipv6_day_week = 9;
    s.fig1_from_week = 2;
    s.analysis.min_paired_samples = 4;
    s.route_change = Some((6, 0.03, 0.01));
    s
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipv6webd-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// What `repro --json` (with `--metrics`, i.e. the pure report) writes for
/// this scenario — the byte-identity reference for daemon reports.
fn reference_report_bytes(scenario: &Scenario) -> Vec<u8> {
    let study = run_study(scenario).expect("valid scenario");
    serde_json::to_string_pretty(&study.report).expect("report serializes").into_bytes()
}

/// Waits (with a deadline) until the job reaches a terminal state.
fn wait_done(daemon: &Arc<Daemon>, id: &str) -> JobRecord {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let rec = daemon.job(id).expect("job exists");
        match rec.state {
            JobState::Done => return rec,
            JobState::Failed => panic!("job {id} failed: {:?}", rec.error),
            _ if Instant::now() > deadline => panic!("job {id} stuck in {:?}", rec.state),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Minimal HTTP/1.1 client for the daemon API: one request, one
/// connection, returns `(status, body)`.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let sep = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("header terminator") + 4;
    let head = std::str::from_utf8(&raw[..sep]).expect("utf8 head");
    let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status code");
    (status, raw[sep..].to_vec())
}

#[test]
fn http_job_report_is_byte_identical_to_repro() {
    let _g = LOCK.lock().unwrap();
    let scenario = tiny(23);
    let reference = reference_report_bytes(&scenario);

    let store_dir = fresh_dir("e2e");
    let (daemon, boot) = Daemon::open(&store_dir, 2).unwrap();
    assert_eq!(boot, ipv6web::daemon::BootReport::default());
    let workers = daemon.start();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let serve_daemon = daemon.clone();
    let server = std::thread::spawn(move || api::serve(&serve_daemon, listener).expect("serve"));

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_slice()), (200, &b"{\"ok\":true}"[..]));

    // submit the scenario inline, exactly as a client would
    let spec = JobSpec { scenario: Some(scenario), ..JobSpec::default() };
    let (status, body) = http(addr, "POST", "/jobs", &serde_json::to_string(&spec).unwrap());
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    let accepted: JobRecord = serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();

    // the report is refused while the job is in flight
    let (status, _) = http(addr, "GET", &format!("/jobs/{}/report", accepted.id), "");
    assert!(status == 409 || status == 200, "unexpected status {status}");

    let done = wait_done(&daemon, &accepted.id);
    assert!(!done.phases.is_empty(), "finished job must carry its phase breakdown");
    assert!(done.phases.iter().any(|p| p.name.starts_with("campaign: ")));

    // the served record shows the same terminal state
    let (status, body) = http(addr, "GET", &format!("/jobs/{}", accepted.id), "");
    assert_eq!(status, 200);
    assert!(std::str::from_utf8(&body).unwrap().contains("\"state\": \"done\""));

    // and the fetched report matches `repro` byte for byte
    let (status, report) = http(addr, "GET", &format!("/jobs/{}/report", accepted.id), "");
    assert_eq!(status, 200);
    assert_eq!(report, reference, "daemon report must be byte-identical to repro output");

    let (status, listing) = http(addr, "GET", "/jobs", "");
    assert_eq!(status, 200);
    assert!(std::str::from_utf8(&listing).unwrap().contains(&accepted.id));
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(std::str::from_utf8(&metrics).unwrap().contains("counters"));

    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.join().unwrap();
    for h in workers {
        h.join().unwrap();
    }
    std::fs::remove_dir_all(&store_dir).ok();
}

#[test]
fn boot_resumes_killed_job_to_identical_report() {
    let _g = LOCK.lock().unwrap();
    let scenario = tiny(31);
    let reference = reference_report_bytes(&scenario);

    // Stage what a SIGKILL mid-job leaves behind: a record persisted as
    // `running`, and ragged per-vantage checkpoints in the job's
    // checkpoint directory.
    let store_dir = fresh_dir("resume");
    let store = JobStore::open(&store_dir).unwrap();
    let mut rec = JobRecord::new(1, scenario.clone(), false);
    rec.state = JobState::Running;
    store.save(&rec).unwrap();

    let ckpt = store.checkpoint_dir(&rec.id);
    std::fs::create_dir_all(&ckpt).unwrap();
    let world = World::build(&scenario);
    let truncations = [5u32, 8, 0, 11, 3, 7];
    assert_eq!(world.vantages.len(), truncations.len());
    for (i, &cut) in truncations.iter().enumerate() {
        if cut == 0 {
            continue;
        }
        let faults = world.probe_faults(i);
        let ctx = world.probe_ctx(i, faults.as_ref());
        let mut cfg = scenario.campaign;
        cfg.total_weeks = cut.min(scenario.campaign.total_weeks);
        run_campaign_resumable(
            &ctx,
            &world.vantages[i],
            &world.list,
            &world.tail_ids,
            |id| world.sites[id as usize].first_seen_week,
            &cfg,
            None,
            Some(&ckpt),
        )
        .expect("partial campaign runs");
    }

    // boot: the daemon must find the in-flight job and re-queue it
    let (daemon, boot) = Daemon::open(&store_dir, 1).unwrap();
    assert_eq!(boot.resumed, 1, "killed job must be picked back up");
    assert_eq!(boot.requeued, 0);
    let resumed = daemon.job(&rec.id).expect("job survives the reboot");
    assert_eq!(resumed.state, JobState::Queued);
    assert_eq!(resumed.resumes, 1);

    let workers = daemon.start();
    let done = wait_done(&daemon, &rec.id);
    assert_eq!(done.resumes, 1);
    let report = daemon.report_bytes(&rec.id).unwrap().expect("report written");
    assert_eq!(report, reference, "resumed report must be byte-identical to a clean run");

    daemon.shutdown();
    for h in workers {
        h.join().unwrap();
    }
    std::fs::remove_dir_all(&store_dir).ok();
}

/// Copies a store directory as a SIGKILL-style snapshot: `*.tmp` files
/// (mid-write) are skipped, files vanishing mid-copy (an atomic rename
/// winning the race) are ignored — exactly the disk a dead process leaves.
fn snapshot_dir(src: &PathBuf, dst: &PathBuf) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name.to_string_lossy().ends_with(".tmp") {
            continue;
        }
        let from = entry.path();
        let to = dst.join(&name);
        if from.is_dir() {
            snapshot_dir(&from, &to);
        } else if let Err(e) = std::fs::copy(&from, &to) {
            assert_eq!(e.kind(), std::io::ErrorKind::NotFound, "copy {from:?}: {e}");
        }
    }
}

#[test]
fn drained_daemon_restarts_resumed_and_byte_identical() {
    let _g = LOCK.lock().unwrap();
    let scenario = tiny(37);
    let reference = reference_report_bytes(&scenario);

    // live daemon, one worker, one in-flight job
    let store_dir = fresh_dir("drain");
    let (daemon, _) = Daemon::open(&store_dir, 1).unwrap();
    let workers = daemon.start();
    let spec = JobSpec { scenario: Some(scenario), ..JobSpec::default() };
    let rec = daemon.submit(&spec).unwrap();

    // wait until the study is genuinely mid-flight: running, with at
    // least one per-vantage checkpoint on disk for resume to build on
    let ckpt = daemon.store().checkpoint_dir(&rec.id);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let running = daemon.job(&rec.id).unwrap().state == JobState::Running;
        let checkpointed =
            ckpt.exists() && std::fs::read_dir(&ckpt).map(|d| d.count() > 0).unwrap_or(false);
        if running && checkpointed {
            break;
        }
        assert!(Instant::now() < deadline, "job never got mid-flight");
        std::thread::sleep(Duration::from_millis(20));
    }

    // graceful drain: the running job is flushed still-Running (the
    // resume marker) and reported as draining
    let draining = daemon.drain();
    assert_eq!(draining, vec![rec.id.clone()]);
    assert!(daemon.is_shutdown());
    let on_disk: JobRecord = serde_json::from_str(
        &std::fs::read_to_string(store_dir.join(format!("{}.json", rec.id))).unwrap(),
    )
    .unwrap();
    assert_eq!(on_disk.state, JobState::Running, "drain must leave the resume marker");

    // snapshot the store as the exiting process would leave it, and
    // restart a daemon on the snapshot — the drained job must resume
    let restart_dir = fresh_dir("drain-restart");
    snapshot_dir(&store_dir, &restart_dir);
    let (restarted, boot) = Daemon::open(&restart_dir, 1).unwrap();
    assert!(boot.resumed >= 1, "drained job must be picked back up: {boot:?}");
    let resumed = restarted.job(&rec.id).unwrap();
    assert_eq!(resumed.state, JobState::Queued);
    assert!(resumed.resumes >= 1);
    let restarted_workers = restarted.start();
    let done = wait_done(&restarted, &rec.id);
    assert!(done.resumes >= 1);
    let report = restarted.report_bytes(&rec.id).unwrap().expect("report written");
    assert_eq!(report, reference, "drained-and-restarted report must be byte-identical");

    restarted.shutdown();
    for h in restarted_workers {
        h.join().unwrap();
    }
    // the original worker is still finishing its study (drain does not
    // wait); join before deleting its store out from under it
    for h in workers {
        h.join().unwrap();
    }
    std::fs::remove_dir_all(&store_dir).ok();
    std::fs::remove_dir_all(&restart_dir).ok();
}

#[test]
fn half_sent_request_gets_408_and_frees_the_accept_thread() {
    let _g = LOCK.lock().unwrap();
    let store_dir = fresh_dir("slowloris");
    let (daemon, _) = Daemon::open(&store_dir, 1).unwrap();
    // no workers: this is purely about the API surface
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let serve_daemon = daemon.clone();
    let read_deadline = Duration::from_millis(300);
    let server = std::thread::spawn(move || {
        api::serve_with_deadline(&serve_daemon, listener, read_deadline).expect("serve")
    });

    // a slowloris peer: half a request, then silence with the socket open
    let t0 = Instant::now();
    let mut slow = TcpStream::connect(addr).expect("connect");
    slow.write_all(b"POST /jobs HTTP/1.1\r\nHost: localhost\r\nContent-Le").unwrap();
    let mut raw = Vec::new();
    slow.read_to_end(&mut raw).expect("read response");
    let head = String::from_utf8_lossy(&raw);
    assert!(head.starts_with("HTTP/1.1 408 "), "expected 408, got: {head}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "deadline must cut the connection promptly, took {:?}",
        t0.elapsed()
    );

    // the accept thread is free again: an honest client is served
    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_slice()), (200, &b"{\"ok\":true}"[..]));

    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.join().unwrap();
    std::fs::remove_dir_all(&store_dir).ok();
}

#[test]
fn boot_recovers_store_from_partial_writes() {
    let _g = LOCK.lock().unwrap();
    let store_dir = fresh_dir("crash");
    let store = JobStore::open(&store_dir).unwrap();

    // a healthy finished job (report present) must be left alone
    let mut finished = JobRecord::new(1, tiny(41), false);
    finished.state = JobState::Done;
    store.save(&finished).unwrap();
    store.save_report(&finished.id, b"{\"report\": true}").unwrap();

    // a crash mid-save leaves a torn temp file — not a job
    std::fs::write(store_dir.join("job-000002-aaaa.json.tmp"), b"{\"id\": \"job-00").unwrap();
    // a record truncated on disk is corrupt — quarantined, never half-read
    std::fs::write(store_dir.join("job-000003-bbbb.json"), b"{\"id\": \"job-000003-bbbb\"")
        .unwrap();
    // a job marked done whose report never landed must re-run
    let mut lost = JobRecord::new(4, tiny(43), true);
    lost.state = JobState::Done;
    store.save(&lost).unwrap();

    let (daemon, boot) = Daemon::open(&store_dir, 1).unwrap();
    assert_eq!(boot.removed_tmp, 1);
    assert_eq!(boot.quarantined, 1);
    assert_eq!(boot.resumed, 1, "done-without-report re-runs");

    // the torn and corrupt jobs are cleanly absent
    assert!(daemon.job("job-000002-aaaa").is_none());
    assert!(daemon.job("job-000003-bbbb").is_none());
    assert!(store_dir.join("job-000003-bbbb.json.corrupt").exists());
    assert!(!store_dir.join("job-000002-aaaa.json.tmp").exists());
    // the healthy job kept its state and report
    assert_eq!(daemon.job(&finished.id).unwrap().state, JobState::Done);
    assert_eq!(daemon.report_bytes(&finished.id).unwrap().unwrap(), b"{\"report\": true}");
    // the lost-report job is queued again, sequence numbering continues
    let requeued = daemon.job(&lost.id).unwrap();
    assert_eq!(requeued.state, JobState::Queued);
    assert_eq!(requeued.resumes, 1);
    let next = daemon.submit(&JobSpec::default()).unwrap();
    assert_eq!(next.seq, 5, "sequence numbers must not collide after recovery");
    std::fs::remove_dir_all(&store_dir).ok();
}

#[test]
fn concurrent_same_seed_jobs_share_one_world() {
    let _g = LOCK.lock().unwrap();
    let scenario = tiny(53);

    // Reference: how much route-table work one clean study costs.
    ipv6web::obs::enable();
    ipv6web::obs::flush_thread();
    let s0 = ipv6web::obs::snapshot();
    let clean = run_study(&scenario).expect("valid scenario");
    ipv6web::obs::flush_thread();
    let s1 = ipv6web::obs::snapshot();
    let solo_tables = s1.counter("bgp.tables_built") - s0.counter("bgp.tables_built");
    assert!(solo_tables > 0, "a study must build route tables");
    let reference =
        serde_json::to_string_pretty(&clean.report).expect("report serializes").into_bytes();

    // Two workers, two submissions of the same scenario, racing.
    let store_dir = fresh_dir("shared");
    let (daemon, _) = Daemon::open(&store_dir, 2).unwrap();
    let workers = daemon.start();
    let spec = JobSpec { scenario: Some(scenario), ..JobSpec::default() };
    let a = daemon.submit(&spec).unwrap();
    let b = daemon.submit(&spec).unwrap();
    assert_ne!(a.id, b.id, "same config, distinct jobs");
    assert_eq!(a.config_hash, b.config_hash);
    wait_done(&daemon, &a.id);
    wait_done(&daemon, &b.id);
    daemon.shutdown();
    for h in workers {
        h.join().unwrap(); // workers flush their obs shards on exit
    }
    let s2 = ipv6web::obs::snapshot();

    // one build, one reuse — and no duplicated route-table work: the
    // second job rode the first job's memoized RouteStore
    assert_eq!(s2.counter("daemon.world.built") - s1.counter("daemon.world.built"), 1);
    assert_eq!(s2.counter("daemon.world.reused") - s1.counter("daemon.world.reused"), 1);
    let daemon_tables = s2.counter("bgp.tables_built") - s1.counter("bgp.tables_built");
    assert_eq!(daemon_tables, solo_tables, "two same-seed jobs must not build route tables twice");

    // …and sharing never compromises output: both reports match repro
    let ra = daemon.report_bytes(&a.id).unwrap().unwrap();
    let rb = daemon.report_bytes(&b.id).unwrap().unwrap();
    assert_eq!(ra, reference);
    assert_eq!(rb, reference);
    std::fs::remove_dir_all(&store_dir).ok();
}
