//! Vantage populations: generated panels must obey the same scheduling-
//! invariance contract as the Table 1 six, spec-less scenarios must stay
//! byte-identical to pre-population reports, and every small-topology
//! failure must surface as a typed error instead of a panic.

use ipv6web::monitor::{CampaignError, VantagePopulation};
use ipv6web::topology::TopologyConfig;
use ipv6web::{obs, run_study, run_study_mode, ExecutionMode, Scenario, StudyError, WorldError};
use std::sync::Mutex;

/// `IPV6WEB_THREADS` and the obs registry are process-global; tests that
/// touch either run under one lock.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A seconds-scale panel: 50 generated vantage points on a 700-AS
/// topology, exercising the same population path as `--scale panel`.
fn tiny_panel(seed: u64) -> Scenario {
    let mut s = Scenario::quick(seed);
    s.topology = TopologyConfig::scaled(700);
    s.topology.dual.access_adoption = 0.6;
    s.population.n_sites = 300;
    s.tail_sites = 60;
    s.campaign.total_weeks = 10;
    s.timeline.total_weeks = 10;
    s.timeline.iana_week = 3;
    s.timeline.ipv6_day_week = 7;
    s.fig1_from_week = 2;
    s.analysis.min_paired_samples = 4;
    s.route_change = Some((5, 0.03, 0.01));
    s.vantage_population = Some(VantagePopulation { count: 50, ..Default::default() });
    s
}

#[test]
fn panel_reports_and_counters_are_scheduling_invariant() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut runs = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("IPV6WEB_THREADS", threads);
        for mode in [ExecutionMode::Sequential, ExecutionMode::VantageParallel] {
            obs::reset();
            obs::enable();
            let s = run_study_mode(&tiny_panel(23), mode).expect("valid scenario");
            obs::disable();
            obs::flush_thread();
            let snap = obs::snapshot();
            obs::reset();
            runs.push((threads, mode, serde_json::to_string(&s.report).unwrap(), snap, s));
        }
    }
    std::env::remove_var("IPV6WEB_THREADS");

    let (_, _, ref json0, ref snap0, ref study0) = runs[0];
    assert_eq!(study0.report.vantages.len(), 50, "the panel really has 50 vantage points");
    let panel = study0.report.panel.as_ref().expect("population run carries the panel section");
    assert_eq!(panel.vantages, 50);
    assert!(panel.analyzed >= 2, "several vantages enter the path-correlated analysis");
    assert!(json0.contains("\"panel\""), "panel section serialized");
    assert!(study0.report.render().contains("Cross-vantage disagreement"));
    // `par.*` counters describe the scheduling shape itself (fan-out
    // calls and their widths), so — like gauges — they are allowed to
    // differ across modes; every measurement counter must not.
    let measured = |snap: &obs::Snapshot| {
        let mut c = snap.counters.clone();
        c.retain(|k, _| !k.starts_with("par."));
        c
    };
    for (threads, mode, json, snap, study) in &runs[1..] {
        assert_eq!(json, json0, "report diverged at IPV6WEB_THREADS={threads}, mode={mode:?}");
        assert_eq!(
            measured(snap),
            measured(snap0),
            "counters diverged at IPV6WEB_THREADS={threads}, mode={mode:?}"
        );
        for (da, db) in study0.dbs.iter().zip(&study.dbs) {
            assert_eq!(da, db, "databases diverged at IPV6WEB_THREADS={threads}, mode={mode:?}");
        }
    }
}

#[test]
fn spec_less_scenarios_have_no_panel_section() {
    // The empty-population contract: without a `vantage_population` the
    // study runs the Table 1 six and the report carries no `panel` key, so
    // its bytes match reports written before populations existed.
    let mut s = Scenario::quick(7);
    s.population.n_sites = 400;
    s.tail_sites = 80;
    s.campaign.total_weeks = 10;
    s.timeline.total_weeks = 10;
    s.timeline.iana_week = 3;
    s.timeline.ipv6_day_week = 7;
    s.route_change = Some((5, 0.03, 0.01));
    assert!(s.vantage_population.is_none());
    let study = run_study(&s).expect("valid scenario");
    assert!(study.report.panel.is_none());
    let json = serde_json::to_string(&study.report).unwrap();
    assert!(!json.contains("\"panel\""), "spec-less report must not grow a panel key");
    let names: Vec<&str> = study.report.vantages.iter().map(|v| v.name.as_str()).collect();
    assert_eq!(
        names,
        ["Comcast", "Go6-Slovenia", "Loughborough U.", "Penn", "Tsinghua U.", "UPC Broadband"]
    );
}

#[test]
fn too_small_topology_is_a_typed_study_error() {
    // Population larger than the topology's dual-stack access tier: the
    // study must refuse with the typed error (exit 2 in `repro`), never
    // panic.
    let mut s = tiny_panel(3);
    s.vantage_population = Some(VantagePopulation { count: 5_000, ..Default::default() });
    match run_study(&s) {
        Err(StudyError::World(WorldError::InsufficientVantageAses { needed, found })) => {
            assert_eq!(needed, 5_000);
            assert!(found < 5_000, "tiny topology cannot host the panel");
        }
        Ok(_) => panic!("study must refuse an oversized panel"),
        Err(other) => panic!("expected InsufficientVantageAses, got {other}"),
    }

    // The Table 1 path hits the same typed error when the topology has no
    // dual-stack access tier at all.
    let mut bare = Scenario::quick(3);
    bare.topology.dual.access_adoption = 0.0;
    match run_study(&bare) {
        Err(StudyError::World(WorldError::InsufficientVantageAses { needed, .. })) => {
            assert_eq!(needed, 6);
        }
        Ok(_) => panic!("study must refuse a bare topology"),
        Err(other) => panic!("expected InsufficientVantageAses, got {other}"),
    }
}

#[test]
fn resuming_checkpoints_with_a_different_population_is_refused() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join("ipv6web-panel-stamp");
    let _ = std::fs::remove_dir_all(&dir);

    // First run: the Table 1 six, stamping the checkpoint dir.
    let mut six = Scenario::quick(11);
    six.population.n_sites = 400;
    six.tail_sites = 80;
    six.campaign.total_weeks = 10;
    six.timeline.total_weeks = 10;
    six.timeline.iana_week = 3;
    six.timeline.ipv6_day_week = 7;
    six.route_change = Some((5, 0.03, 0.01));
    six.checkpoint_dir = Some(dir.to_string_lossy().into_owned());
    run_study(&six).expect("valid scenario");

    // Resume with a 50-vantage population: slug-keyed checkpoints would
    // silently misattribute rounds, so the mismatch must be typed.
    let mut panel = tiny_panel(11);
    panel.checkpoint_dir = Some(dir.to_string_lossy().into_owned());
    match run_study(&panel) {
        Err(StudyError::Campaign(CampaignError::PopulationMismatch {
            stamped_count,
            count,
            ..
        })) => {
            assert_eq!(stamped_count, 6);
            assert_eq!(count, 50);
        }
        Ok(_) => panic!("resume with a different population must be refused"),
        Err(other) => panic!("expected PopulationMismatch, got {other}"),
    }

    // The matching scenario still resumes cleanly.
    run_study(&six).expect("same population resumes");
    std::fs::remove_dir_all(&dir).ok();
}
