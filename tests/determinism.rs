//! Reproducibility: the same scenario and seed must produce bit-identical
//! results, and different seeds must not.

use ipv6web::{run_study, Scenario};

fn tiny(seed: u64) -> Scenario {
    let mut s = Scenario::quick(seed);
    s.population.n_sites = 600;
    s.tail_sites = 100;
    s.campaign.total_weeks = 12;
    s.timeline.total_weeks = 12;
    s.timeline.iana_week = 4;
    s.timeline.ipv6_day_week = 9;
    s.fig1_from_week = 2;
    s.analysis.min_paired_samples = 4;
    s.route_change = Some((6, 0.03, 0.01));
    s
}

#[test]
fn same_seed_identical_report() {
    let a = run_study(&tiny(7));
    let b = run_study(&tiny(7));
    assert_eq!(a.report, b.report, "same seed must reproduce the report exactly");
    let ja = serde_json::to_string(&a.report).unwrap();
    let jb = serde_json::to_string(&b.report).unwrap();
    assert_eq!(ja, jb);
    // and the raw databases too
    for (da, db) in a.dbs.iter().zip(&b.dbs) {
        assert_eq!(da, db);
    }
}

#[test]
fn different_seed_different_world() {
    let a = run_study(&tiny(1));
    let b = run_study(&tiny(2));
    assert_ne!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap(),
        "different seeds must explore different worlds"
    );
}

#[test]
fn worker_count_does_not_change_results() {
    let mut s1 = tiny(3);
    s1.campaign.workers = 1;
    let mut s2 = tiny(3);
    s2.campaign.workers = 16;
    // scenario inequality is fine — compare only the measurement outputs
    let a = run_study(&s1);
    let b = run_study(&s2);
    for (da, db) in a.dbs.iter().zip(&b.dbs) {
        assert_eq!(da, db, "thread scheduling must never leak into results");
    }
    assert_eq!(a.report.table8, b.report.table8);
}
