//! Reproducibility: the same scenario and seed must produce bit-identical
//! results, and different seeds must not.

use ipv6web::{run_study, run_study_mode, ExecutionMode, Scenario};
use std::sync::Mutex;

/// `IPV6WEB_THREADS` is process-global: tests that set it run under one
/// lock so concurrent siblings never observe a half-configured budget.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn tiny(seed: u64) -> Scenario {
    let mut s = Scenario::quick(seed);
    s.population.n_sites = 600;
    s.tail_sites = 100;
    s.campaign.total_weeks = 12;
    s.timeline.total_weeks = 12;
    s.timeline.iana_week = 4;
    s.timeline.ipv6_day_week = 9;
    s.fig1_from_week = 2;
    s.analysis.min_paired_samples = 4;
    s.route_change = Some((6, 0.03, 0.01));
    s
}

#[test]
fn same_seed_identical_report() {
    let a = run_study(&tiny(7)).expect("valid scenario");
    let b = run_study(&tiny(7)).expect("valid scenario");
    assert_eq!(a.report, b.report, "same seed must reproduce the report exactly");
    let ja = serde_json::to_string(&a.report).unwrap();
    let jb = serde_json::to_string(&b.report).unwrap();
    assert_eq!(ja, jb);
    // and the raw databases too
    for (da, db) in a.dbs.iter().zip(&b.dbs) {
        assert_eq!(da, db);
    }
}

#[test]
fn different_seed_different_world() {
    let a = run_study(&tiny(1)).expect("valid scenario");
    let b = run_study(&tiny(2)).expect("valid scenario");
    assert_ne!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap(),
        "different seeds must explore different worlds"
    );
}

#[test]
fn thread_count_does_not_change_results() {
    // Route-table fan-out width comes from IPV6WEB_THREADS. The variable is
    // process-global, so both runs live in this one test; determinism means
    // any interleaving with sibling tests is harmless by construction.
    let _g = ENV_LOCK.lock().unwrap();
    std::env::set_var("IPV6WEB_THREADS", "1");
    let a = run_study(&tiny(5)).expect("valid scenario");
    std::env::set_var("IPV6WEB_THREADS", "7");
    let b = run_study(&tiny(5)).expect("valid scenario");
    std::env::remove_var("IPV6WEB_THREADS");
    assert_eq!(a.report, b.report, "thread count must never leak into the report");
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap()
    );
    for (da, db) in a.dbs.iter().zip(&b.dbs) {
        assert_eq!(da, db, "thread count must never leak into the databases");
    }
}

#[test]
fn memoized_epoch_rebuild_matches_from_scratch() {
    use ipv6web::bgp::RouteStore;
    use ipv6web::topology::{AsId, Family};
    use ipv6web::World;

    let s = tiny(11);
    assert!(s.route_change.is_some(), "scenario must schedule a route change");
    let w = World::build(&s);
    let late = w.topo_late.as_ref().expect("route change produces a late topology");
    let (_, epoch_tables) = w.v6_epoch.as_ref().expect("route change produces epoch tables");

    // The world's epoch tables come from the memoized rebuild; a from-scratch
    // store over the late topology must agree exactly.
    let mut dests: Vec<AsId> = w.sites.iter().map(|site| site.v4_as).collect();
    dests.extend(w.sites.iter().filter_map(|site| site.v6.as_ref().map(|v| v.dest_as)));
    let scratch = RouteStore::build(late, Family::V6, &dests);
    for (v, memoized) in w.vantages.iter().zip(epoch_tables) {
        let direct = scratch.table_for(v.as_id);
        assert_eq!(memoized.len(), direct.len(), "vantage {:?}", v.name);
        for r in direct.iter() {
            assert_eq!(memoized.route(r.dest), Some(r), "vantage {:?}", v.name);
        }
    }
}

#[test]
fn sequential_and_parallel_reports_are_byte_identical() {
    // The tentpole guarantee: scheduling the six campaigns across threads
    // must never change a byte of the report or the raw databases, at any
    // worker budget.
    let _g = ENV_LOCK.lock().unwrap();
    let mut runs = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("IPV6WEB_THREADS", threads);
        for mode in [ExecutionMode::Sequential, ExecutionMode::VantageParallel] {
            let s = run_study_mode(&tiny(21), mode).expect("valid scenario");
            runs.push((threads, mode, serde_json::to_string(&s.report).unwrap(), s.dbs));
        }
    }
    std::env::remove_var("IPV6WEB_THREADS");
    let (_, _, ref json0, ref dbs0) = runs[0];
    for (threads, mode, json, dbs) in &runs[1..] {
        assert_eq!(json, json0, "report diverged at IPV6WEB_THREADS={threads}, mode={mode:?}");
        assert_eq!(dbs, dbs0, "databases diverged at IPV6WEB_THREADS={threads}, mode={mode:?}");
    }
}

#[test]
fn staggered_checkpoints_resume_to_identical_report() {
    // A mid-campaign kill under vantage-parallel execution leaves each
    // vantage a different distance through its campaign — some with no
    // checkpoint at all. Resuming from that ragged state must reproduce an
    // uninterrupted run byte for byte.
    use ipv6web::monitor::{checkpoint_path, run_campaign_resumable};
    use ipv6web::World;

    let _g = ENV_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join("ipv6web-staggered-ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut s = tiny(19);
    let clean = run_study(&s).expect("valid scenario");

    // Replay the "crashed" first run: vantage i got truncations[i] weeks in
    // before the kill (0 = never started).
    let world = World::build(&s);
    let truncations = [6u32, 9, 0, 12, 4, 8];
    assert_eq!(world.vantages.len(), truncations.len());
    for (i, &cut) in truncations.iter().enumerate() {
        if cut == 0 {
            continue;
        }
        let faults = world.probe_faults(i);
        let ctx = world.probe_ctx(i, faults.as_ref());
        let mut cfg = s.campaign;
        cfg.total_weeks = cut.min(s.campaign.total_weeks);
        run_campaign_resumable(
            &ctx,
            &world.vantages[i],
            &world.list,
            &world.tail_ids,
            |id| world.sites[id as usize].first_seen_week,
            &cfg,
            None,
            Some(&dir),
        )
        .expect("partial campaign runs");
    }
    let on_disk = (0..world.vantages.len())
        .filter(|&i| checkpoint_path(&dir, &world.vantages[i].name).exists())
        .count();
    assert!(on_disk >= 2, "staggered kill must leave real checkpoints behind");
    assert!(on_disk < world.vantages.len(), "…but not for every vantage");

    s.checkpoint_dir = Some(dir.to_string_lossy().into_owned());
    let resumed = run_study(&s).expect("valid scenario");
    assert_eq!(
        serde_json::to_string(&clean.report).unwrap(),
        serde_json::to_string(&resumed.report).unwrap(),
        "resume from a staggered kill must not change the report"
    );
    for (da, db) in clean.dbs.iter().zip(&resumed.dbs) {
        assert_eq!(da, db, "resume must reproduce every database exactly");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_count_does_not_change_results() {
    let mut s1 = tiny(3);
    s1.campaign.workers = 1;
    let mut s2 = tiny(3);
    s2.campaign.workers = 16;
    // scenario inequality is fine — compare only the measurement outputs
    let a = run_study(&s1).expect("valid scenario");
    let b = run_study(&s2).expect("valid scenario");
    for (da, db) in a.dbs.iter().zip(&b.dbs) {
        assert_eq!(da, db, "thread scheduling must never leak into results");
    }
    assert_eq!(a.report.table8, b.report.table8);
}
