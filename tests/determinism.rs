//! Reproducibility: the same scenario and seed must produce bit-identical
//! results, and different seeds must not.

use ipv6web::{run_study, Scenario};

fn tiny(seed: u64) -> Scenario {
    let mut s = Scenario::quick(seed);
    s.population.n_sites = 600;
    s.tail_sites = 100;
    s.campaign.total_weeks = 12;
    s.timeline.total_weeks = 12;
    s.timeline.iana_week = 4;
    s.timeline.ipv6_day_week = 9;
    s.fig1_from_week = 2;
    s.analysis.min_paired_samples = 4;
    s.route_change = Some((6, 0.03, 0.01));
    s
}

#[test]
fn same_seed_identical_report() {
    let a = run_study(&tiny(7)).expect("valid scenario");
    let b = run_study(&tiny(7)).expect("valid scenario");
    assert_eq!(a.report, b.report, "same seed must reproduce the report exactly");
    let ja = serde_json::to_string(&a.report).unwrap();
    let jb = serde_json::to_string(&b.report).unwrap();
    assert_eq!(ja, jb);
    // and the raw databases too
    for (da, db) in a.dbs.iter().zip(&b.dbs) {
        assert_eq!(da, db);
    }
}

#[test]
fn different_seed_different_world() {
    let a = run_study(&tiny(1)).expect("valid scenario");
    let b = run_study(&tiny(2)).expect("valid scenario");
    assert_ne!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap(),
        "different seeds must explore different worlds"
    );
}

#[test]
fn thread_count_does_not_change_results() {
    // Route-table fan-out width comes from IPV6WEB_THREADS. The variable is
    // process-global, so both runs live in this one test; determinism means
    // any interleaving with sibling tests is harmless by construction.
    std::env::set_var("IPV6WEB_THREADS", "1");
    let a = run_study(&tiny(5)).expect("valid scenario");
    std::env::set_var("IPV6WEB_THREADS", "7");
    let b = run_study(&tiny(5)).expect("valid scenario");
    std::env::remove_var("IPV6WEB_THREADS");
    assert_eq!(a.report, b.report, "thread count must never leak into the report");
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap()
    );
    for (da, db) in a.dbs.iter().zip(&b.dbs) {
        assert_eq!(da, db, "thread count must never leak into the databases");
    }
}

#[test]
fn memoized_epoch_rebuild_matches_from_scratch() {
    use ipv6web::bgp::RouteStore;
    use ipv6web::topology::{AsId, Family};
    use ipv6web::World;

    let s = tiny(11);
    assert!(s.route_change.is_some(), "scenario must schedule a route change");
    let w = World::build(&s);
    let late = w.topo_late.as_ref().expect("route change produces a late topology");
    let (_, epoch_tables) = w.v6_epoch.as_ref().expect("route change produces epoch tables");

    // The world's epoch tables come from the memoized rebuild; a from-scratch
    // store over the late topology must agree exactly.
    let mut dests: Vec<AsId> = w.sites.iter().map(|site| site.v4_as).collect();
    dests.extend(w.sites.iter().filter_map(|site| site.v6.as_ref().map(|v| v.dest_as)));
    let scratch = RouteStore::build(late, Family::V6, &dests);
    for (v, memoized) in w.vantages.iter().zip(epoch_tables) {
        let direct = scratch.table_for(v.as_id);
        assert_eq!(memoized.len(), direct.len(), "vantage {:?}", v.name);
        for r in direct.iter() {
            assert_eq!(memoized.route(r.dest), Some(r), "vantage {:?}", v.name);
        }
    }
}

#[test]
fn worker_count_does_not_change_results() {
    let mut s1 = tiny(3);
    s1.campaign.workers = 1;
    let mut s2 = tiny(3);
    s2.campaign.workers = 16;
    // scenario inequality is fine — compare only the measurement outputs
    let a = run_study(&s1).expect("valid scenario");
    let b = run_study(&s2).expect("valid scenario");
    for (da, db) in a.dbs.iter().zip(&b.dbs) {
        assert_eq!(da, db, "thread scheduling must never leak into results");
    }
    assert_eq!(a.report.table8, b.report.table8);
}
