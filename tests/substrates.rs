//! Cross-crate substrate integration: the pieces must fit together without
//! the full study driver.

use ipv6web::bgp::{routes_to_dest, BgpTable};
use ipv6web::dns::{RecordType, Resolver};
use ipv6web::monitor::{probe_site, Disturbances, ProbeContext, ProbeOutcome};
use ipv6web::netsim::{download_time, traceroute, DataPlane, TcpConfig, TracerouteConfig};
use ipv6web::packet::tunnel::{decapsulate_6in4, encapsulate_6in4};
use ipv6web::packet::{Ipv6Header, UdpHeader};
use ipv6web::stats::{derive_rng, RelativeCiRule};
use ipv6web::topology::{generate, AsId, Family, Tier, TopologyConfig};
use ipv6web::web::{build_zone, population, PopulationConfig};

#[test]
fn dns_query_resolves_into_generated_topology_addresses() {
    let topo = generate(&TopologyConfig::test_small(), 3);
    let (sites, names) = population::generate(&PopulationConfig::test_small(10), &topo, 3);
    let zone = build_zone(&topo, &sites, names);
    let mut resolver = Resolver::new();
    let dual = sites
        .iter()
        .find(|s| s.v6.as_ref().is_some_and(|v| v.from_week == 0 && !v.via_6to4))
        .expect("native dual site");
    let name = zone.name_of(dual.name);
    let a = resolver.resolve(&zone, name, RecordType::A, 0, 0).unwrap();
    let aaaa = resolver.resolve(&zone, name, RecordType::Aaaa, 0, 0).unwrap();
    assert_eq!(a.len(), 1);
    assert_eq!(aaaa.len(), 1);
    // the addresses belong to the right ASes
    let ipv6web::dns::RecordData::V4(v4) = a[0].data else { panic!() };
    assert!(topo.node(dual.v4_as).v4_prefix.contains(v4));
    let ipv6web::dns::RecordData::V6(v6) = aaaa[0].data else { panic!() };
    let origin = dual.v6.as_ref().unwrap().dest_as;
    assert!(topo.node(origin).v6.as_ref().unwrap().prefix.contains(v6));
}

#[test]
fn bgp_route_feeds_dataplane_feeds_tcp_model() {
    let topo = generate(&TopologyConfig::test_small(), 5);
    let vantage =
        topo.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
    let dest =
        topo.nodes().iter().find(|n| n.tier == Tier::Content && n.is_dual_stack()).unwrap().id;
    for family in [Family::V4, Family::V6] {
        let table = BgpTable::build(&topo, vantage, family, &[dest]);
        let Some(route) = table.route(dest) else {
            assert_eq!(family, Family::V6, "v4 always routes");
            continue;
        };
        let metrics = DataPlane::new(&topo).metrics(route, family);
        assert!(metrics.rtt_ms > 0.0);
        let mut rng = derive_rng(5, "subst");
        let out = download_time(&mut rng, 50_000, &metrics, 20.0, &TcpConfig::paper());
        assert!(out.speed_kbps > 0.5 && out.speed_kbps < 5_000.0, "{}", out.speed_kbps);
    }
}

#[test]
fn tunneled_probe_packet_survives_encapsulation() {
    // an IPv6 traceroute probe, 6in4-encapsulated across a v4 island, must
    // decode back to the identical inner packet
    let src6 = "2400:1::1".parse().unwrap();
    let dst6 = "2400:2::1".parse().unwrap();
    let udp = UdpHeader::new(33434, 33440, 8);
    let payload = udp.to_vec_v6(src6, dst6, &[0u8; 8]);
    let hdr = Ipv6Header::new(src6, dst6, 17, payload.len() as u16);
    let mut inner = hdr.to_vec();
    inner.extend_from_slice(&payload);

    let entry = "192.0.2.1".parse().unwrap();
    let exit = "198.51.100.1".parse().unwrap();
    let wire = encapsulate_6in4(entry, exit, &inner);
    let (outer, recovered) = decapsulate_6in4(&wire).unwrap();
    assert_eq!(outer.src, entry);
    assert_eq!(recovered, &inner[..]);
    let parsed = Ipv6Header::decode(&mut &recovered[..]).unwrap();
    assert_eq!(parsed, hdr);
    let (uh, _) = UdpHeader::decode_v6(&recovered[40..], src6, dst6).unwrap();
    assert_eq!(uh, udp);
}

#[test]
fn traceroute_hop_rtts_consistent_with_path_metrics() {
    let topo = generate(&TopologyConfig::test_small(), 7);
    let vantage = topo.nodes().iter().find(|n| n.tier == Tier::Access).unwrap().id;
    let dests: Vec<AsId> =
        topo.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).take(5).collect();
    let table = BgpTable::build(&topo, vantage, Family::V4, &dests);
    let cfg = TracerouteConfig {
        hop_silence_prob: 0.0,
        dest_filter_prob: 0.0,
        probes_per_hop: 1,
        max_ttl: 30,
    };
    let mut rng = derive_rng(7, "subst-tr");
    for route in table.iter() {
        let tr = traceroute(&mut rng, &topo, route, Family::V4, &cfg);
        assert!(tr.completed);
        let metrics = DataPlane::new(&topo).metrics(route, Family::V4);
        let last_rtt = tr.hops.last().unwrap().rtt_ms.unwrap();
        // the last hop's RTT approximates the path RTT (±15% jitter)
        assert!(
            (last_rtt - metrics.rtt_ms).abs() / metrics.rtt_ms < 0.20,
            "traceroute RTT {last_rtt:.1} vs path {:.1}",
            metrics.rtt_ms
        );
    }
}

#[test]
fn probe_pipeline_runs_outside_the_campaign_driver() {
    let topo = generate(&TopologyConfig::test_small(), 9);
    let (sites, names) = population::generate(&PopulationConfig::test_small(10), &topo, 9);
    let zone = build_zone(&topo, &sites, names);
    let vantage =
        topo.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
    let mut dests: Vec<AsId> = sites.iter().map(|s| s.v4_as).collect();
    dests.extend(sites.iter().filter_map(|s| s.v6.as_ref().map(|v| v.dest_as)));
    dests.sort();
    dests.dedup();
    let t4 = BgpTable::build(&topo, vantage, Family::V4, &dests);
    let t6 = BgpTable::build(&topo, vantage, Family::V6, &dests);
    let disturbances = Disturbances::default();
    let ctx = ProbeContext {
        topo: &topo,
        sites: &sites,
        zone: &zone,
        table_v4: &t4,
        table_v6: &t6,
        disturbances: &disturbances,
        tcp: TcpConfig::paper(),
        ci_rule: RelativeCiRule::paper(),
        identity_threshold: 0.06,
        round_noise_sigma: 0.05,
        seed: 9,
        vantage_name: "adhoc",
        white_listed: false,
        v6_epoch: None,
        faults: None,
        stack: ipv6web::xlat::ClientStack::DualStack,
        xlat: None,
    };
    let mut resolver = Resolver::new();
    let mut measured = 0;
    let mut v4_only = 0;
    for site in &sites {
        match probe_site(&ctx, &mut resolver, site.id, 5, 0, false) {
            ProbeOutcome::Measured { v4, v6 } => {
                measured += 1;
                assert!(v4.speed_kbps > 0.0 && v6.speed_kbps > 0.0);
            }
            ProbeOutcome::V4Only => v4_only += 1,
            _ => {}
        }
    }
    assert!(measured > 0, "some dual sites measured");
    assert!(v4_only > measured, "2011: v4-only dominates");
}

#[test]
fn valley_free_holds_for_both_families_at_scale() {
    let topo = generate(&TopologyConfig::scaled(600), 21);
    for family in [Family::V4, Family::V6] {
        let dests: Vec<AsId> = topo
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Content && (family == Family::V4 || n.is_dual_stack()))
            .map(|n| n.id)
            .take(10)
            .collect();
        for dest in dests {
            let routes = routes_to_dest(&topo, dest, family);
            for n in topo.nodes() {
                if let Some(path) = routes.as_path(n.id) {
                    assert!(
                        ipv6web::bgp::compute::is_valley_free(&topo, &path, family),
                        "{family}: {path}"
                    );
                }
            }
        }
    }
}
