//! End-to-end integration: one quick study, checked against both internal
//! consistency invariants and the paper's qualitative shapes.

use ipv6web::analysis::{AsCategory, SiteClass};
use ipv6web::{run_study, Scenario, StudyResult};
use std::sync::OnceLock;

fn study() -> &'static StudyResult {
    static S: OnceLock<StudyResult> = OnceLock::new();
    S.get_or_init(|| run_study(&Scenario::quick(42)).expect("valid scenario"))
}

// ---------------------------------------------------------------- invariants

#[test]
fn table4_sums_to_kept_sites() {
    for (i, a) in study().analyses.iter().enumerate() {
        let t = &study().report.table4;
        let sum: usize = t.counts[i].iter().sum();
        assert_eq!(sum, a.kept.len(), "{}: DL+SP+DP must equal kept", a.vantage);
    }
}

#[test]
fn table2_total_equals_kept_plus_removed() {
    let r = &study().report;
    for (i, a) in study().analyses.iter().enumerate() {
        assert_eq!(r.table2.sites_total[i], a.kept.len() + a.removed.len());
        assert_eq!(r.table2.sites_kept[i], a.kept.len());
        assert!(r.table2.sites_kept[i] <= r.table2.sites_total[i]);
    }
}

#[test]
fn table3_counts_match_removed_sites() {
    let r = &study().report;
    for (i, a) in study().analyses.iter().enumerate() {
        let total: usize = r.table3.counts[i].iter().sum();
        assert_eq!(total, a.removed.len(), "{}", a.vantage);
    }
}

#[test]
fn table8_shares_sum_to_100() {
    let t = &study().report.table8;
    for i in 0..t.vantages.len() {
        if t.n_ases[i] == 0 {
            continue;
        }
        let sum = t.pct_comparable[i] + t.pct_zero_mode[i] + t.pct_small[i] + t.pct_bad[i];
        assert!((sum - 100.0).abs() < 1e-6, "{}: {sum}", t.vantages[i]);
    }
}

#[test]
fn sp_groups_agree_with_site_paths() {
    for a in &study().analyses {
        for (dest, g) in &a.sp_groups {
            for &idx in &g.site_idx {
                let s = &a.kept[idx];
                assert_eq!(s.class, SiteClass::Sp);
                assert_eq!(s.dest_v6, *dest);
                assert_eq!(s.v4_hops, s.v6_hops, "SP sites share the path");
            }
        }
    }
}

#[test]
fn every_as_path_vantage_analyzed() {
    let s = study();
    let expected: Vec<&str> =
        s.world.vantages.iter().filter(|v| v.has_as_path).map(|v| v.name.as_str()).collect();
    let got: Vec<&str> = s.analyses.iter().map(|a| a.vantage.as_str()).collect();
    assert_eq!(expected, got);
}

#[test]
fn report_serializes_to_json() {
    let json = serde_json::to_string(&study().report).expect("report serializes");
    assert!(json.len() > 1000);
    let back: ipv6web::Report = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back, study().report);
}

// ------------------------------------------------------------- paper shapes

#[test]
fn fig1_rises_with_visible_jumps() {
    let s = study();
    let fig1 = &s.report.fig1;
    assert!(fig1.len() > 5);
    let first = fig1.first().unwrap().reachable_pct;
    let last = fig1.last().unwrap().reachable_pct;
    assert!(last > first * 1.5, "reachability must grow substantially: {first} -> {last}");
    // the IPv6 Day jump is the paper's largest single-week step
    let day = s.world.scenario.timeline.ipv6_day_week;
    let at = |w: u32| {
        fig1.iter().find(|p| p.week == w).map(|p| p.reachable_pct).expect("week in series")
    };
    let day_step = at(day) - at(day - 1);
    let mut other_steps = Vec::new();
    for w in fig1.windows(2) {
        if w[1].week != day && w[1].week != s.world.scenario.timeline.iana_week {
            other_steps.push(w[1].reachable_pct - w[0].reachable_pct);
        }
    }
    let max_other = other_steps.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        day_step > max_other,
        "IPv6 Day step ({day_step:.3}) must dominate ordinary weeks ({max_other:.3})"
    );
}

#[test]
fn fig3a_declines_with_rank() {
    let fig3a = &study().report.fig3a;
    let first = fig3a.first().unwrap().1;
    let last = fig3a.last().unwrap().1;
    assert!(
        first > last,
        "top-ranked sites must adopt more: top bucket {first:.2}% vs full list {last:.2}%"
    );
}

#[test]
fn fig3b_top_list_close_to_full_population() {
    // the paper's point: the ranked list is representative — the two series
    // track each other closely
    let (top, all) = study().report.fig3b;
    assert!(top > 0.0 && all > 0.0);
    assert!((top - all).abs() < 15.0, "top {top:.1}% vs all {all:.1}%");
}

#[test]
fn table6_ipv4_dominates_dl_sites() {
    let t = &study().report.table6;
    for i in 0..t.vantages.len() {
        if t.n_sites[i] < 10 {
            continue;
        }
        assert!(
            t.pct_v4_ge_v6[i] >= 75.0,
            "{}: IPv4 must win for most DL (CDN) sites, got {:.0}%",
            t.vantages[i],
            t.pct_v4_ge_v6[i]
        );
        assert!(
            t.v4_perf[i] > t.v6_perf[i],
            "{}: average IPv4 speed must exceed IPv6 for DL sites",
            t.vantages[i]
        );
    }
}

#[test]
fn table8_vs_table11_is_the_h2_contrast() {
    let r = &study().report;
    for i in 0..r.table8.vantages.len() {
        if r.table8.n_ases[i] < 5 || r.table11.n_ases[i] < 5 {
            continue;
        }
        let sp_similar = r.table8.pct_comparable[i] + r.table8.pct_zero_mode[i];
        let dp_similar = r.table11.pct_comparable[i] + r.table11.pct_zero_mode[i];
        assert!(
            sp_similar > dp_similar + 20.0,
            "{}: SP similar {sp_similar:.0}% must far exceed DP {dp_similar:.0}%",
            r.table8.vantages[i]
        );
    }
}

#[test]
fn table8_cross_checks_overwhelmingly_positive() {
    let (pos, neg) = study().report.table8.xcheck;
    assert!(pos > 0, "some SP ASes seen from several vantage points");
    assert!(neg <= (pos / 5).max(1), "negatives must be rare: +{pos}/-{neg}");
}

#[test]
fn table9_sp_families_comparable_per_hop_bucket() {
    let t = &study().report.table9;
    for (vi, _) in t.vantages.iter().enumerate() {
        for b in 0..5 {
            let (m4, n4) = t.v4[vi][b];
            let (m6, n6) = t.v6[vi][b];
            assert_eq!(n4, n6, "SP bucket populations match by construction");
            if n4 >= 10 {
                let ratio = m6 / m4;
                assert!(
                    (0.75..=1.25).contains(&ratio),
                    "SP hop bucket {b}: v6/v4 ratio {ratio:.2} out of range"
                );
            }
        }
    }
}

#[test]
fn table7_v6_mass_shifts_to_longer_paths() {
    // Table 7's robust regularity (clearest in the paper's Penn column):
    // the IPv6 site distribution concentrates at higher AS hop counts than
    // the IPv4 one — missing peering forces detours, and only the tunneled
    // destinations appear "short". Compare the share of sites at >= 4 hops.
    let t = &study().report.table7;
    let mut v4_long_total = 0usize;
    let mut v4_total = 0usize;
    let mut v6_long_total = 0usize;
    let mut v6_total = 0usize;
    for vi in 0..t.vantages.len() {
        for b in 0..5 {
            v4_total += t.v4[vi][b].1;
            v6_total += t.v6[vi][b].1;
            if b >= 3 {
                v4_long_total += t.v4[vi][b].1;
                v6_long_total += t.v6[vi][b].1;
            }
        }
    }
    assert!(v4_total > 0 && v6_total > 0);
    let v4_share = v4_long_total as f64 / v4_total as f64;
    let v6_share = v6_long_total as f64 / v6_total as f64;
    assert!(
        v6_share > v4_share,
        "IPv6 paths must skew longer: {:.0}% vs {:.0}% of sites at >=4 hops",
        100.0 * v6_share,
        100.0 * v4_share
    );
}

#[test]
fn table10_day_results_at_least_as_clean_as_table8() {
    let r = &study().report;
    // Table 10 has no zero-mode: participants fixed servers. Its
    // comparable share should not be materially worse than Table 8's.
    let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let t8 = avg(&r.table8.pct_comparable);
    let t10 = avg(&r.table10.pct_comparable);
    assert!(
        t10 + 20.0 >= t8,
        "IPv6 Day SP comparability ({t10:.0}%) should not collapse vs weekly ({t8:.0}%)"
    );
}

#[test]
fn table13_most_dp_paths_mostly_good_but_few_perfect() {
    let t = &study().report.table13;
    for (vi, v) in t.vantages.iter().enumerate() {
        let b = &t.buckets[vi];
        let total: f64 = b.iter().sum();
        if total < 99.0 {
            continue; // vantage had no DP paths
        }
        assert!(b[0] < 60.0, "{v}: fully-good DP paths must be the exception, got {:.0}%", b[0]);
    }
    assert!(t.n_good_ases > 0, "good-AS set must be non-empty");
}

#[test]
fn hypotheses_hold() {
    let r = &study().report;
    assert!(r.h1.holds, "{}", r.h1.summary);
    assert!(r.h2.holds, "{}", r.h2.summary);
}

#[test]
fn removed_site_bias_is_limited() {
    // Section 5.1: the removal must not obviously bias H2 — removed DP
    // good/bad counts are small relative to the kept DP population.
    let r = &study().report;
    for (i, a) in study().analyses.iter().enumerate() {
        let dp_kept = a.count_of(SiteClass::Dp);
        let dp_removed = r.table5.counts[i][2] + r.table5.counts[i][3];
        if dp_kept >= 20 {
            assert!(
                dp_removed < dp_kept,
                "{}: removed DP ({dp_removed}) must stay below kept DP ({dp_kept})",
                a.vantage
            );
        }
    }
}

#[test]
fn sp_bad_category_rare_under_h1() {
    // the H1 regime has ~no forwarding penalties, so genuinely-bad SP
    // destination ASes must be rare everywhere
    for a in &study().analyses {
        let bad = a.sp_groups.values().filter(|g| g.category == AsCategory::Bad).count();
        assert!(
            bad * 10 <= a.sp_groups.len().max(1),
            "{}: {bad}/{} SP ASes network-bad under H1",
            a.vantage,
            a.sp_groups.len()
        );
    }
}
