#!/usr/bin/env bash
# Runs `cargo fmt` over every first-party workspace package.
#
# The package list is derived from `cargo metadata`, not hand-maintained:
# vendored crates (vendor/*) keep their upstream formatting, and a newly
# added ipv6web-* crate is picked up automatically instead of being
# silently skipped.
#
# Usage: tools/ci-fmt.sh [--check]
set -euo pipefail
cd "$(dirname "$0")/.."

mode=()
if [[ "${1:-}" == "--check" ]]; then
  mode=(--check)
elif [[ $# -gt 0 ]]; then
  echo "usage: $0 [--check]" >&2
  exit 2
fi

pkgs=$(cargo metadata --format-version 1 --no-deps |
  python3 -c '
import json, sys
meta = json.load(sys.stdin)
names = sorted(p["name"] for p in meta["packages"] if p["name"].startswith("ipv6web"))
print("\n".join(names))
')

if [[ -z "$pkgs" ]]; then
  echo "ci-fmt: no ipv6web packages found in cargo metadata" >&2
  exit 1
fi

args=()
while IFS= read -r p; do
  args+=(-p "$p")
done <<<"$pkgs"

exec cargo fmt "${mode[@]}" "${args[@]}"
