#!/usr/bin/env bash
# Byte-compare a reference file against one or more candidates.
#
#   tools/ci-compare.sh REFERENCE CANDIDATE [CANDIDATE...]
#
# Exits 0 when every candidate is byte-identical to the reference.
# On mismatch, prints a readable unified diff head for each differing
# candidate and exits 1. Missing files are reported explicitly (a vanished
# artifact should never read as "identical").
set -euo pipefail

if [ "$#" -lt 2 ]; then
  echo "usage: $0 REFERENCE CANDIDATE [CANDIDATE...]" >&2
  exit 2
fi

ref="$1"
shift
if [ ! -f "$ref" ]; then
  echo "ci-compare: reference $ref not found" >&2
  exit 2
fi

fail=0
for cand in "$@"; do
  if [ ! -f "$cand" ]; then
    echo "ci-compare: candidate $cand not found" >&2
    fail=1
    continue
  fi
  if cmp -s "$ref" "$cand"; then
    echo "ci-compare: $cand is byte-identical to $ref"
  else
    echo "ci-compare: MISMATCH — $cand differs from $ref:" >&2
    diff -u "$ref" "$cand" | head -60 >&2 || true
    fail=1
  fi
done
exit "$fail"
