//! # ipv6web
//!
//! A full reproduction, in Rust, of **"Assessing IPv6 Through Web Access —
//! A Measurement Study and Its Findings"** (Nikkhah, Guérin, Lee, Woundy;
//! ACM CoNEXT 2011).
//!
//! The paper monitored Alexa's top-1M web sites from six vantage points
//! for about a year, compared IPv4 vs IPv6 download performance for
//! dual-stack sites, joined the measurements with BGP `AS_PATH` data, and
//! validated two hypotheses:
//!
//! * **H1** — the IPv6 *data plane* performs on par with IPv4: when the
//!   IPv6 and IPv4 AS paths coincide, so does performance.
//! * **H2** — *routing differences* (missing IPv6 peering) are the main
//!   cause of poorer IPv6 performance: performance diverges where the
//!   paths do.
//!
//! Because the 2011 Internet cannot be re-measured, this crate family
//! rebuilds the entire measurement apparatus over a simulated
//! dual-stack Internet — AS-level topology with policy routing, a
//! flow-level data plane with a TCP download model and 6in4 tunnels, DNS,
//! web sites with CDN placement and server-side IPv6 penalties, the
//! paper's multi-threaded monitoring tool, and its full analysis
//! methodology. Every table and figure of the paper regenerates from
//! `cargo run -p ipv6web-bench --bin repro`.
//!
//! ## Quickstart
//!
//! ```no_run
//! use ipv6web::{run_study, Scenario};
//!
//! let study = run_study(&Scenario::quick(42)).expect("valid scenario");
//! println!("{}", study.report.render());
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`obs`] | `ipv6web-obs` | metrics registry: counters, histograms, span timers |
//! | [`stats`] | `ipv6web-stats` | confidence intervals, median filter, regression |
//! | [`packet`] | `ipv6web-packet` | IPv4/IPv6/ICMP/UDP/TCP wire formats, 6in4/6to4 |
//! | [`topology`] | `ipv6web-topology` | dual-stack AS graph generator |
//! | [`bgp`] | `ipv6web-bgp` | Gao–Rexford routing, `AS_PATH` tables |
//! | [`netsim`] | `ipv6web-netsim` | path metrics, TCP download model, traceroute |
//! | [`dns`] | `ipv6web-dns` | zones, resolver, wire codec |
//! | [`xlat`] | `ipv6web-xlat` | NAT64/DNS64/464XLAT transition plane, client stacks |
//! | [`web`] | `ipv6web-web` | sites, servers, CDNs, population generator |
//! | [`alexa`] | `ipv6web-alexa` | ranked lists, churn, adoption timeline |
//! | [`faults`] | `ipv6web-faults` | deterministic fault-injection plans and injector |
//! | [`monitor`] | `ipv6web-monitor` | the paper's monitoring tool (Fig 2) |
//! | [`analysis`] | `ipv6web-analysis` | sanitization, SP/DP, H1/H2, tables, figures |
//! | [`core`] | `ipv6web-core` | scenarios, study driver, the [`Report`] |
//! | [`daemon`] | `ipv6web-daemon` | `ipv6webd`: HTTP job service with a crash-safe store |

pub use ipv6web_alexa as alexa;
pub use ipv6web_analysis as analysis;
pub use ipv6web_bgp as bgp;
pub use ipv6web_core as core;
pub use ipv6web_daemon as daemon;
pub use ipv6web_dns as dns;
pub use ipv6web_faults as faults;
pub use ipv6web_monitor as monitor;
pub use ipv6web_netsim as netsim;
pub use ipv6web_obs as obs;
pub use ipv6web_packet as packet;
pub use ipv6web_stats as stats;
pub use ipv6web_topology as topology;
pub use ipv6web_web as web;
pub use ipv6web_xlat as xlat;

pub use ipv6web_core::{
    run_study, run_study_mode, run_study_on_world, ExecutionMode, Report, Scenario, StreamRoutes,
    StudyError, StudyResult, World, WorldError,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        // spot-check one item per crate so a broken re-export fails here
        let _ = crate::obs::Histogram::new();
        let _ = crate::stats::RelativeCiRule::paper();
        let _ = crate::packet::ipv4::IPPROTO_IPV6;
        let _ = crate::topology::TopologyConfig::test_small();
        let _ = crate::netsim::TcpConfig::paper();
        let _ = crate::dns::RecordType::Aaaa;
        let _ = crate::alexa::AdoptionTimeline::paper();
        let _ = crate::faults::FaultPlan::default();
        let _ = crate::monitor::CampaignConfig::test_small();
        let _ = crate::analysis::AnalysisConfig::paper();
        let _ = crate::daemon::JobSpec::default();
        let _ = crate::Scenario::quick(1);
    }
}
