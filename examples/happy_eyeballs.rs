//! What the transition debate meant for users: Happy Eyeballs racing.
//!
//! ```sh
//! cargo run --release --example happy_eyeballs
//! ```
//!
//! The paper argues poor IPv6 quality is a *disincentive* for content
//! providers (Google white-listed resolvers for exactly this reason).
//! This example quantifies the user side across every dual-stack site in
//! the simulated world: under RFC 6555 racing vs the older sequential
//! fallback, how often does the browser silently abandon IPv6, and what
//! does the attempt cost in connection-setup latency?

use ipv6web::bgp::BgpTable;
use ipv6web::netsim::{discover_pmtud, race, DataPlane, HappyEyeballsConfig, Pmtud, PmtudConfig};
use ipv6web::stats::derive_rng;
use ipv6web::topology::{generate, AsId, Family, Tier, TopologyConfig};

fn main() {
    let topo = generate(&TopologyConfig::scaled(800), 11);
    let vantage = topo
        .nodes()
        .iter()
        .find(|n| {
            n.tier == Tier::Access
                && n.is_dual_stack()
                && topo
                    .neighbors(n.id, Family::V6)
                    .iter()
                    .any(|&(_, _, eid)| topo.edge(eid).tunnel.is_none())
        })
        .expect("native dual-stack access AS")
        .id;
    let dests: Vec<AsId> = topo
        .nodes()
        .iter()
        .filter(|n| n.tier == Tier::Content && n.is_dual_stack())
        .map(|n| n.id)
        .collect();
    let t4 = BgpTable::build(&topo, vantage, Family::V4, &dests);
    let t6 = BgpTable::build(&topo, vantage, Family::V6, &dests);
    let dp = DataPlane::new(&topo);
    let mut rng = derive_rng(11, "he-example");

    for (label, cfg) in [
        ("RFC 6555 (250 ms timer)", HappyEyeballsConfig::rfc6555()),
        ("pre-Happy-Eyeballs (sequential)", HappyEyeballsConfig::sequential()),
    ] {
        let mut v6_wins = 0usize;
        let mut fallbacks = 0usize;
        let mut total_ms = 0.0f64;
        let mut n = 0usize;
        for &dest in &dests {
            let m4 = t4.route(dest).map(|r| dp.metrics(r, Family::V4));
            let (m6, v6_broken) = match t6.route(dest) {
                None => (None, false),
                Some(r) => {
                    let m = dp.metrics(r, Family::V6);
                    // a tunnel path with filtered PTB blackholes large transfers
                    let broken = matches!(
                        discover_pmtud(&mut rng, &topo, r, Family::V6, &PmtudConfig::paper_era()),
                        Pmtud::Blackhole(_)
                    );
                    (Some(m), broken)
                }
            };
            let Some(out) = race(&mut rng, m6.as_ref(), m4.as_ref(), v6_broken, &cfg) else {
                continue;
            };
            n += 1;
            total_ms += out.connect_ms;
            if out.winner == Family::V6 {
                v6_wins += 1;
            } else if m6.is_some() {
                fallbacks += 1;
            }
        }
        println!(
            "{label:<34} {n} dual-stack connects: {v6_wins} over IPv6, {fallbacks} silent \
             fallbacks, mean connect {:.0} ms",
            total_ms / n.max(1) as f64
        );
    }
    println!(
        "\nReading: Happy Eyeballs caps the cost of broken or slow IPv6 at the\n\
         fallback timer, which is what finally made enabling AAAA records safe —\n\
         but the fallbacks it hides are exactly the routing problems the paper's\n\
         H2 methodology surfaces."
    );
}
