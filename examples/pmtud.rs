//! Path-MTU discovery across the dual-stack world.
//!
//! ```sh
//! cargo run --release --example pmtud
//! ```
//!
//! 6in4 tunnels shave 20 bytes off the IPv6 path MTU, and when a tunnel
//! hop's ICMPv6 Packet Too Big message is filtered, the path turns into
//! the classic 2011 "IPv6 hangs on big pages" blackhole — invisible to
//! reachability checks, fatal to page loads. This example surveys every
//! dual-stack destination from one vantage point and reports the MTU
//! landscape under clean and paper-era PTB filtering.

use ipv6web::bgp::BgpTable;
use ipv6web::netsim::{discover_pmtud, path_mtu, Pmtud, PmtudConfig};
use ipv6web::stats::derive_rng;
use ipv6web::topology::{generate, AsId, Family, Tier, TopologyConfig};

fn main() {
    let topo = generate(&TopologyConfig::scaled(800), 2026);
    let vantage = topo
        .nodes()
        .iter()
        .find(|n| n.tier == Tier::Access && n.is_dual_stack())
        .expect("dual-stack access AS")
        .id;
    let dests: Vec<AsId> = topo
        .nodes()
        .iter()
        .filter(|n| n.tier == Tier::Content && n.is_dual_stack())
        .map(|n| n.id)
        .collect();
    let table = BgpTable::build(&topo, vantage, Family::V6, &dests);
    let mut rng = derive_rng(2026, "pmtud-example");

    let mut full = 0usize;
    let mut reduced = 0usize;
    let mut blackholes = 0usize;
    for route in table.iter() {
        let true_mtu = path_mtu(&topo, route);
        if true_mtu == 1500 {
            full += 1;
            continue;
        }
        reduced += 1;
        match discover_pmtud(&mut rng, &topo, route, Family::V6, &PmtudConfig::paper_era()) {
            Pmtud::Discovered(m) => assert_eq!(m, true_mtu),
            Pmtud::Blackhole(hop) => {
                blackholes += 1;
                if blackholes <= 5 {
                    println!(
                        "blackhole toward {} at hop {hop}: path {}",
                        route.dest, route.as_path
                    );
                }
            }
        }
    }
    println!(
        "\n{} v6 destinations: {full} at full 1500-byte MTU, {reduced} tunnel-reduced (1480)",
        table.len()
    );
    println!(
        "under paper-era PTB filtering, {blackholes} of the reduced paths blackhole \
         ({:.0}%)",
        100.0 * blackholes as f64 / reduced.max(1) as f64
    );
    println!(
        "\nReading: every blackholed destination would pass a ping test and fail a\n\
         page download — one more reason the paper insisted on measuring real\n\
         web transfers rather than reachability."
    );
}
