//! Peering-parity ablation — the paper's headline recommendation.
//!
//! ```sh
//! cargo run --release --example peering_parity
//! ```
//!
//! Section 6: *"the single most effective way to put IPv6 and IPv4 on an
//! equal footing may well be to ensure peering parity."* This example
//! sweeps the fraction of IPv4 peering edges replicated in IPv6 and shows
//! how, as parity rises, (a) the share of destinations reached over
//! *different* paths (DP) collapses and (b) the aggregate IPv6/IPv4
//! performance ratio closes toward 1.

use ipv6web::analysis::SiteClass;
use ipv6web::{run_study, Scenario};

fn main() {
    println!("deployment-and-peering parity sweep (quick scenario, seed 7)");
    println!(
        "lambda interpolates the 2011 deployment toward full parity: adoption,\n\
         transit replication, peering replication and tunnel retirement move\n\
         together — peering parity only pays off where IPv6 is deployed.\n"
    );
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>12}",
        "lambda", "SP sites", "DP sites", "DP share", "v6/v4 ratio"
    );
    for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut scenario = Scenario::quick(7);
        scenario.topology.dual = scenario.topology.dual.toward_parity(lambda);
        let study = run_study(&scenario).expect("valid scenario");

        // the ratio is computed over same-location (SP+DP) sites: DL sites
        // mix in CDN economics and 6to4 detours, which peering parity is
        // not meant to fix
        let (mut sp, mut dp, mut v4_sum, mut v6_sum) = (0usize, 0usize, 0.0f64, 0.0f64);
        for a in &study.analyses {
            sp += a.count_of(SiteClass::Sp);
            dp += a.count_of(SiteClass::Dp);
            for s in a.kept.iter().filter(|s| s.class != SiteClass::Dl) {
                v4_sum += s.v4_mean;
                v6_sum += s.v6_mean;
            }
        }
        let dp_share = if sp + dp > 0 { 100.0 * dp as f64 / (sp + dp) as f64 } else { 0.0 };
        let ratio = if v4_sum > 0.0 { v6_sum / v4_sum } else { 0.0 };
        println!("{lambda:<8.2} {sp:>9} {dp:>9} {dp_share:>8.1}% {ratio:>12.3}");
    }
    println!(
        "\nReading: as IPv6 deployment-plus-peering approaches IPv4's,\n\
         destinations shift from DP to SP and the same-location IPv6/IPv4\n\
         speed ratio approaches 1 — the paper's recommendation quantified.\n\
         (The residual gap at lambda=1 is server-side IPv6 service quality,\n\
         which no amount of peering fixes — the paper's zero-mode story.)"
    );
}
