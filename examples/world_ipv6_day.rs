//! The World IPv6 Day side experiment (Section 5.3, Tables 10 and 12).
//!
//! ```sh
//! cargo run --release --example world_ipv6_day
//! ```
//!
//! On 2011-06-08 participants made their sites IPv6-ready for 24 hours and
//! the paper's monitors probed them every 30 minutes. Two things made the
//! day special: traffic (and therefore forwarding stress) spiked, and
//! participants fixed their *server-side* IPv6 deficiencies — so the SP
//! results came out even cleaner than the weekly campaign's (no zero-mode
//! row), while DP destinations still lagged: routing, not servers.

use ipv6web::{run_study, Scenario};

fn main() {
    let study = run_study(&Scenario::quick(2026)).expect("valid scenario");
    let day_week = study.world.scenario.timeline.ipv6_day_week;
    let participants = study.world.ipv6_day_participants();

    println!(
        "World IPv6 Day at campaign week {day_week} ({}) — {} participants\n",
        study.world.scenario.timeline.date_label(day_week),
        participants.len()
    );

    println!("{}", study.report.table10);
    println!("{}", study.report.table12);

    // contrast with the weekly campaign
    println!("weekly-campaign contrast:");
    println!("{}", study.report.table8);
    println!("{}", study.report.table11);

    for (i, db) in &study.day_dbs {
        let vantage = &study.world.vantages[*i];
        let measured = db.iter().filter(|(_, r)| !r.samples_v4.is_empty()).count();
        println!(
            "{:<16} {measured} participants measured to confidence during the day",
            vantage.name
        );
    }

    println!(
        "\nReading: with servers fixed for the day, SP comparability rises\n\
         (no zero-mode row needed) while DP stays far behind — H2's routing\n\
         explanation survives the day's traffic spike."
    );
}
