//! The related-work experiment: RTT comparison by ping ([2], [11]).
//!
//! ```sh
//! cargo run --release --example ping_survey
//! ```
//!
//! Before the paper, Cho et al. [2] and Zhou & Van Mieghem [11] compared
//! IPv6 and IPv4 by *round-trip time* between dual-stack hosts; [11] found
//! IPv6 significantly worse in about 36% of pairs and blamed tunnels. This
//! example runs their methodology over the same simulated Internet the
//! paper's pipeline runs on — and reaches the same conclusions they did,
//! tying the two methodologies together.

use ipv6web::bgp::BgpTable;
use ipv6web::netsim::{ping, DataPlane, PingConfig};
use ipv6web::stats::derive_rng;
use ipv6web::topology::{generate, AsId, Family, Tier, TopologyConfig};

fn main() {
    let topo = generate(&TopologyConfig::scaled(800), 77);
    // like the paper's monitors, measure from an access AS with *native*
    // v6 (tunneled vantage points would tax every single pair)
    let src = topo
        .nodes()
        .iter()
        .find(|n| {
            n.tier == Tier::Access
                && n.is_dual_stack()
                && topo
                    .neighbors(n.id, Family::V6)
                    .iter()
                    .any(|&(_, _, eid)| topo.edge(eid).tunnel.is_none())
        })
        .expect("dual-stack access AS")
        .id;
    let dests: Vec<AsId> = topo
        .nodes()
        .iter()
        .filter(|n| n.tier == Tier::Content && n.is_dual_stack())
        .map(|n| n.id)
        .collect();
    let t4 = BgpTable::build(&topo, src, Family::V4, &dests);
    let t6 = BgpTable::build(&topo, src, Family::V6, &dests);
    let dp = DataPlane::new(&topo);
    let cfg = PingConfig::standard();
    let mut rng = derive_rng(77, "ping-survey");

    let mut pairs = 0usize;
    let mut v6_much_worse = 0usize; // [11]'s criterion: >50% higher RTT
    let mut v6_worse_tunneled = 0usize;
    let mut v6_worse_native = 0usize;
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>8}",
        "dest", "v4 avg ms", "v6 avg ms", "ratio", "tunnel"
    );
    for &dest in &dests {
        let (Some(r4), Some(r6)) = (t4.route(dest), t6.route(dest)) else {
            continue;
        };
        let m4 = dp.metrics(r4, Family::V4);
        let m6 = dp.metrics(r6, Family::V6);
        let p4 = ping(&mut rng, &topo, src, dest, &m4, Family::V4, &cfg);
        let p6 = ping(&mut rng, &topo, src, dest, &m6, Family::V6, &cfg);
        let (Some(a4), Some(a6)) = (p4.avg_ms, p6.avg_ms) else {
            continue;
        };
        pairs += 1;
        let ratio = a6 / a4;
        if pairs <= 12 {
            println!(
                "{:<10} {a4:>10.1} {a6:>10.1} {ratio:>8.2} {:>8}",
                dest.to_string(),
                if m6.tunneled { "yes" } else { "no" }
            );
        }
        if ratio > 1.5 {
            v6_much_worse += 1;
            if m6.tunneled {
                v6_worse_tunneled += 1;
            } else {
                v6_worse_native += 1;
            }
        }
    }
    println!("\n{pairs} dual-stack pairs measured");
    println!(
        "IPv6 RTT >1.5x IPv4 for {v6_much_worse} pairs ({:.0}%) — [11] reported ~36% on the \
         2005 Internet; this 800-AS demo world is deliberately tunnel-heavy",
        100.0 * v6_much_worse as f64 / pairs.max(1) as f64
    );
    println!(
        "of those, {v6_worse_tunneled} cross a 6in4 tunnel and {v6_worse_native} are native detours"
    );
    println!(
        "\nReading: the RTT-based methodology of the earlier studies reaches the\n\
         same verdict as the paper's download-based one — where IPv6 is much\n\
         worse, the cause is the path (tunnels and detours), not forwarding."
    );
}
