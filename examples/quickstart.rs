//! Quickstart: run the whole study at laptop scale and print the paper.
//!
//! ```sh
//! cargo run --release --example quickstart [seed]
//! ```
//!
//! Builds a simulated dual-stack Internet, monitors it weekly from six
//! vantage points, runs the World IPv6 Day side experiment, and renders
//! every table and figure of the paper plus the H1/H2 verdicts.

use ipv6web::{run_study, Scenario};

fn main() {
    let seed: u64 =
        std::env::args().nth(1).map(|s| s.parse().expect("seed must be an integer")).unwrap_or(42);

    eprintln!("building world and running campaign (seed {seed})...");
    let study = run_study(&Scenario::quick(seed)).expect("valid scenario");

    println!("{}", study.report.render());

    // A taste of the underlying data: the three headline numbers.
    let r = &study.report;
    println!("--- headline ---");
    println!(
        "final IPv6 reachability: {:.2}% of monitored list sites",
        r.fig1.last().map(|p| p.reachable_pct).unwrap_or(0.0)
    );
    println!(
        "SP destination ASes with comparable IPv6 (first vantage): {:.1}%",
        r.table8.pct_comparable.first().copied().unwrap_or(0.0)
    );
    println!(
        "DP destination ASes with comparable IPv6 (first vantage): {:.1}%",
        r.table11.pct_comparable.first().copied().unwrap_or(0.0)
    );
    println!("{}", r.h1.summary);
    println!("{}", r.h2.summary);
}
