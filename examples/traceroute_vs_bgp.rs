//! Why the paper used BGP tables instead of traceroute (Section 3).
//!
//! ```sh
//! cargo run --release --example traceroute_vs_bgp
//! ```
//!
//! Runs packet-level traceroutes (hop-limit countdown, real ICMP Time
//! Exceeded messages) toward a few hundred destinations in both families
//! and reports (a) the completion rate — the paper saw over 50% failures —
//! and (b) how often the AS path inferred from a *completed* traceroute
//! agrees with the BGP `AS_PATH`, the paper's justification for treating
//! AS-level agreement as the ground truth.

use ipv6web::bgp::BgpTable;
use ipv6web::netsim::{traceroute, TracerouteConfig};
use ipv6web::stats::derive_rng;
use ipv6web::topology::{generate, AsId, Family, Tier, TopologyConfig};

fn main() {
    let topo = generate(&TopologyConfig::scaled(800), 1234);
    let vantage = topo
        .nodes()
        .iter()
        .find(|n| n.tier == Tier::Access && n.is_dual_stack())
        .expect("dual-stack access AS")
        .id;
    let dests: Vec<AsId> = topo
        .nodes()
        .iter()
        .filter(|n| n.tier == Tier::Content && n.is_dual_stack())
        .map(|n| n.id)
        .collect();
    println!("{} dual-stack content destinations from {vantage}\n", dests.len());

    let cfg = TracerouteConfig::paper();
    let mut rng = derive_rng(1234, "example-traceroute");
    for family in [Family::V4, Family::V6] {
        let table = BgpTable::build(&topo, vantage, family, &dests);
        let mut completed = 0usize;
        let mut agree = 0usize;
        let mut total = 0usize;
        for route in table.iter() {
            total += 1;
            let tr = traceroute(&mut rng, &topo, route, family, &cfg);
            if tr.completed {
                completed += 1;
                // AS-level agreement between inferred and BGP paths: the
                // inferred path excludes the source AS and silent hops.
                let inferred = tr.inferred_as_path();
                let bgp: Vec<AsId> = route.as_path.ases()[1..].to_vec();
                let subsequence = is_subsequence(&inferred, &bgp);
                if subsequence {
                    agree += 1;
                }
            }
        }
        println!(
            "{family}: {total} routed, {completed} traceroutes completed ({:.0}% failed), \
             {agree}/{completed} completed traces consistent with BGP AS_PATH",
            100.0 * (total - completed) as f64 / total.max(1) as f64,
        );
    }
    println!(
        "\nReading: traceroute fails most of the time (filtered destinations),\n\
         but when it completes, its AS-level view matches BGP — so the paper's\n\
         use of BGP AS_PATHs is both necessary and sound."
    );
}

/// True when `needle` is a subsequence of `haystack` (silent hops drop
/// ASes from the inferred path, never reorder them).
fn is_subsequence(needle: &[AsId], haystack: &[AsId]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}
