//! Uniform range sampling, replicating rand 0.8.5's `sample_single` /
//! `sample_single_inclusive` algorithms exactly (widening-multiply with
//! rejection zone for integers, the `[1,2)` mantissa trick for floats).

use crate::{Distribution, RngCore, Standard};
use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_single_inclusive(start, end, rng)
    }
}

/// Widening multiply: `(hi, lo)` words of `a * b`.
trait WideningMultiply: Sized {
    fn wmul(self, b: Self) -> (Self, Self);
}

macro_rules! wmul_impl {
    ($ty:ty, $wide:ty, $shift:expr) => {
        impl WideningMultiply for $ty {
            #[inline]
            fn wmul(self, b: $ty) -> ($ty, $ty) {
                let tmp = (self as $wide) * (b as $wide);
                ((tmp >> $shift) as $ty, tmp as $ty)
            }
        }
    };
}
wmul_impl!(u32, u64, 32);
wmul_impl!(u64, u128, 64);

impl WideningMultiply for usize {
    #[inline]
    fn wmul(self, b: usize) -> (usize, usize) {
        let (hi, lo) = (self as u64).wmul(b as u64);
        (hi as usize, lo as usize)
    }
}

impl WideningMultiply for u128 {
    #[inline]
    fn wmul(self, b: u128) -> (u128, u128) {
        // 128x128 -> 256 via four 64x64 partial products.
        const LOWER_MASK: u128 = 0xffff_ffff_ffff_ffff;
        let a_lo = self & LOWER_MASK;
        let a_hi = self >> 64;
        let b_lo = b & LOWER_MASK;
        let b_hi = b >> 64;

        let ll = a_lo * b_lo;
        let lh = a_lo * b_hi;
        let hl = a_hi * b_lo;
        let hh = a_hi * b_hi;

        let mid = (ll >> 64) + (lh & LOWER_MASK) + (hl & LOWER_MASK);
        let lo = (ll & LOWER_MASK) | (mid << 64);
        let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
        (hi, lo)
    }
}

// Shared rejection-sampling loop (rand 0.8.5's sample_single body).
macro_rules! uniform_int_loop {
    ($ty:ty, $unsigned:ty, $u_large:ty, $low:ident, $range:ident, $rng:ident) => {{
        debug_assert!($range != 0);
        let zone = if (<$unsigned>::MAX as u128) <= (u16::MAX as u128) {
            // Small types: exact rejection zone via modulo.
            let unsigned_max: $u_large = <$u_large>::MAX;
            let ints_to_reject = (unsigned_max - $range + 1) % $range;
            unsigned_max - ints_to_reject
        } else {
            ($range << $range.leading_zeros()).wrapping_sub(1)
        };
        loop {
            let v: $u_large = Standard.sample($rng);
            let (hi, lo) = v.wmul($range);
            if lo <= zone {
                return $low.wrapping_add(hi as $ty);
            }
        }
    }};
}

// ($ty, $unsigned, $u_large) exactly as in rand 0.8.5's uniform_int_impl!.
macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                let range = high.wrapping_sub(low) as $unsigned as $u_large;
                uniform_int_loop!($ty, $unsigned, $u_large, low, range, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // The range covers the whole integer domain.
                    return Standard.sample(rng);
                }
                uniform_int_loop!($ty, $unsigned, $u_large, low, range, rng)
            }
        }
    };
}

uniform_int_impl!(u8, u8, u32);
uniform_int_impl!(u16, u16, u32);
uniform_int_impl!(u32, u32, u32);
uniform_int_impl!(u64, u64, u64);
uniform_int_impl!(u128, u128, u128);
uniform_int_impl!(usize, usize, usize);
uniform_int_impl!(i8, u8, u32);
uniform_int_impl!(i16, u16, u32);
uniform_int_impl!(i32, u32, u32);
uniform_int_impl!(i64, u64, u64);
uniform_int_impl!(i128, u128, u128);
uniform_int_impl!(isize, usize, usize);

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $next:ident, $exp_bias:expr, $frac_bits:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                debug_assert!(low.is_finite() && high.is_finite() && low < high);
                let mut scale = high - low;
                loop {
                    // Generate a value in [1, 2): exponent 0, random mantissa.
                    let frac = rng.$next() >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(frac | (($exp_bias as $uty) << $frac_bits));
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Rounding pushed us onto `high`: shrink scale by one ulp
                    // (rand 0.8.5's decrease_masked) and retry.
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                debug_assert!(low.is_finite() && high.is_finite() && low <= high);
                // Largest value0_1 can take is 1 - 2^-frac_bits.
                let max_rand: $ty = 1.0 - <$ty>::EPSILON / 2.0;
                let mut scale = (high - low) / max_rand;
                loop {
                    let frac = rng.$next() >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(frac | (($exp_bias as $uty) << $frac_bits));
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res <= high {
                        return res;
                    }
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }
        }
    };
}

uniform_float_impl!(f64, u64, 64 - 52, next_u64, 1023u64, 52);
uniform_float_impl!(f32, u32, 32 - 23, next_u32, 127u32, 23);

/// `Uniform` distribution object (constructed per range), kept for API
/// parity; sampling defers to the single-shot path.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: SampleUniform + Copy + PartialOrd> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new called with empty range");
        Uniform { low, high, inclusive: false }
    }

    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        assert!(low <= high, "Uniform::new_inclusive called with empty range");
        Uniform { low, high, inclusive: true }
    }
}

impl<T: SampleUniform + Copy> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        if self.inclusive {
            T::sample_single_inclusive(self.low, self.high, rng)
        } else {
            T::sample_single(self.low, self.high, rng)
        }
    }
}
