//! Distributions: `Standard` plus the uniform samplers, matching rand 0.8.5
//! bit-for-bit on the implemented types.

pub mod uniform;

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: full integer ranges, `[0,1)` for
/// floats (53-bit grid for `f64`, 24-bit for `f32`), fair `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int_via_u32 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u32() as $ty
            }
        }
    )*};
}
standard_int_via_u32!(u8, u16, u32, i8, i16, i32);

macro_rules! standard_int_via_u64 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_int_via_u64!(u64, i64, usize, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        // rand 0.8: high word first.
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        let v: u128 = Standard.sample(rng);
        v as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8: compare the most significant bit of an u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Multiply-based [0,1) with 53 bits of precision (rand 0.8.5).
        let value = rng.next_u64() >> (64 - 53);
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> (32 - 24);
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
