//! Minimal, offline vendored stand-in for the `rand` crate (0.8 API).
//!
//! Only the surface this workspace actually uses is implemented, but every
//! implemented sampler is **bit-compatible with rand 0.8.5**: given the same
//! `RngCore` word stream it produces the same values. That keeps seeded
//! study outputs (reports, tables, figures) identical to what the real
//! crates would produce.
//!
//! Covered surface: `RngCore`, `SeedableRng`, `Rng::{gen, gen_range,
//! gen_bool, sample}`, `distributions::{Distribution, Standard, Uniform}`,
//! `seq::SliceRandom::{choose, shuffle}`.

pub mod distributions;
pub mod seq;

pub use distributions::uniform::{SampleRange, SampleUniform};
pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random words.
///
/// Mirrors `rand_core::RngCore` 0.6.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
///
/// Mirrors `rand_core::SeedableRng` 0.6 (the `seed_from_u64` default uses
/// the same SplitMix64 expansion as rand_core).
pub trait SeedableRng: Sized {
    /// Seed byte array type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it with SplitMix64
    /// exactly like rand_core 0.6.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 as used by rand_core::SeedableRng::seed_from_u64.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing random value methods, blanket-implemented for every
/// [`RngCore`] exactly like rand 0.8's `Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (rand 0.8's Bernoulli sampler).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        if p == 1.0 {
            return true;
        }
        // Bernoulli::new: p scaled to 2^64.
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.gen::<u64>() < p_int
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` namespace (kept for path compatibility).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic counter "RNG" for exercising the samplers.
    struct StepRng(u64);
    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StepRng(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2u8..=4);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let g = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
    }

    #[test]
    fn standard_f64_is_53_bit_unit_interval() {
        let mut rng = StepRng(1);
        for _ in 0..100 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            // 53-bit grid: f * 2^53 must be integral
            assert_eq!((f * 9007199254740992.0).fract(), 0.0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StepRng(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn seed_from_u64_fills_seed_deterministically() {
        struct S([u8; 8]);
        impl SeedableRng for S {
            type Seed = [u8; 8];
            fn from_seed(seed: [u8; 8]) -> Self {
                S(seed)
            }
        }
        let a = S::seed_from_u64(42).0;
        let b = S::seed_from_u64(42).0;
        assert_eq!(a, b);
        assert_ne!(a, S::seed_from_u64(43).0);
    }
}
