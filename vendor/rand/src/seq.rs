//! Slice sequence helpers (`choose`, `shuffle`), matching rand 0.8.5.

use crate::{Rng, RngCore};

/// rand 0.8.5's internal index sampler: uses 32-bit sampling for bounds that
/// fit, which matters for bit-compatibility of `choose`/`shuffle`.
fn gen_index<R: Rng + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= (u32::MAX as usize) {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Extension trait on slices for random selection and shuffling.
pub trait SliceRandom {
    /// Slice element type.
    type Item;

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle (from the end, as rand 0.8.5 does).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            // invariant: elements with index > i have been locked in place.
            self.swap(i, gen_index(rng, i + 1));
        }
    }
}
