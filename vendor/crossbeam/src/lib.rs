//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Provides the `channel` module's MPMC channels (bounded and unbounded)
//! with blocking `send`/`recv`, clonable endpoints, and disconnect-on-drop
//! semantics — the subset the monitoring pool uses. Built on
//! `Mutex`/`Condvar`; throughput is more than sufficient for the
//! simulation's coarse-grained work items.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent value is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages; `send`
    /// blocks while the channel is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be positive");
        new_channel(Some(cap))
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self
                            .chan
                            .not_full
                            .wait(state)
                            .expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel poisoned").senders += 1;
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty. Fails
        /// only when the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .chan
                    .not_empty
                    .wait(state)
                    .expect("channel poisoned");
            }
        }

        /// Non-blocking receive of whatever is already queued.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            match state.queue.pop_front() {
                Some(value) => {
                    drop(state);
                    self.chan.not_full.notify_one();
                    Ok(value)
                }
                None => Err(RecvError),
            }
        }

        /// Blocking iterator that ends when the channel is disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel poisoned").receivers += 1;
            Receiver { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.chan.not_full.notify_all();
            }
        }
    }

    /// Iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_without_receivers() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(channel::SendError(5)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let handle = std::thread::spawn(move || {
            // this send must block until the main thread drains one slot
            tx.send(3).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        handle.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = channel::bounded(4);
        let (res_tx, res_rx) = channel::unbounded();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let res_tx = res_tx.clone();
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        res_tx.send(v).unwrap();
                    }
                });
            }
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(res_tx);
        });
        let mut got: Vec<i32> = res_rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
