//! Offline vendored serde_json front-end.
//!
//! Formats the vendored `serde::Value` tree with the same conventions as
//! real serde_json: compact `{"a":1}` for `to_string`, 2-space-indented
//! pretty output for `to_string_pretty`, shortest-roundtrip float printing
//! (every float parses back to the identical bits), and a recursive-descent
//! parser for `from_str`.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Error type for serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Alias matching serde_json's `Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes to pretty JSON (2-space indent, serde_json style).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

// ---- writer ----------------------------------------------------------------

fn write_escaped_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shortest-roundtrip float formatting. Rust's `{:?}` for floats is the
/// shortest decimal that parses back exactly, which is the same digit
/// sequence ryu (real serde_json) produces; the checked-in reports contain
/// no exponent-notation floats, so positional formatting matches byte-wise.
fn write_f64(f: f64, out: &mut String) {
    if f.is_nan() || f.is_infinite() {
        // serde_json writes null for non-finite floats
        out.push_str("null");
        return;
    }
    let s = format!("{f:?}");
    out.push_str(&s);
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped_str(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped_str(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn push_indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(v: &Value, depth: usize, out: &mut String) {
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push(']');
        }
        Value::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                write_escaped_str(k, out);
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            s.push(cp);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character (input is valid UTF-8)
                    let rest = &self.bytes[self.pos..];
                    let ch_len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..ch_len])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos += ch_len;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char> {
        // self.pos is at 'u'
        self.pos += 1;
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let hex_str =
            std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?;
        let mut code =
            u32::from_str_radix(hex_str, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        // surrogate pair
        if (0xD800..0xDC00).contains(&code) {
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let hex2 = self
                    .bytes
                    .get(self.pos..self.pos + 4)
                    .ok_or_else(|| Error::new("truncated surrogate pair"))?;
                let low = u32::from_str_radix(
                    std::str::from_utf8(hex2).map_err(|_| Error::new("bad escape"))?,
                    16,
                )
                .map_err(|_| Error::new("bad escape"))?;
                self.pos += 4;
                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
                return Err(Error::new("lone surrogate"));
            }
        }
        char::from_u32(code).ok_or_else(|| Error::new("invalid codepoint"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("bad integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("bad integer `{text}`")))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error::new(format!("expected , or }} at {}", self.pos))),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = Value::Obj(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Arr(vec![Value::F64(1.5), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        let compact = {
            let mut s = String::new();
            write_compact(&v, &mut s);
            s
        };
        assert_eq!(compact, r#"{"a":1,"b":[1.5,null],"c":"x\"y"}"#);
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_pretty(&v, 0, &mut s);
            s
        };
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    null\n  ],\n  \"c\": \"x\\\"y\"\n}"
        );
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn empty_containers_inline() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![])),
            ("b".into(), Value::Obj(vec![])),
        ]);
        let mut s = String::new();
        write_pretty(&v, 0, &mut s);
        assert_eq!(s, "{\n  \"a\": [],\n  \"b\": {}\n}");
    }

    #[test]
    fn floats_print_shortest_roundtrip() {
        for f in [0.1, 1.0, 0.08027522935779817, 10.36356891618348, -2.5] {
            let mut s = String::new();
            write_f64(f, &mut s);
            assert_eq!(s.parse::<f64>().unwrap(), f, "{s}");
        }
        let mut s = String::new();
        write_f64(1.0, &mut s);
        assert_eq!(s, "1.0");
    }

    #[test]
    fn parse_errors_on_garbage() {
        assert!(parse("not json at all").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Value::Str("é😀".into())
        );
    }
}
