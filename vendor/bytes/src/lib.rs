//! Offline vendored stand-in for the `bytes` crate (1.x API subset).
//!
//! Provides the [`Buf`] / [`BufMut`] traits with the network-order accessors
//! this workspace's packet and DNS wire codecs use. Reads are big-endian,
//! like the real crate's `get_u16`/`put_u16` family. Panics on underflow,
//! matching real `bytes` semantics.

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Returns the next readable chunk.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True while at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut buf = [0u8; 2];
        self.copy_to_slice(&mut buf);
        u16::from_be_bytes(buf)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.copy_to_slice(&mut buf);
        u32::from_be_bytes(buf)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.copy_to_slice(&mut buf);
        u64::from_be_bytes(buf)
    }

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        let mut buf = [0u8; 16];
        self.copy_to_slice(&mut buf);
        u128::from_be_bytes(buf)
    }

    /// Copies exactly `dst.len()` bytes out of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let mut off = 0;
        while off < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - off);
            dst[off..off + n].copy_from_slice(&chunk[..n]);
            off += n;
            self.advance(n);
        }
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write sink for byte data.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_network_order() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_u16(0x1234);
        out.put_u32(0xDEADBEEF);
        out.put_slice(&[1, 2, 3]);
        assert_eq!(out, [0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3]);

        let mut buf = &out[..];
        assert_eq!(buf.remaining(), 10);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16(), 0x1234);
        assert_eq!(buf.get_u32(), 0xDEADBEEF);
        let mut rest = [0u8; 3];
        buf.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2, 3]);
        assert!(!buf.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1];
        buf.get_u16();
    }
}
