//! Offline vendored stand-in for `rand_chacha` 0.3.
//!
//! Implements the full ChaCha stream cipher (8-round variant) and exposes
//! [`ChaCha8Rng`] with the exact word-stream semantics of
//! `rand_chacha::ChaCha8Rng` 0.3 / `rand_core::block::BlockRng` 0.6:
//!
//! - the buffer holds four consecutive 64-byte ChaCha blocks (64 `u32`
//!   words) generated at counters `c, c+1, c+2, c+3`;
//! - `next_u32` consumes one word;
//! - `next_u64` consumes two consecutive words (low word first), including
//!   the buffer-straddling case where the low half is the last word of one
//!   buffer and the high half is the first word of the next.
//!
//! This makes seeded streams identical to the real crate, which keeps the
//! repository's recorded study outputs stable.

use rand::{RngCore, SeedableRng};

const BUF_WORDS: usize = 64; // 4 ChaCha blocks
const CHACHA8_DOUBLE_ROUNDS: usize = 4;

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    /// 64-bit block counter (advances by 4 per buffer refill).
    counter: u64,
    /// 64-bit stream id (always 0 for `from_seed`).
    stream: u64,
    results: [u32; BUF_WORDS],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Computes one 16-word ChaCha8 block at `counter` into `out`.
    fn block(&self, counter: u64, out: &mut [u32]) {
        let initial: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let mut state = initial;
        for _ in 0..CHACHA8_DOUBLE_ROUNDS {
            // column round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
            *o = s.wrapping_add(*i);
        }
    }

    /// Refills the 4-block buffer and advances the counter.
    fn generate(&mut self) {
        for b in 0..4 {
            let counter = self.counter.wrapping_add(b as u64);
            let (lo, hi) = (b * 16, (b + 1) * 16);
            // Split borrow: copy out key/stream use only &self fields.
            let mut tmp = [0u32; 16];
            self.block(counter, &mut tmp);
            self.results[lo..hi].copy_from_slice(&tmp);
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = 0;
    }

    /// Sets the stream id (API parity with rand_chacha).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = BUF_WORDS; // force regeneration
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            results: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate();
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // BlockRng::next_u64 semantics (rand_core 0.6).
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            u64::from(self.results[index]) | (u64::from(self.results[index + 1]) << 32)
        } else if index >= BUF_WORDS {
            self.generate();
            self.index = 2;
            u64::from(self.results[0]) | (u64::from(self.results[1]) << 32)
        } else {
            // Straddle: low half is the last word of this buffer, high half
            // the first word of the next.
            let x = u64::from(self.results[BUF_WORDS - 1]);
            self.generate();
            self.index = 1;
            (u64::from(self.results[0]) << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Byte-fill from whole words (matches BlockRng::fill_bytes for
        // word-aligned requests, which is all this workspace uses).
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u32().to_le_bytes();
            let n = (dest.len() - i).min(4);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed_byte: u8) -> ChaCha8Rng {
        ChaCha8Rng::from_seed([seed_byte; 32])
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = rng(7);
        let mut b = rng(7);
        let xs: Vec<u64> = (0..200).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..200).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng(1);
        let mut b = rng(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_u64_is_two_u32_words_low_first() {
        let mut a = rng(9);
        let mut b = rng(9);
        let lo = a.next_u32() as u64;
        let hi = a.next_u32() as u64;
        assert_eq!(b.next_u64(), lo | (hi << 32));
    }

    #[test]
    fn straddling_u64_spans_buffer_refill() {
        let mut a = rng(5);
        // consume 63 words so index == 63 (== BUF_WORDS - 1)
        for _ in 0..63 {
            a.next_u32();
        }
        let mut b = rng(5);
        let mut words = Vec::new();
        for _ in 0..130 {
            words.push(b.next_u32());
        }
        let v = a.next_u64();
        assert_eq!(v, u64::from(words[63]) | (u64::from(words[64]) << 32));
        // after the straddle, the next u32 is word 65
        assert_eq!(a.next_u32(), words[65]);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = rng(3);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut c = a.clone();
        assert_eq!(a.next_u64(), c.next_u64());
    }
}
