//! Offline vendored serde facade.
//!
//! Models serialization as conversion to/from a JSON-shaped [`Value`] tree.
//! The derive macros (re-exported from the local `serde_derive`) emit the
//! same data layout as real serde's JSON representation: structs as objects
//! in field-declaration order, newtype structs as their inner value, unit
//! enum variants as strings, data-carrying variants externally tagged.
//!
//! Only the surface this workspace uses is implemented: `#[derive(Serialize,
//! Deserialize)]` plus `serde_json::{to_string, to_string_pretty, from_str}`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A JSON-shaped value tree, the interchange format between `Serialize`,
/// `Deserialize` and the `serde_json` front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (only produced for negative values).
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object; insertion order is preserved (real serde_json's default
    /// map also preserves struct field order).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up an object field by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_obj()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Renders this value as a JSON object key, panicking on non-key shapes
    /// (mirrors real serde_json's "key must be a string" error).
    pub fn into_object_key(self) -> String {
        match self {
            Value::Str(s) => s,
            Value::U64(n) => n.to_string(),
            Value::I64(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            other => panic!("map key must be a string or integer, got {other:?}"),
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent. Real serde derives treat a
    /// missing `Option` field as `None`; everything else is an error.
    fn missing_field(name: &str) -> Result<Self, DeError> {
        Err(DeError::new(format!("missing field `{name}`")))
    }

    /// Rebuilds `Self` from a JSON object key string (integer-keyed maps
    /// arrive as decimal strings, like real serde_json).
    fn from_key(key: &str) -> Result<Self, DeError> {
        if let Ok(n) = key.parse::<u64>() {
            if let Ok(v) = Self::from_value(&Value::U64(n)) {
                return Ok(v);
            }
        }
        if let Ok(n) = key.parse::<i64>() {
            if let Ok(v) = Self::from_value(&Value::I64(n)) {
                return Ok(v);
            }
        }
        Self::from_value(&Value::Str(key.to_string()))
    }
}

// ---- primitive impls -------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$ty>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($ty)))),
                    Value::I64(n) => <$ty>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($ty)))),
                    _ => Err(DeError::new(concat!("expected unsigned integer for ", stringify!($ty)))),
                }
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$ty>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($ty)))),
                    Value::I64(n) => <$ty>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($ty)))),
                    _ => Err(DeError::new(concat!("expected integer for ", stringify!($ty)))),
                }
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(DeError::new("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

// IP addresses: Display strings in human-readable formats, like real serde.
macro_rules! ser_de_via_display {
    ($($ty:ty => $what:literal),* $(,)?) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Str(self.to_string())
            }
        }

        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| DeError::new(concat!("invalid ", $what))),
                    _ => Err(DeError::new(concat!("expected ", $what, " string"))),
                }
            }
        }
    )*};
}
ser_de_via_display!(
    std::net::Ipv4Addr => "IPv4 address",
    std::net::Ipv6Addr => "IPv6 address",
    std::net::IpAddr => "IP address",
);

// ---- container impls -------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError::new(format!("expected array of length {N}, got {}", items.len())))
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident . $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| DeError::new("expected tuple array"))?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected tuple of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_value().into_object_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::new("expected object for map"))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize + Ord + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output (serde_json requires an
        // explicit feature for this; determinism is what this repo needs).
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_value().into_object_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::new("expected object for map"))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::new("expected array for set"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_defaults_to_none() {
        assert_eq!(Option::<u32>::missing_field("x").unwrap(), None);
        assert!(u32::missing_field("x").is_err());
    }

    #[test]
    fn integer_keys_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(5u64, "a".to_string());
        let v = m.to_value();
        let back: BTreeMap<u64, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn negative_integers_use_i64() {
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(3i32.to_value(), Value::U64(3));
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (1u32, "x".to_string(), 2.5f64);
        let back: (u32, String, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }
}
