//! Offline vendored benchmarking shim exposing the criterion 0.5 API this
//! workspace uses: `Criterion`, `BenchmarkGroup`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery (which needs many external
//! crates), each benchmark runs a short warm-up, then `sample_size` timed
//! samples of an adaptively chosen iteration count, and prints the median
//! per-iteration time. Good enough to exercise every bench target and give
//! ballpark numbers; not a substitute for real criterion statistics.

use std::time::{Duration, Instant};

/// Top-level benchmark driver, handed to each target function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Overrides the target measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Ends the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, target: Duration, mut f: F) {
    // Warm-up / calibration: find an iteration count so one sample lands
    // around target/samples, capped to keep pathological benches bounded.
    let mut iters = 1u64;
    let per_sample = target / samples.max(1) as u32;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= per_sample || b.elapsed >= Duration::from_millis(50) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{name:<44} time: [{} {} {}]  ({samples} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group of benchmark targets. Both the plain
/// `criterion_group!(name, target, ...)` and the braced
/// `criterion_group! { name = ...; config = ...; targets = ... }` forms
/// are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.finish();
        c.bench_function("mul", |b| b.iter(|| 3u64 * 7));
    }

    #[test]
    fn group_macro_and_runner_work() {
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(10));
            targets = target
        }
        benches();
    }
}
