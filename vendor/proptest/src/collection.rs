//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{Strategy, TestRng};
use rand::Rng;
use std::ops::Range;

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.0.start + 1 == self.size.0.end {
            self.size.0.start
        } else {
            rng.gen_range(self.size.0.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
