//! Value-generation strategies.

use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG driving case generation (ChaCha8, seedable from 32 bytes).
pub type TestRng = rand_chacha::ChaCha8Rng;

/// A recipe for generating test values.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// Object-safe core for type erasure.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among several strategies (see `prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V: Debug> Union<V> {
    /// Builds a union over the given alternatives.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        Union(alternatives)
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy of mapped values; see [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
);

/// String strategies from a small regex subset, as real proptest provides
/// for `&str`. Supported syntax: literal characters, `[...]` classes with
/// ranges (a trailing `-` is a literal), and `{n}` / `{m,n}` quantifiers.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex_subset(self)
            .unwrap_or_else(|e| panic!("unsupported string-strategy pattern {self:?}: {e}"));
        let mut out = String::new();
        for (chars, min, max) in &atoms {
            let n = if min == max { *min } else { rng.gen_range(*min..=*max) };
            for _ in 0..n {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

/// Parses the regex subset into `(alphabet, min_reps, max_reps)` atoms.
#[allow(clippy::type_complexity)]
fn parse_regex_subset(pattern: &str) -> Result<Vec<(Vec<char>, usize, usize)>, String> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let alphabet = match c {
            '[' => {
                let mut chars = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match it.next() {
                        None => return Err("unterminated character class".into()),
                        Some(']') => break,
                        Some('-') if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().expect("range start");
                            let hi = it.next().expect("range end");
                            chars.pop();
                            for x in lo..=hi {
                                chars.push(x);
                            }
                        }
                        Some(x) => {
                            chars.push(x);
                            prev = Some(x);
                        }
                    }
                }
                if chars.is_empty() {
                    return Err("empty character class".into());
                }
                chars
            }
            '\\' => vec![it.next().ok_or("trailing backslash")?],
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '^' | '$' => {
                return Err(format!("unsupported metacharacter {c:?}"));
            }
            other => vec![other],
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let spec: String = it.by_ref().take_while(|&x| x != '}').collect();
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().map_err(|_| "bad repeat lower bound")?,
                    hi.trim().parse().map_err(|_| "bad repeat upper bound")?,
                ),
                None => {
                    let n = spec.trim().parse().map_err(|_| "bad repeat count")?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if min > max {
            return Err(format!("repeat range {{{min},{max}}} is inverted"));
        }
        atoms.push((alphabet, min, max));
    }
    Ok(atoms)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait ArbitraryValue: Debug + Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($ty:ty),*) => {$(
        impl ArbitraryValue for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.gen()
            }
        }
    )*};
}
arbitrary_via_standard!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64);

/// Whole-domain strategy for `T`; see [`ArbitraryValue`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn regex_subset_strategy_generates_matching_strings() {
        let mut rng = TestRng::from_seed([7u8; 32]);
        let strat = "[a-z0-9-]{1,20}";
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!((1..=20).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{s:?}"
            );
        }
        let lit = "ab[01]{2}z".generate(&mut rng);
        assert_eq!(lit.len(), 5);
        assert!(lit.starts_with("ab") && lit.ends_with('z'), "{lit:?}");
    }
}
