//! The usual `use proptest::prelude::*` import surface.

pub use crate::collection;
pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{
    prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
};

/// `prop::collection::...` path alias, as real proptest's prelude provides.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
