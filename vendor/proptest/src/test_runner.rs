//! The case runner: regression replay, deterministic case generation,
//! failure reporting.

use crate::strategy::{Strategy, TestRng};
use rand::SeedableRng;
use std::path::{Path, PathBuf};

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated before giving up.
    pub max_global_rejects: u32,
}

impl Config {
    /// Config with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases, ..Config::default() }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, max_global_rejects: 65536 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Property violated; the test fails.
    Fail(String),
    /// Input rejected by `prop_assume!`; try another case.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one case execution.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a, used to derive stable per-test seeds.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Stable 32-byte seed for `(source file, test name, case index)`.
fn case_seed(file: &str, name: &str, case: u32) -> [u8; 32] {
    let mut seed = [0u8; 32];
    seed[0..8].copy_from_slice(&fnv1a(file.as_bytes()).to_le_bytes());
    seed[8..16].copy_from_slice(&fnv1a(name.as_bytes()).to_le_bytes());
    seed[16..24].copy_from_slice(&(case as u64).to_le_bytes());
    seed[24..32].copy_from_slice(&fnv1a(b"proptest-shim").to_le_bytes());
    seed
}

/// Locates `<file stem>.proptest-regressions` next to the test source.
/// `file!()` paths are workspace-root-relative while test binaries run from
/// the package root, so a few parent-prefixed candidates are probed.
fn regression_file(source_file: &str) -> Option<PathBuf> {
    let direct = Path::new(source_file).with_extension("proptest-regressions");
    let candidates = [
        direct.clone(),
        Path::new("..").join(&direct),
        Path::new("../..").join(&direct),
    ];
    candidates.into_iter().find(|p| p.is_file())
}

/// Parses `cc <64 hex chars>` lines into replay seeds.
fn parse_regression_seeds(text: &str) -> Vec<[u8; 32]> {
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(hex) = line.strip_prefix("cc ") else { continue };
        let hex: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        if hex.len() < 64 {
            continue;
        }
        let mut seed = [0u8; 32];
        let ok = (0..32).all(|i| {
            u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16)
                .map(|b| seed[i] = b)
                .is_ok()
        });
        if ok {
            seeds.push(seed);
        }
    }
    seeds
}

/// Runs a property test: replays pinned regression seeds first, then
/// `config.cases` deterministic fresh cases. Panics on the first failing
/// case with the generated input and its reproduction seed.
pub fn run<S: Strategy>(
    config: Config,
    file: &str,
    name: &str,
    strategy: &S,
    mut test: impl FnMut(S::Value) -> TestCaseResult,
) {
    // 1. pinned regression seeds
    if let Some(path) = regression_file(file) {
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        for (i, seed) in parse_regression_seeds(&text).into_iter().enumerate() {
            let mut rng = TestRng::from_seed(seed);
            let value = strategy.generate(&mut rng);
            match test(value) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    let mut rng = TestRng::from_seed(seed);
                    let value = strategy.generate(&mut rng);
                    panic!(
                        "{name}: pinned regression case #{i} from {} still fails: {msg}\n\
                         input: {value:#?}",
                        path.display()
                    );
                }
            }
        }
    }

    // 2. fresh deterministic cases
    let mut rejects = 0u32;
    let mut case = 0u32;
    let mut passed = 0u32;
    while passed < config.cases {
        let seed = case_seed(file, name, case);
        case += 1;
        let mut rng = TestRng::from_seed(seed);
        let value = strategy.generate(&mut rng);
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!("{name}: too many prop_assume! rejections ({rejects})");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                let mut rng = TestRng::from_seed(seed);
                let value = strategy.generate(&mut rng);
                let hex: String = seed.iter().map(|b| format!("{b:02x}")).collect();
                panic!(
                    "{name}: case #{case} failed: {msg}\nseed: cc {hex}\ninput: {value:#?}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_seed_parsing() {
        let text = "# comment\ncc 00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff # {...}\ncc short\n";
        let seeds = parse_regression_seeds(text);
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0][0], 0x00);
        assert_eq!(seeds[0][1], 0x11);
        assert_eq!(seeds[0][31], 0xff);
    }

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        assert_eq!(case_seed("f.rs", "t", 0), case_seed("f.rs", "t", 0));
        assert_ne!(case_seed("f.rs", "t", 0), case_seed("f.rs", "t", 1));
        assert_ne!(case_seed("f.rs", "a", 0), case_seed("f.rs", "b", 0));
    }

    #[test]
    fn runner_panics_with_input_on_failure() {
        let result = std::panic::catch_unwind(|| {
            run(
                Config::with_cases(5),
                "no-such-file.rs",
                "always_fails",
                &((0u32..10),),
                |(_x,)| Err(TestCaseError::fail("nope")),
            );
        });
        let err = result.expect_err("should panic");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("seed: cc "), "{msg}");
    }

    #[test]
    fn runner_skips_rejections() {
        let mut attempts = 0;
        run(
            Config::with_cases(3),
            "no-such-file.rs",
            "rejects_half",
            &((0u32..100),),
            |(x,)| {
                attempts += 1;
                if x % 2 == 0 {
                    Err(TestCaseError::reject("even"))
                } else {
                    Ok(())
                }
            },
        );
        assert!(attempts >= 3);
    }
}
