//! `Option` strategies (`proptest::option::of`).

use crate::strategy::{Strategy, TestRng};
use rand::Rng;

/// Strategy producing `Some` of the inner strategy's value half the time
/// and `None` otherwise (real proptest's default probability).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.5) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::from_seed([3u8; 32]);
        let strat = of(0u32..10);
        let vals: Vec<Option<u32>> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_none()));
        assert!(vals.iter().any(|v| v.is_some()));
        assert!(vals.iter().flatten().all(|&x| x < 10));
    }
}
