//! Offline vendored property-testing shim with the `proptest` 1.x surface
//! this workspace uses: the `proptest!` macro family, range/`any`/`Just`/
//! tuple/`prop_oneof!`/`collection::vec` strategies, `prop_map`, and a
//! deterministic runner.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case panics with the full generated input
//!   (and the seed bytes that reproduce it) instead of a minimized one.
//! - **Deterministic seeds.** Cases derive from a fixed per-test seed, so
//!   CI runs are reproducible without a persistence file.
//! - **Regression replay.** `*.proptest-regressions` files next to the test
//!   source are honored: each `cc <64-hex>` line is decoded into a 32-byte
//!   ChaCha seed and replayed before the regular cases, so pinned failures
//!   stay pinned.

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy, Union};

/// The `proptest!` macro: wraps `fn name(pat in strategy, ...) { body }`
/// items into `#[test]` functions driven by [`test_runner::run`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strat = ($($strat,)+);
            $crate::test_runner::run(
                config,
                file!(),
                stringify!($name),
                &strat,
                |($($pat,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Asserts a condition inside a proptest body, failing the case (not the
/// whole process) so the runner can report the offending input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two expressions differ inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
