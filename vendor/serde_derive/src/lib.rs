//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! facade. Parses the item directly from the proc-macro token stream (no
//! `syn`/`quote` available offline) and emits impls that mirror real serde's
//! JSON data layout: structs as objects in declaration order, newtype
//! structs transparent, unit enum variants as strings, data-carrying
//! variants externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic types are not supported (on `{name}`)");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("serde derive: unexpected token after struct name: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected token after enum name: {other:?}"),
        },
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    };

    Item { name, kind }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                *pos += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                // pub(crate) / pub(super) etc.
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde derive: expected identifier, found {other:?}"),
    }
}

/// Splits a token run on commas that sit outside any `<...>` nesting,
/// returning the number of non-empty segments.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut segments = 0usize;
    let mut seg_has_tokens = false;
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => angle_depth += 1,
                    '>' if prev_dash => {} // `->` in fn-pointer types
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        if seg_has_tokens {
                            segments += 1;
                        }
                        seg_has_tokens = false;
                        prev_dash = false;
                        continue;
                    }
                    _ => {}
                }
                prev_dash = c == '-';
                seg_has_tokens = true;
            }
            _ => {
                prev_dash = false;
                seg_has_tokens = true;
            }
        }
    }
    if seg_has_tokens {
        segments += 1;
    }
    segments
}

/// Parses `name: Type, ...` field lists, returning names in declaration
/// order (types are skipped angle-aware).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        skip_until_top_level_comma(&tokens, &mut pos);
    }
    fields
}

/// Advances past the current type (or discriminant) up to and including the
/// next comma at angle-depth 0.
fn skip_until_top_level_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            let c = p.as_char();
            match c {
                '<' => angle_depth += 1,
                '>' if prev_dash => {}
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
        *pos += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // skip an optional discriminant (`= expr`) and the separating comma
        skip_until_top_level_comma(&tokens, &mut pos);
        variants.push(Variant { name, shape });
    }
    variants
}

// ---- codegen ---------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", pairs.join(", "))
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Arr(::std::vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Obj(::std::vec![{pairs}]))]),",
                                pairs = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match v.get_field(\"{f}\") {{\n\
                             Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                             None => ::serde::Deserialize::missing_field(\"{f}\")?,\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "if v.as_obj().is_none() {{\n\
                     return Err(::serde::DeError::new(\"expected object for {name}\"));\n\
                 }}\n\
                 Ok({name} {{ {inits} }})",
                inits = inits.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_arr().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::DeError::new(\"wrong tuple arity for {name}\"));\n\
                 }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        ItemKind::UnitStruct => format!("Ok({name})"),
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let items = inner.as_arr().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}::{vn}\"))?;\n\
                                     if items.len() != {n} {{\n\
                                         return Err(::serde::DeError::new(\"wrong arity for {name}::{vn}\"));\n\
                                     }}\n\
                                     Ok({name}::{vn}({items}))\n\
                                 }}",
                                items = items.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: match inner.get_field(\"{f}\") {{\n\
                                             Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                                             None => ::serde::Deserialize::missing_field(\"{f}\")?,\n\
                                         }}"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),",
                                inits = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let inner_bind = if data_arms.is_empty() { "_inner" } else { "inner" };
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(::serde::DeError::new(::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Obj(fields) if fields.len() == 1 => {{\n\
                         let (tag, {inner_bind}) = &fields[0];\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => Err(::serde::DeError::new(::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::DeError::new(\"expected string or single-key object for {name}\")),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
