//! Deterministic fork/join helpers over `std::thread::scope`.
//!
//! The route engine fans out independent per-destination computations and
//! must merge them in a stable order regardless of thread count or
//! scheduling. [`par_map`] guarantees that: the output vector is indexed by
//! input position, so `par_map(xs, f)` is bit-identical to
//! `xs.iter().map(f).collect()` whenever `f` itself is deterministic.
//!
//! Thread count comes from the `IPV6WEB_THREADS` environment variable when
//! set (a value of `1` forces the sequential path, used by the determinism
//! tests), else from `std::thread::available_parallelism`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "IPV6WEB_THREADS";

/// Number of worker threads to use: `IPV6WEB_THREADS` if set to a positive
/// integer, else the machine's available parallelism, else 1.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item, possibly in parallel, returning results in
/// input order. `f` receives the item index alongside the item so callers
/// can seed per-item state deterministically.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count (mainly for tests).
pub fn par_map_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    // Counters fire on both the serial and parallel paths so totals do not
    // depend on IPV6WEB_THREADS; only the gauge reflects the configuration.
    ipv6web_obs::gauge_max("par.peak_threads", workers as u64);
    ipv6web_obs::add("par.fanouts", 1);
    ipv6web_obs::add("par.items", items.len() as u64);
    if workers == 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    // Work-stealing over an atomic index; each worker keeps (index, result)
    // pairs locally and the results are scattered back by index afterwards,
    // so scheduling order never leaks into the output.
    let next = AtomicUsize::new(0);
    let buckets: Mutex<Vec<Vec<(usize, U)>>> = Mutex::new(Vec::with_capacity(workers));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                // per-worker metric shards merge at the join, so counter
                // totals are identical for any IPV6WEB_THREADS value
                ipv6web_obs::flush_thread();
                buckets.lock().unwrap().push(local);
            });
        }
    });

    let buckets = buckets.into_inner().unwrap();
    let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for (i, v) in buckets.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "index {i} produced twice");
        out[i] = Some(v);
    }
    out.into_iter().map(|slot| slot.expect("every index produced exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let par = par_map_with(workers, &items, |_, x| x * x);
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn passes_stable_indices() {
        let items = vec!["a", "b", "c", "d"];
        let idx = par_map_with(4, &items, |i, _| i);
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u8> = vec![];
        assert_eq!(par_map_with(8, &none, |_, x| *x), Vec::<u8>::new());
        assert_eq!(par_map_with(8, &[41], |_, x| x + 1), vec![42]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
