//! Deterministic fork/join helpers over `std::thread::scope`.
//!
//! The route engine fans out independent per-destination computations and
//! must merge them in a stable order regardless of thread count or
//! scheduling. [`par_map`] guarantees that: the output vector is indexed by
//! input position, so `par_map(xs, f)` is bit-identical to
//! `xs.iter().map(f).collect()` whenever `f` itself is deterministic.
//!
//! Thread count comes from the `IPV6WEB_THREADS` environment variable when
//! set (a value of `1` forces the sequential path, used by the determinism
//! tests), else from `std::thread::available_parallelism`.
//!
//! # The two-level worker budget
//!
//! `IPV6WEB_THREADS` is a *global* cap, not a per-fan-out width. Nested
//! parallelism — the study driver fanning campaigns out over vantage
//! points while each campaign runs its own probe pool — must not multiply
//! into `vantages × workers` threads. Every thread therefore carries an
//! [`allowance`]: its share of the global budget. A fresh thread's
//! allowance is the full budget ([`thread_count`]); [`par_map`] spends the
//! caller's allowance on its workers and splits it among them (worker `w`
//! of `W` gets `⌊B/W⌋` plus one of the `B mod W` remainders), so any
//! nested fan-out — another `par_map`, or a worker pool that clamps to
//! [`allowance`] — borrows from the same global budget instead of
//! oversubscribing. The sum of live leaf workers never exceeds the budget.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "IPV6WEB_THREADS";

/// Environment variable carrying the *process-level* tier of the budget:
/// how many worker **processes** a multi-process driver (the sweep
/// orchestrator) shards work across. Threads split `IPV6WEB_THREADS`
/// inside one process; processes split the same budget across address
/// spaces — the orchestrator hands each child `IPV6WEB_THREADS =
/// process_share(procs, p)` so `procs × threads` never oversubscribes
/// the machine, exactly like nested `par_map` fan-outs never do.
pub const PROCS_ENV: &str = "IPV6WEB_PROCS";

/// Number of worker processes to shard across: `IPV6WEB_PROCS` if set to
/// a positive integer, else 1 (single-process operation; the thread tier
/// alone). Callers with an explicit `--procs` flag override this.
pub fn process_count() -> usize {
    if let Ok(v) = std::env::var(PROCS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    1
}

/// The `IPV6WEB_THREADS` budget worker process `p` of `procs` should run
/// under: the same remainder-spreading split as [`worker_share`], applied
/// to the global thread budget, clamped to ≥ 1 because a process cannot
/// run on zero threads. Shares sum exactly to [`thread_count`] whenever
/// `procs ≤ thread_count()`; with more processes than budget the overflow
/// processes still get one thread each (explicit, bounded
/// oversubscription — same rule as [`with_allowance`]'s clamp).
pub fn process_share(procs: usize, p: usize) -> usize {
    worker_share(thread_count(), procs.max(1), p).max(1)
}

/// Number of worker threads to use: `IPV6WEB_THREADS` if set to a positive
/// integer, else the machine's available parallelism, else 1.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

thread_local! {
    // 0 = unset: the thread has not been handed a share yet and may use the
    // full global budget. Resolved lazily through `allowance()` so tests
    // that flip IPV6WEB_THREADS mid-process observe the change.
    static ALLOWANCE: Cell<usize> = const { Cell::new(0) };
}

/// This thread's share of the global worker budget: the worker count any
/// fan-out started here may use. [`thread_count`] for a thread that was
/// not spawned by [`par_map`]; the assigned share inside a `par_map`
/// worker. Worker pools outside this crate clamp their width to it so
/// nested parallelism stays within `IPV6WEB_THREADS` in total.
pub fn allowance() -> usize {
    let a = ALLOWANCE.with(|c| c.get());
    if a == 0 {
        thread_count()
    } else {
        a
    }
}

/// Worker `w`'s share when a budget of `budget` is split over `workers`
/// workers: `⌊budget/workers⌋`, with the first `budget mod workers`
/// workers taking one extra. Shares sum exactly to `budget` and every
/// share is ≥ 1 whenever `workers ≤ budget`. Public so long-lived worker
/// pools outside this crate (the daemon's job executor) can split the
/// global budget with the same arithmetic `par_map` uses.
pub fn worker_share(budget: usize, workers: usize, w: usize) -> usize {
    budget / workers + usize::from(w < budget % workers)
}

/// Runs `f` with this thread's allowance pinned to `allowance` (clamped to
/// ≥ 1), restoring the previous allowance afterwards — even on panic.
///
/// This is how a worker pool that was *not* spawned by [`par_map`] (e.g. a
/// daemon executor running several studies concurrently) hands each worker
/// its share of the global budget: every fan-out `f` performs then borrows
/// from that share instead of the full `IPV6WEB_THREADS` budget, so
/// concurrent jobs never oversubscribe in total.
pub fn with_allowance<R>(allowance: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            ALLOWANCE.with(|c| c.set(self.0));
        }
    }
    let prev = ALLOWANCE.with(|c| c.get());
    let _restore = Restore(prev);
    ALLOWANCE.with(|c| c.set(allowance.max(1)));
    f()
}

/// Applies `f` to every item, possibly in parallel, returning results in
/// input order. `f` receives the item index alongside the item so callers
/// can seed per-item state deterministically.
///
/// The fan-out width is this thread's [`allowance`], which the spawned
/// workers inherit in shares — see the module docs on the two-level
/// budget.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_budget(allowance(), items, f)
}

/// [`par_map`] with an explicit worker budget (mainly for tests). The
/// explicit count plays the role of the caller's allowance: it is split
/// among the spawned workers exactly like `par_map` splits the global
/// budget.
pub fn par_map_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_budget(workers, items, f)
}

fn par_map_budget<T, U, F>(budget: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let budget = budget.max(1);
    let workers = budget.min(items.len().max(1));
    // Counters fire on both the serial and parallel paths so totals do not
    // depend on IPV6WEB_THREADS; only the gauge reflects the configuration.
    ipv6web_obs::gauge_max("par.peak_threads", workers as u64);
    ipv6web_obs::add("par.fanouts", 1);
    ipv6web_obs::add("par.items", items.len() as u64);
    if workers == 1 || items.len() <= 1 {
        // Inline on the calling thread, which keeps its full allowance:
        // a lone item's nested fan-outs may still use the whole budget.
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    // Work-stealing over an atomic index; each worker keeps (index, result)
    // pairs locally and the results are scattered back by index afterwards,
    // so scheduling order never leaks into the output.
    let next = AtomicUsize::new(0);
    let buckets: Mutex<Vec<Vec<(usize, U)>>> = Mutex::new(Vec::with_capacity(workers));
    std::thread::scope(|scope| {
        let (next, buckets, f) = (&next, &buckets, &f);
        for w in 0..workers {
            let share = worker_share(budget, workers, w);
            scope.spawn(move || {
                ALLOWANCE.with(|c| c.set(share));
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                // per-worker metric shards merge at the join, so counter
                // totals are identical for any IPV6WEB_THREADS value
                ipv6web_obs::flush_thread();
                buckets.lock().unwrap().push(local);
            });
        }
    });

    let buckets = buckets.into_inner().unwrap();
    let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for (i, v) in buckets.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "index {i} produced twice");
        out[i] = Some(v);
    }
    out.into_iter().map(|slot| slot.expect("every index produced exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let par = par_map_with(workers, &items, |_, x| x * x);
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn passes_stable_indices() {
        let items = vec!["a", "b", "c", "d"];
        let idx = par_map_with(4, &items, |i, _| i);
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u8> = vec![];
        assert_eq!(par_map_with(8, &none, |_, x| *x), Vec::<u8>::new());
        assert_eq!(par_map_with(8, &[41], |_, x| x + 1), vec![42]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn allowance_is_positive_on_fresh_threads() {
        assert!(allowance() >= 1);
        std::thread::scope(|s| {
            s.spawn(|| assert!(allowance() >= 1));
        });
    }

    #[test]
    fn worker_shares_sum_to_budget_and_stay_positive() {
        for budget in 1..=32usize {
            for workers in 1..=budget {
                let shares: Vec<usize> =
                    (0..workers).map(|w| worker_share(budget, workers, w)).collect();
                assert_eq!(shares.iter().sum::<usize>(), budget, "budget {budget} × {workers}");
                assert!(shares.iter().all(|&s| s >= 1));
                // the split is as even as integers allow
                let (min, max) = (shares.iter().min().unwrap(), shares.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn worker_share_more_workers_than_budget() {
        // Budget 3 over 5 workers: the first three get one thread, the
        // rest get zero — `with_allowance` clamps a zero share to 1 when
        // the worker actually runs, but the arithmetic itself must not
        // inflate the total.
        let shares: Vec<usize> = (0..5).map(|w| worker_share(3, 5, w)).collect();
        assert_eq!(shares, vec![1, 1, 1, 0, 0]);
        assert_eq!(shares.iter().sum::<usize>(), 3);
        // a zero share still runs inline once pinned
        with_allowance(worker_share(3, 5, 4), || assert_eq!(allowance(), 1));
    }

    #[test]
    fn worker_share_budget_one() {
        // The smallest budget: exactly one worker gets the thread.
        for workers in 1..=6 {
            let shares: Vec<usize> = (0..workers).map(|w| worker_share(1, workers, w)).collect();
            assert_eq!(shares.iter().sum::<usize>(), 1, "workers = {workers}");
            assert_eq!(shares[0], 1, "the single thread goes to worker 0");
        }
    }

    #[test]
    fn worker_share_boundary_index() {
        // The remainder boundary: with budget B over W workers, worker
        // `B mod W − 1` is the last to take an extra thread and worker
        // `B mod W` the first without one.
        for (budget, workers) in [(7usize, 3usize), (10, 4), (9, 4), (5, 2), (13, 5)] {
            let r = budget % workers;
            if r == 0 {
                continue;
            }
            assert_eq!(worker_share(budget, workers, r - 1), budget / workers + 1);
            assert_eq!(worker_share(budget, workers, r), budget / workers);
        }
    }

    #[test]
    fn process_count_defaults_to_one() {
        // IPV6WEB_PROCS is unset in the test environment; the thread tier
        // alone is the default.
        if std::env::var(PROCS_ENV).is_err() {
            assert_eq!(process_count(), 1);
        }
    }

    #[test]
    fn process_shares_cover_the_thread_budget() {
        let budget = thread_count();
        for procs in 1..=budget {
            let shares: Vec<usize> = (0..procs).map(|p| process_share(procs, p)).collect();
            assert_eq!(shares.iter().sum::<usize>(), budget, "procs = {procs}");
            assert!(shares.iter().all(|&s| s >= 1));
        }
        // more processes than threads: every process still gets one
        let shares: Vec<usize> = (0..budget + 3).map(|p| process_share(budget + 3, p)).collect();
        assert!(shares.iter().all(|&s| s >= 1));
        assert_eq!(shares.iter().sum::<usize>(), budget + 3, "one thread per overflow process");
    }

    #[test]
    fn with_allowance_pins_and_restores() {
        let before = allowance();
        let seen = with_allowance(2, || {
            assert_eq!(allowance(), 2);
            // nested pin shadows, then restores
            with_allowance(1, || assert_eq!(allowance(), 1));
            allowance()
        });
        assert_eq!(seen, 2);
        assert_eq!(allowance(), before, "allowance restored after the scope");
        // zero clamps to one: a share of nothing still lets work run inline
        with_allowance(0, || assert_eq!(allowance(), 1));
    }

    #[test]
    fn with_allowance_bounds_nested_fan_out() {
        use std::sync::atomic::AtomicUsize;
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        with_allowance(2, || {
            let items: Vec<u32> = (0..8).collect();
            par_map(&items, |_, x| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
                *x
            });
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "fan-out exceeded the pinned allowance");
    }

    #[test]
    fn workers_inherit_their_share_as_allowance() {
        // Budget 5 over 2 workers: shares are {3, 2}. Whatever item lands
        // on whatever worker, the observed allowance is one of the shares.
        let items = [(); 2];
        let seen = par_map_with(5, &items, |_, _| allowance());
        for a in &seen {
            assert!(*a == 2 || *a == 3, "allowance {a} is not a share of 5/2");
        }
    }

    #[test]
    fn nested_fan_out_never_exceeds_the_budget() {
        // Outer fan-out of budget 3 over 6 items, each item running a
        // nested par_map: the number of concurrently live leaf bodies must
        // never exceed the global budget of 3.
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<u32> = (0..6).collect();
        let _ = par_map_with(3, &items, |_, _| {
            let inner: Vec<u32> = (0..4).collect();
            par_map(&inner, |_, x| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
                *x
            })
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "peak {} > budget 3",
            peak.load(Ordering::SeqCst)
        );
    }
}
