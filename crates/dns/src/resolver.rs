//! Caching stub resolver.
//!
//! Each vantage point resolves names through a local caching resolver; the
//! monitor's randomized query order means cache state varies round to
//! round. The resolver speaks the wire format end to end: every lookup
//! encodes a query, the zone side builds a response, and both are parsed
//! back — keeping the codec on the hot path.

use crate::records::{Record, RecordData, RecordType};
use crate::wire::{DnsMessage, RCODE_NXDOMAIN};
use crate::zone::ZoneDb;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Resolver statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolverStats {
    /// Queries answered from cache.
    pub cache_hits: u64,
    /// Queries forwarded to the authority.
    pub cache_misses: u64,
    /// NXDOMAIN answers seen.
    pub nxdomain: u64,
}

#[derive(Debug, Clone)]
struct CacheLine {
    records: Vec<Record>,
    expires_at: u64,
}

/// Negative-cache TTL for NXDOMAIN answers (RFC 2308 suggests the SOA
/// minimum; the simulated zones use a flat value).
const NEGATIVE_TTL_S: u64 = 300;

/// An injected failure of one resolver exchange, as classified by a
/// fault-aware caller. Nothing is cached for a failed exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsError {
    /// The authority answered SERVFAIL.
    ServFail,
    /// The query timed out.
    Timeout,
    /// The response arrived torn and failed to parse.
    Truncated,
}

impl std::fmt::Display for DnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnsError::ServFail => write!(f, "SERVFAIL"),
            DnsError::Timeout => write!(f, "query timed out"),
            DnsError::Truncated => write!(f, "truncated response"),
        }
    }
}

impl std::error::Error for DnsError {}

/// A caching stub resolver bound to a [`ZoneDb`] authority.
#[derive(Debug, Clone)]
pub struct Resolver {
    cache: HashMap<(String, RecordType), CacheLine>,
    negative: HashMap<String, u64>,
    stats: ResolverStats,
    next_id: u16,
    dns64: bool,
}

impl Default for Resolver {
    fn default() -> Self {
        Self::new()
    }
}

impl Resolver {
    /// Fresh resolver with an empty cache.
    pub fn new() -> Self {
        Resolver {
            cache: HashMap::new(),
            negative: HashMap::new(),
            stats: ResolverStats::default(),
            next_id: 1,
            dns64: false,
        }
    }

    /// Fresh resolver in DNS64 mode (RFC 6147): an AAAA query that would
    /// return NODATA against a v4-only name instead answers with addresses
    /// synthesized into the NAT64 well-known prefix `64:ff9b::/96`, built
    /// from the name's A records and passed through the real wire codec
    /// like any authoritative answer. Names with a genuine AAAA are never
    /// rewritten, and NXDOMAIN stays NXDOMAIN.
    pub fn dns64() -> Self {
        Resolver { dns64: true, ..Self::new() }
    }

    /// Whether this resolver synthesizes AAAA answers (DNS64 mode).
    pub fn is_dns64(&self) -> bool {
        self.dns64
    }

    /// Current statistics.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// Number of live cache lines (expired lines may still be counted until
    /// touched).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Resolves `(name, qtype)` at simulated time `now_s` (seconds) during
    /// campaign `week`. Returns the answer records (empty = NODATA) or
    /// `None` for NXDOMAIN.
    pub fn resolve(
        &mut self,
        zone: &ZoneDb,
        name: &str,
        qtype: RecordType,
        week: u32,
        now_s: u64,
    ) -> Option<Vec<Record>> {
        ipv6web_obs::inc("dns.queries");
        // The wire codec carries labels of at most 63 bytes and the decoder
        // refuses names deeper than 32 labels. A name outside those bounds
        // can never round-trip, so it can never resolve — answer NXDOMAIN-ish
        // up front rather than tearing the codec on the hot path.
        if name.split('.').any(|l| l.len() > 63)
            || name.split('.').filter(|l| !l.is_empty()).count() > 32
        {
            ipv6web_obs::inc("dns.unencodable_names");
            return None;
        }
        let key = (name.to_string(), qtype);
        // RFC 2308 negative caching: a fresh NXDOMAIN answers any qtype.
        if let Some(&until) = self.negative.get(name) {
            if until > now_s {
                self.stats.cache_hits += 1;
                ipv6web_obs::inc("dns.cache_hits");
                return None;
            }
            self.negative.remove(name);
        }
        if let Some(line) = self.cache.get(&key) {
            if line.expires_at > now_s {
                self.stats.cache_hits += 1;
                ipv6web_obs::inc("dns.cache_hits");
                return Some(line.records.clone());
            }
            self.cache.remove(&key);
        }
        self.stats.cache_misses += 1;
        ipv6web_obs::inc("dns.cache_misses");

        // Full wire round trip.
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let qmsg = DnsMessage::query(id, name, qtype);
        let qwire = qmsg.to_vec();
        // The codec is exercised on our own well-formed messages, so a
        // decode failure means a codec bug, not bad input. Degrade to an
        // unanswered query (counted, uncached) instead of panicking the
        // whole campaign thread.
        let Ok(parsed_q) = DnsMessage::decode(&qwire) else {
            ipv6web_obs::inc("dns.codec_errors");
            return None;
        };
        let auth = zone.query(&parsed_q.questions[0].name, qtype, week);
        let resp = match &auth {
            Some(records) => DnsMessage::response(&parsed_q, records, false),
            None => DnsMessage::response(&parsed_q, &[], true),
        };
        let rwire = resp.to_vec();
        let Ok(parsed_r) = DnsMessage::decode(&rwire) else {
            ipv6web_obs::inc("dns.codec_errors");
            return None;
        };
        debug_assert_eq!(parsed_r.header.id, id, "transaction id must match");

        ipv6web_obs::observe("dns.wire_bytes", (qwire.len() + rwire.len()) as u64);
        if parsed_r.header.rcode == RCODE_NXDOMAIN {
            self.stats.nxdomain += 1;
            ipv6web_obs::inc("dns.nxdomain");
            self.negative.insert(name.to_string(), now_s + NEGATIVE_TTL_S);
            return None;
        }
        let mut records: Vec<Record> = parsed_r
            .answers
            .iter()
            .map(|a| Record { name: a.name.clone(), data: a.data, ttl: a.ttl })
            .collect();
        if self.dns64 && qtype == RecordType::Aaaa {
            if records.is_empty() {
                if let Some(synth) = self.synthesize_aaaa(&parsed_q, zone, week) {
                    records = synth;
                }
            } else {
                ipv6web_obs::inc("dns64.native_aaaa_skipped");
            }
        }
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(60);
        self.cache
            .insert(key, CacheLine { records: records.clone(), expires_at: now_s + ttl as u64 });
        Some(records)
    }

    /// RFC 6147 AAAA synthesis: embeds each of the name's A records in the
    /// well-known prefix and runs the result through the same wire round
    /// trip as an authoritative answer, so synthesized responses exercise
    /// the codec bit-for-bit. Returns `None` when the name has no A
    /// records either — genuine NODATA stays NODATA.
    fn synthesize_aaaa(
        &mut self,
        parsed_q: &DnsMessage,
        zone: &ZoneDb,
        week: u32,
    ) -> Option<Vec<Record>> {
        let name = &parsed_q.questions[0].name;
        let a_records = zone.query(name, RecordType::A, week)?;
        let synth: Vec<Record> = a_records
            .iter()
            .filter_map(|r| match r.data {
                RecordData::V4(v4) => {
                    Some(Record::aaaa(r.name.clone(), ipv6web_xlat::synthesize(v4), r.ttl))
                }
                RecordData::V6(_) => None,
            })
            .collect();
        if synth.is_empty() {
            return None;
        }
        let rwire = DnsMessage::response(parsed_q, &synth, false).to_vec();
        let Ok(parsed_r) = DnsMessage::decode(&rwire) else {
            ipv6web_obs::inc("dns.codec_errors");
            return None;
        };
        ipv6web_obs::inc("dns64.synthesized");
        ipv6web_obs::observe("dns.wire_bytes", rwire.len() as u64);
        Some(
            parsed_r
                .answers
                .iter()
                .map(|a| Record { name: a.name.clone(), data: a.data, ttl: a.ttl })
                .collect(),
        )
    }

    /// [`Resolver::resolve`] with an optional injected fault. `fault: None`
    /// is exactly `resolve` (same cache traffic, same counters); an
    /// injected fault fails the exchange before it reaches cache or
    /// authority, leaving resolver state untouched so a retry behaves like
    /// a fresh query.
    pub fn resolve_faulted(
        &mut self,
        zone: &ZoneDb,
        name: &str,
        qtype: RecordType,
        week: u32,
        now_s: u64,
        fault: Option<DnsError>,
    ) -> Result<Option<Vec<Record>>, DnsError> {
        match fault {
            None => Ok(self.resolve(zone, name, qtype, week, now_s)),
            Some(err) => {
                ipv6web_obs::inc("dns.faulted");
                Err(err)
            }
        }
    }

    /// Drops all cached entries — the monitor's "proper resetting to avoid
    /// local caching effects" between repeated downloads.
    pub fn flush(&mut self) {
        self.cache.clear();
        self.negative.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ZoneEntry;
    use std::net::Ipv4Addr;

    fn zone() -> ZoneDb {
        let mut db = ZoneDb::new();
        db.insert(
            "a.example",
            ZoneEntry {
                v4: Ipv4Addr::new(192, 0, 2, 1),
                v6: Some("2001:db8::1".parse().unwrap()),
                v6_from_week: 5,
                ttl: 100,
            },
        );
        db
    }

    #[test]
    fn miss_then_hit() {
        let db = zone();
        let mut r = Resolver::new();
        let a1 = r.resolve(&db, "a.example", RecordType::A, 0, 1000).unwrap();
        assert_eq!(a1.len(), 1);
        assert_eq!(r.stats().cache_misses, 1);
        let a2 = r.resolve(&db, "a.example", RecordType::A, 0, 1050).unwrap();
        assert_eq!(a2, a1);
        assert_eq!(r.stats().cache_hits, 1);
    }

    #[test]
    fn ttl_expiry_causes_refetch() {
        let db = zone();
        let mut r = Resolver::new();
        r.resolve(&db, "a.example", RecordType::A, 0, 1000);
        // ttl 100 => expires at 1100
        r.resolve(&db, "a.example", RecordType::A, 0, 1100);
        assert_eq!(r.stats().cache_misses, 2);
        assert_eq!(r.stats().cache_hits, 0);
    }

    #[test]
    fn nxdomain_negatively_cached() {
        let db = zone();
        let mut r = Resolver::new();
        assert_eq!(r.resolve(&db, "nope.example", RecordType::A, 0, 0), None);
        assert_eq!(r.stats().nxdomain, 1);
        assert_eq!(r.cache_len(), 0, "no positive cache line");
        // the negative answer is served from cache within its TTL...
        assert_eq!(r.resolve(&db, "nope.example", RecordType::A, 0, 100), None);
        assert_eq!(r.resolve(&db, "nope.example", RecordType::Aaaa, 0, 100), None);
        assert_eq!(r.stats().nxdomain, 1, "authority contacted only once");
        assert_eq!(r.stats().cache_hits, 2);
        // ...and re-resolved after expiry
        assert_eq!(r.resolve(&db, "nope.example", RecordType::A, 0, 301), None);
        assert_eq!(r.stats().nxdomain, 2);
    }

    #[test]
    fn negative_cache_cleared_by_flush() {
        let db = zone();
        let mut r = Resolver::new();
        r.resolve(&db, "nope.example", RecordType::A, 0, 0);
        r.flush();
        r.resolve(&db, "nope.example", RecordType::A, 0, 1);
        assert_eq!(r.stats().nxdomain, 2, "flush must drop negative entries too");
    }

    #[test]
    fn nodata_cached_as_empty() {
        let db = zone();
        let mut r = Resolver::new();
        // AAAA before week 5: NODATA
        let ans = r.resolve(&db, "a.example", RecordType::Aaaa, 0, 0).unwrap();
        assert!(ans.is_empty());
        // cached: second query is a hit even though empty
        r.resolve(&db, "a.example", RecordType::Aaaa, 0, 10).unwrap();
        assert_eq!(r.stats().cache_hits, 1);
    }

    #[test]
    fn week_gating_visible_through_resolver() {
        let db = zone();
        let mut r = Resolver::new();
        assert!(r.resolve(&db, "a.example", RecordType::Aaaa, 4, 0).unwrap().is_empty());
        r.flush();
        assert_eq!(r.resolve(&db, "a.example", RecordType::Aaaa, 5, 0).unwrap().len(), 1);
    }

    #[test]
    fn flush_clears_cache() {
        let db = zone();
        let mut r = Resolver::new();
        r.resolve(&db, "a.example", RecordType::A, 0, 0);
        assert_eq!(r.cache_len(), 1);
        r.flush();
        assert_eq!(r.cache_len(), 0);
        r.resolve(&db, "a.example", RecordType::A, 0, 1);
        assert_eq!(r.stats().cache_misses, 2);
    }

    #[test]
    fn faulted_exchange_leaves_state_untouched() {
        let db = zone();
        let mut r = Resolver::new();
        assert_eq!(
            r.resolve_faulted(&db, "a.example", RecordType::A, 0, 0, Some(DnsError::ServFail)),
            Err(DnsError::ServFail)
        );
        assert_eq!(r.cache_len(), 0);
        assert_eq!(r.stats(), ResolverStats::default(), "no counters move on a faulted exchange");
        // retry without fault behaves like a fresh query
        let ok = r.resolve_faulted(&db, "a.example", RecordType::A, 0, 0, None).unwrap();
        assert_eq!(ok.unwrap().len(), 1);
        assert_eq!(r.stats().cache_misses, 1);
    }

    #[test]
    fn oversized_label_is_unresolvable_not_a_panic() {
        let db = zone();
        let mut r = Resolver::new();
        let long = format!("{}.example", "x".repeat(64));
        assert_eq!(r.resolve(&db, &long, RecordType::A, 0, 0), None);
        // rejected before the cache or authority saw it
        assert_eq!(r.cache_len(), 0);
        assert_eq!(r.stats().cache_misses, 0);
        assert_eq!(r.stats().nxdomain, 0);
        // a 63-byte label is the legal maximum and goes through the codec
        let max = format!("{}.example", "x".repeat(63));
        assert_eq!(r.resolve(&db, &max, RecordType::A, 0, 0), None, "NXDOMAIN, not a panic");
        assert_eq!(r.stats().nxdomain, 1);
    }

    #[test]
    fn too_many_labels_is_unresolvable_not_a_panic() {
        let db = zone();
        let mut r = Resolver::new();
        let deep = vec!["a"; 33].join(".");
        assert_eq!(r.resolve(&db, &deep, RecordType::A, 0, 0), None);
        assert_eq!(r.cache_len(), 0);
        assert_eq!(r.stats().cache_misses, 0, "never reached the wire");
        let legal = vec!["a"; 32].join(".");
        assert_eq!(r.resolve(&db, &legal, RecordType::A, 0, 0), None, "NXDOMAIN, not a panic");
        assert_eq!(r.stats().nxdomain, 1);
    }

    #[test]
    fn dns64_synthesizes_only_without_native_aaaa() {
        let db = zone();
        let mut r = Resolver::dns64();
        // Before week 5 the name is v4-only: the AAAA answer is synthesized
        // from its A record, carrying the A TTL.
        let ans = r.resolve(&db, "a.example", RecordType::Aaaa, 0, 0).unwrap();
        assert_eq!(ans.len(), 1);
        let RecordData::V6(v6) = ans[0].data else { panic!("expected AAAA data") };
        assert!(ipv6web_xlat::is_synthesized(v6));
        assert_eq!(ipv6web_xlat::extract(v6), Some(Ipv4Addr::new(192, 0, 2, 1)));
        assert_eq!(ans[0].ttl, 100, "synthesized AAAA carries the A TTL");
        // Cached like any answer: the second query is a hit.
        let again = r.resolve(&db, "a.example", RecordType::Aaaa, 0, 50).unwrap();
        assert_eq!(again, ans);
        assert_eq!(r.stats().cache_hits, 1);
        // From week 5 a genuine AAAA exists and passes through untouched.
        r.flush();
        let native = r.resolve(&db, "a.example", RecordType::Aaaa, 5, 0).unwrap();
        let RecordData::V6(v6) = native[0].data else { panic!("expected AAAA data") };
        assert!(!ipv6web_xlat::is_synthesized(v6), "native AAAA must never be rewritten");
    }

    #[test]
    fn dns64_nxdomain_stays_nxdomain() {
        let db = zone();
        let mut r = Resolver::dns64();
        assert_eq!(r.resolve(&db, "nope.example", RecordType::Aaaa, 0, 0), None);
        assert_eq!(r.stats().nxdomain, 1);
        assert_eq!(r.cache_len(), 0, "nothing synthesized for a nonexistent name");
    }

    #[test]
    fn dns64_wire_roundtrip_every_v4_form() {
        // Synthesized answers ride the real codec; the embedded address must
        // survive encode/decode bit-exact for edge-case v4 forms.
        let forms = [
            Ipv4Addr::new(0, 0, 0, 0),
            Ipv4Addr::new(0, 0, 0, 1),
            Ipv4Addr::new(127, 255, 255, 255),
            Ipv4Addr::new(128, 0, 0, 0),
            Ipv4Addr::new(192, 0, 2, 200),
            Ipv4Addr::new(255, 255, 255, 255),
        ];
        let mut db = ZoneDb::new();
        for (i, v4) in forms.iter().enumerate() {
            db.insert(
                format!("v4only{i}.example"),
                ZoneEntry { v4: *v4, v6: None, v6_from_week: 0, ttl: 60 },
            );
        }
        let mut r = Resolver::dns64();
        for (i, v4) in forms.iter().enumerate() {
            let name = format!("v4only{i}.example");
            let ans = r.resolve(&db, &name, RecordType::Aaaa, 0, 0).unwrap();
            assert_eq!(ans.len(), 1, "{name}");
            let RecordData::V6(v6) = ans[0].data else { panic!("expected AAAA data") };
            assert_eq!(ipv6web_xlat::extract(v6), Some(*v4), "{name} must embed bit-exact");
        }
    }

    #[test]
    fn plain_resolver_never_synthesizes() {
        let db = zone();
        let mut r = Resolver::new();
        assert!(!r.is_dns64());
        let ans = r.resolve(&db, "a.example", RecordType::Aaaa, 0, 0).unwrap();
        assert!(ans.is_empty(), "NODATA stays NODATA without DNS64");
    }

    #[test]
    fn separate_cache_per_qtype() {
        let db = zone();
        let mut r = Resolver::new();
        r.resolve(&db, "a.example", RecordType::A, 10, 0);
        r.resolve(&db, "a.example", RecordType::Aaaa, 10, 0);
        assert_eq!(r.stats().cache_misses, 2);
        assert_eq!(r.cache_len(), 2);
    }
}
