//! DNS record model (the A/AAAA subset the study needs).

use serde::{Deserialize, Serialize};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Query/record type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 address record (type 1).
    A,
    /// IPv6 address record (type 28).
    Aaaa,
}

impl RecordType {
    /// RFC 1035 / 3596 type code.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Aaaa => 28,
        }
    }

    /// Parses a type code.
    pub fn from_code(code: u16) -> Option<Self> {
        match code {
            1 => Some(RecordType::A),
            28 => Some(RecordType::Aaaa),
            _ => None,
        }
    }
}

/// Address payload of a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordData {
    /// A record payload.
    V4(Ipv4Addr),
    /// AAAA record payload.
    V6(Ipv6Addr),
}

impl RecordData {
    /// The record type this payload belongs to.
    pub fn record_type(self) -> RecordType {
        match self {
            RecordData::V4(_) => RecordType::A,
            RecordData::V6(_) => RecordType::Aaaa,
        }
    }
}

/// One resource record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Owner name (e.g. `site42.example`).
    pub name: String,
    /// Address payload.
    pub data: RecordData,
    /// Time to live, seconds.
    pub ttl: u32,
}

impl Record {
    /// Convenience constructor for an A record.
    pub fn a(name: impl Into<String>, addr: Ipv4Addr, ttl: u32) -> Self {
        Record { name: name.into(), data: RecordData::V4(addr), ttl }
    }

    /// Convenience constructor for an AAAA record.
    pub fn aaaa(name: impl Into<String>, addr: Ipv6Addr, ttl: u32) -> Self {
        Record { name: name.into(), data: RecordData::V6(addr), ttl }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_match_rfcs() {
        assert_eq!(RecordType::A.code(), 1);
        assert_eq!(RecordType::Aaaa.code(), 28);
        assert_eq!(RecordType::from_code(1), Some(RecordType::A));
        assert_eq!(RecordType::from_code(28), Some(RecordType::Aaaa));
        assert_eq!(RecordType::from_code(15), None, "MX unsupported");
    }

    #[test]
    fn data_knows_its_type() {
        assert_eq!(RecordData::V4(Ipv4Addr::LOCALHOST).record_type(), RecordType::A);
        assert_eq!(RecordData::V6(Ipv6Addr::LOCALHOST).record_type(), RecordType::Aaaa);
    }

    #[test]
    fn constructors() {
        let a = Record::a("x.example", Ipv4Addr::new(192, 0, 2, 1), 300);
        assert_eq!(a.name, "x.example");
        assert_eq!(a.ttl, 300);
        assert_eq!(a.data.record_type(), RecordType::A);
        let q = Record::aaaa("x.example", "2001:db8::1".parse().unwrap(), 60);
        assert_eq!(q.data.record_type(), RecordType::Aaaa);
    }
}
