//! Authoritative zone database.
//!
//! A site's IPv6 accessibility is, at DNS level, the presence of a AAAA
//! record. The database is *time-aware*: each entry records the campaign
//! week from which its AAAA record exists, so reachability timelines
//! (Fig 1) fall out of plain DNS queries at different times.

use crate::records::{Record, RecordData, RecordType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Authoritative data for one name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneEntry {
    /// IPv4 address (every monitored site has one).
    pub v4: Ipv4Addr,
    /// IPv6 address, if the site ever becomes IPv6-accessible.
    pub v6: Option<Ipv6Addr>,
    /// Week index from which the AAAA record is published.
    pub v6_from_week: u32,
    /// Record TTL in seconds.
    pub ttl: u32,
}

/// The simulated global DNS: name → entry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ZoneDb {
    entries: HashMap<String, ZoneEntry>,
}

impl ZoneDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a name.
    pub fn insert(&mut self, name: impl Into<String>, entry: ZoneEntry) {
        self.entries.insert(name.into(), entry);
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no names are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Raw entry lookup.
    pub fn entry(&self, name: &str) -> Option<&ZoneEntry> {
        self.entries.get(name)
    }

    /// Authoritative answer for `(name, qtype)` as of campaign `week`.
    /// Returns an empty vec for NODATA (name exists, no such record) and
    /// `None` for NXDOMAIN.
    pub fn query(&self, name: &str, qtype: RecordType, week: u32) -> Option<Vec<Record>> {
        let e = self.entries.get(name)?;
        let mut answers = Vec::new();
        match qtype {
            RecordType::A => answers.push(Record {
                name: name.to_string(),
                data: RecordData::V4(e.v4),
                ttl: e.ttl,
            }),
            RecordType::Aaaa => {
                if let Some(v6) = e.v6 {
                    if week >= e.v6_from_week {
                        answers.push(Record {
                            name: name.to_string(),
                            data: RecordData::V6(v6),
                            ttl: e.ttl,
                        });
                    }
                }
            }
        }
        Some(answers)
    }

    /// Whether `name` has both A and AAAA as of `week` — the study's
    /// dual-stack criterion.
    pub fn is_dual_stack(&self, name: &str, week: u32) -> bool {
        matches!(self.query(name, RecordType::Aaaa, week), Some(v) if !v.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> ZoneDb {
        let mut db = ZoneDb::new();
        db.insert(
            "dual.example",
            ZoneEntry {
                v4: Ipv4Addr::new(192, 0, 2, 1),
                v6: Some("2001:db8::1".parse().unwrap()),
                v6_from_week: 10,
                ttl: 300,
            },
        );
        db.insert(
            "v4only.example",
            ZoneEntry { v4: Ipv4Addr::new(192, 0, 2, 2), v6: None, v6_from_week: 0, ttl: 300 },
        );
        db
    }

    #[test]
    fn a_record_always_answered() {
        let db = db();
        let ans = db.query("dual.example", RecordType::A, 0).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].data, RecordData::V4(Ipv4Addr::new(192, 0, 2, 1)));
    }

    #[test]
    fn aaaa_appears_at_publication_week() {
        let db = db();
        assert!(db.query("dual.example", RecordType::Aaaa, 9).unwrap().is_empty());
        assert_eq!(db.query("dual.example", RecordType::Aaaa, 10).unwrap().len(), 1);
        assert_eq!(db.query("dual.example", RecordType::Aaaa, 50).unwrap().len(), 1);
    }

    #[test]
    fn v4_only_site_nodata_for_aaaa() {
        let db = db();
        let ans = db.query("v4only.example", RecordType::Aaaa, 99).unwrap();
        assert!(ans.is_empty(), "NODATA, not NXDOMAIN");
    }

    #[test]
    fn unknown_name_nxdomain() {
        assert_eq!(db().query("nope.example", RecordType::A, 0), None);
    }

    #[test]
    fn dual_stack_check_tracks_week() {
        let db = db();
        assert!(!db.is_dual_stack("dual.example", 9));
        assert!(db.is_dual_stack("dual.example", 10));
        assert!(!db.is_dual_stack("v4only.example", 10));
        assert!(!db.is_dual_stack("nope.example", 10));
    }

    #[test]
    fn insert_replaces() {
        let mut db = db();
        assert_eq!(db.len(), 2);
        db.insert(
            "dual.example",
            ZoneEntry { v4: Ipv4Addr::new(198, 51, 100, 7), v6: None, v6_from_week: 0, ttl: 60 },
        );
        assert_eq!(db.len(), 2);
        assert!(!db.is_dual_stack("dual.example", 99));
    }
}
