//! Authoritative zone database.
//!
//! A site's IPv6 accessibility is, at DNS level, the presence of a AAAA
//! record. The database is *time-aware*: each entry records the campaign
//! week from which its AAAA record exists, so reachability timelines
//! (Fig 1) fall out of plain DNS queries at different times.
//!
//! Names are interned: the database owns a [`NameTable`] and stores entries
//! in a dense vector indexed by [`NameId`], so a million-site zone is one
//! byte arena plus one entry array instead of a map of heap strings.

use crate::names::{NameId, NameTable};
use crate::records::{Record, RecordData, RecordType};
use serde::{DeError, Deserialize, Serialize, Value};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Authoritative data for one name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneEntry {
    /// IPv4 address (every monitored site has one).
    pub v4: Ipv4Addr,
    /// IPv6 address, if the site ever becomes IPv6-accessible.
    pub v6: Option<Ipv6Addr>,
    /// Week index from which the AAAA record is published.
    pub v6_from_week: u32,
    /// Record TTL in seconds.
    pub ttl: u32,
}

/// The simulated global DNS: interned name → entry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ZoneDb {
    names: NameTable,
    /// Indexed by [`NameId`]; `None` for interned names without records.
    entries: Vec<Option<ZoneEntry>>,
    occupied: usize,
}

impl ZoneDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// A database that adopts an existing name table (e.g. the site
    /// population's), so [`NameId`]s minted elsewhere stay valid here.
    pub fn with_names(names: NameTable) -> Self {
        let entries = vec![None; names.len()];
        ZoneDb { names, entries, occupied: 0 }
    }

    /// Registers (or replaces) a name, interning it if new.
    pub fn insert(&mut self, name: impl AsRef<str>, entry: ZoneEntry) -> NameId {
        let id = self.names.intern(name.as_ref());
        if id.index() >= self.entries.len() {
            self.entries.resize(id.index() + 1, None);
        }
        self.insert_id(id, entry);
        id
    }

    /// Registers (or replaces) the entry of an already-interned name.
    ///
    /// # Panics
    /// Panics if `id` was not minted by this database's name table.
    pub fn insert_id(&mut self, id: NameId, entry: ZoneEntry) {
        assert!(id.index() < self.names.len(), "unknown NameId {}", id.0);
        let slot = &mut self.entries[id.index()];
        if slot.is_none() {
            self.occupied += 1;
        }
        *slot = Some(entry);
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True when no names are registered.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// The name table backing this zone.
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// The string form of an interned name.
    ///
    /// # Panics
    /// Panics if `id` was not minted by this database's name table.
    pub fn name_of(&self, id: NameId) -> &str {
        self.names.get(id)
    }

    /// The id of `name`, if interned.
    pub fn id_of(&self, name: &str) -> Option<NameId> {
        self.names.id_of(name)
    }

    /// Raw entry lookup by name.
    pub fn entry(&self, name: &str) -> Option<&ZoneEntry> {
        self.entry_by_id(self.names.id_of(name)?)
    }

    /// Raw entry lookup by interned id.
    pub fn entry_by_id(&self, id: NameId) -> Option<&ZoneEntry> {
        self.entries.get(id.index())?.as_ref()
    }

    /// Authoritative answer for `(name, qtype)` as of campaign `week`.
    /// Returns an empty vec for NODATA (name exists, no such record) and
    /// `None` for NXDOMAIN.
    pub fn query(&self, name: &str, qtype: RecordType, week: u32) -> Option<Vec<Record>> {
        let e = self.entry(name)?;
        let mut answers = Vec::new();
        match qtype {
            RecordType::A => answers.push(Record {
                name: name.to_string(),
                data: RecordData::V4(e.v4),
                ttl: e.ttl,
            }),
            RecordType::Aaaa => {
                if let Some(v6) = e.v6 {
                    if week >= e.v6_from_week {
                        answers.push(Record {
                            name: name.to_string(),
                            data: RecordData::V6(v6),
                            ttl: e.ttl,
                        });
                    }
                }
            }
        }
        Some(answers)
    }

    /// Whether `name` has both A and AAAA as of `week` — the study's
    /// dual-stack criterion.
    pub fn is_dual_stack(&self, name: &str, week: u32) -> bool {
        matches!(self.query(name, RecordType::Aaaa, week), Some(v) if !v.is_empty())
    }
}

impl Serialize for ZoneDb {
    fn to_value(&self) -> Value {
        // `(name, entry)` pairs in interning order — deterministic, and the
        // table is rebuilt (not persisted) on the way back in.
        Value::Arr(
            self.names
                .iter()
                .filter_map(|(id, name)| {
                    self.entry_by_id(id).map(|e| Value::Arr(vec![name.to_value(), e.to_value()]))
                })
                .collect(),
        )
    }
}

impl Deserialize for ZoneDb {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs: Vec<(String, ZoneEntry)> = Deserialize::from_value(v)?;
        let mut db = ZoneDb::new();
        for (name, entry) in pairs {
            db.insert(name, entry);
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> ZoneDb {
        let mut db = ZoneDb::new();
        db.insert(
            "dual.example",
            ZoneEntry {
                v4: Ipv4Addr::new(192, 0, 2, 1),
                v6: Some("2001:db8::1".parse().unwrap()),
                v6_from_week: 10,
                ttl: 300,
            },
        );
        db.insert(
            "v4only.example",
            ZoneEntry { v4: Ipv4Addr::new(192, 0, 2, 2), v6: None, v6_from_week: 0, ttl: 300 },
        );
        db
    }

    #[test]
    fn a_record_always_answered() {
        let db = db();
        let ans = db.query("dual.example", RecordType::A, 0).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].data, RecordData::V4(Ipv4Addr::new(192, 0, 2, 1)));
    }

    #[test]
    fn aaaa_appears_at_publication_week() {
        let db = db();
        assert!(db.query("dual.example", RecordType::Aaaa, 9).unwrap().is_empty());
        assert_eq!(db.query("dual.example", RecordType::Aaaa, 10).unwrap().len(), 1);
        assert_eq!(db.query("dual.example", RecordType::Aaaa, 50).unwrap().len(), 1);
    }

    #[test]
    fn v4_only_site_nodata_for_aaaa() {
        let db = db();
        let ans = db.query("v4only.example", RecordType::Aaaa, 99).unwrap();
        assert!(ans.is_empty(), "NODATA, not NXDOMAIN");
    }

    #[test]
    fn unknown_name_nxdomain() {
        assert_eq!(db().query("nope.example", RecordType::A, 0), None);
    }

    #[test]
    fn dual_stack_check_tracks_week() {
        let db = db();
        assert!(!db.is_dual_stack("dual.example", 9));
        assert!(db.is_dual_stack("dual.example", 10));
        assert!(!db.is_dual_stack("v4only.example", 10));
        assert!(!db.is_dual_stack("nope.example", 10));
    }

    #[test]
    fn insert_replaces() {
        let mut db = db();
        assert_eq!(db.len(), 2);
        db.insert(
            "dual.example",
            ZoneEntry { v4: Ipv4Addr::new(198, 51, 100, 7), v6: None, v6_from_week: 0, ttl: 60 },
        );
        assert_eq!(db.len(), 2);
        assert!(!db.is_dual_stack("dual.example", 99));
    }

    #[test]
    fn interned_ids_resolve_entries() {
        let db = db();
        let id = db.id_of("dual.example").expect("interned");
        assert_eq!(db.name_of(id), "dual.example");
        assert_eq!(db.entry_by_id(id), db.entry("dual.example"));
    }

    #[test]
    fn adopted_name_table_keeps_ids_valid() {
        let mut names = NameTable::new();
        let a = names.intern("a.example");
        let b = names.intern("b.example");
        let mut db = ZoneDb::with_names(names);
        assert!(db.is_empty());
        db.insert_id(
            a,
            ZoneEntry { v4: Ipv4Addr::new(192, 0, 2, 9), v6: None, v6_from_week: 0, ttl: 60 },
        );
        assert_eq!(db.len(), 1);
        assert!(db.entry("a.example").is_some());
        assert!(db.entry_by_id(b).is_none(), "interned but record-less name is NXDOMAIN");
        assert_eq!(db.query("b.example", RecordType::A, 0), None);
    }

    #[test]
    fn serde_roundtrip() {
        let db = db();
        let json = serde_json::to_string(&db).unwrap();
        let back: ZoneDb = serde_json::from_str(&json).unwrap();
        assert_eq!(back, db);
    }
}
