//! Interned DNS names.
//!
//! The internet-scale tier registers a million site names; storing each as
//! its own `String` (in the zone, again in every `Site`, again in resolver
//! caches) costs several heap allocations and ~60 bytes of overhead per
//! copy. A [`NameTable`] stores every distinct name once in a shared byte
//! arena and hands out dense `u32` [`NameId`]s; everything else carries the
//! id and borrows the bytes back on demand.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense identifier of an interned name (index into its [`NameTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NameId(pub u32);

impl NameId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// FNV-1a over the name bytes — the table's string→id index key. Collisions
/// are resolved against the arena, so the hash only has to be cheap, not
/// perfect.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only symbol table of DNS names: one byte arena plus offsets, with
/// a hash index for string→id lookup. Interning the same name twice returns
/// the same id.
#[derive(Debug, Clone)]
pub struct NameTable {
    bytes: String,
    /// `offsets[i]..offsets[i + 1]` spans name `i`; length is `len() + 1`.
    offsets: Vec<u32>,
    /// Name-hash → id of the first name seen with that hash.
    index: HashMap<u64, u32>,
    /// Ids whose name hash collided with an earlier, different name.
    collisions: Vec<u32>,
}

impl NameTable {
    /// Empty table.
    pub fn new() -> Self {
        NameTable {
            bytes: String::new(),
            offsets: vec![0],
            index: HashMap::new(),
            collisions: Vec::new(),
        }
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no names are interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns `name`, returning its id (existing id if already interned).
    ///
    /// # Panics
    /// Panics if the id space (`u32`) or the arena (`u32` offsets) would
    /// overflow — both are unreachable below ~4 billion names.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(id) = self.id_of(name) {
            return id;
        }
        let id = u32::try_from(self.len()).expect("name count exceeds u32 id space");
        let end = self.bytes.len() + name.len();
        let end = u32::try_from(end).expect("name arena exceeds u32 offset space");
        self.bytes.push_str(name);
        self.offsets.push(end);
        let h = fnv1a(name.as_bytes());
        match self.index.entry(h) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
            }
            std::collections::hash_map::Entry::Occupied(_) => self.collisions.push(id),
        }
        NameId(id)
    }

    /// The name interned as `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: NameId) -> &str {
        let i = id.index();
        &self.bytes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Looks up the id of `name`, if interned.
    pub fn id_of(&self, name: &str) -> Option<NameId> {
        let h = fnv1a(name.as_bytes());
        if let Some(&id) = self.index.get(&h) {
            if self.get(NameId(id)) == name {
                return Some(NameId(id));
            }
            // hash collided with a different name: fall through to the
            // (near-empty) collision list
            return self.collisions.iter().copied().map(NameId).find(|&c| self.get(c) == name);
        }
        None
    }

    /// Iterates `(id, name)` in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (NameId, &str)> {
        (0..self.len() as u32).map(move |i| (NameId(i), self.get(NameId(i))))
    }
}

impl Default for NameTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for NameTable {
    fn eq(&self, other: &Self) -> bool {
        // the hash index is derived state; the arena is the identity
        self.bytes == other.bytes && self.offsets == other.offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_get_roundtrip() {
        let mut t = NameTable::new();
        let a = t.intern("site0.web.example");
        let b = t.intern("site1.web.example");
        assert_ne!(a, b);
        assert_eq!(t.get(a), "site0.web.example");
        assert_eq!(t.get(b), "site1.web.example");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = NameTable::new();
        let a = t.intern("a.example");
        assert_eq!(t.intern("a.example"), a);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn id_of_finds_only_interned() {
        let mut t = NameTable::new();
        let a = t.intern("a.example");
        assert_eq!(t.id_of("a.example"), Some(a));
        assert_eq!(t.id_of("b.example"), None);
        assert_eq!(t.id_of(""), None);
    }

    #[test]
    fn empty_name_is_a_valid_symbol() {
        let mut t = NameTable::new();
        let e = t.intern("");
        assert_eq!(t.get(e), "");
        assert_eq!(t.id_of(""), Some(e));
    }

    #[test]
    fn ids_are_dense_interning_order() {
        let mut t = NameTable::new();
        for i in 0..100 {
            let id = t.intern(&format!("site{i}.web.example"));
            assert_eq!(id, NameId(i));
        }
        assert_eq!(t.iter().count(), 100);
        assert_eq!(t.iter().nth(7), Some((NameId(7), "site7.web.example")));
    }

    #[test]
    fn equality_ignores_index_internals() {
        let mut a = NameTable::new();
        let mut b = NameTable::new();
        for n in ["x.example", "y.example"] {
            a.intern(n);
            b.intern(n);
        }
        assert_eq!(a, b);
        b.intern("z.example");
        assert_ne!(a, b);
    }
}
