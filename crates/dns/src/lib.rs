//! Simulated DNS for the monitoring pipeline.
//!
//! The first phase of every site's monitoring round is "a DNS query for the
//! A and AAAA records of the site" (Section 3, Fig 2). This crate provides:
//!
//! * [`zone`] — the authoritative view: which names have A records, which
//!   have AAAA records, and what addresses they resolve to. Sites becoming
//!   IPv6-accessible over the campaign is modeled as AAAA records appearing
//!   at a given week.
//! * [`resolver`] — a caching stub resolver with TTL expiry, mirroring the
//!   resolver each vantage point used.
//! * [`wire`] — an RFC 1035 message codec (header, question, answer with
//!   A/AAAA RDATA) so queries and responses exist as real bytes.

pub mod names;
pub mod records;
pub mod resolver;
pub mod wire;
pub mod zone;

pub use names::{NameId, NameTable};
pub use records::{Record, RecordData, RecordType};
pub use resolver::{DnsError, Resolver, ResolverStats};
pub use wire::{DnsHeader, DnsMessage, DnsQuestion, DnsRecordWire};
pub use zone::{ZoneDb, ZoneEntry};
