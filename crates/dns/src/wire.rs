//! RFC 1035 message codec (query/response, A and AAAA answers).
//!
//! Names are encoded as uncompressed label sequences; the decoder also
//! understands (and rejects cleanly) compression pointers, which this
//! encoder never emits.

use crate::records::{Record, RecordData, RecordType};
use bytes::{Buf, BufMut};
use ipv6web_packet::PacketError;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Message header (12 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsHeader {
    /// Transaction id.
    pub id: u16,
    /// True for responses, false for queries.
    pub response: bool,
    /// RCODE (0 = NOERROR, 3 = NXDOMAIN).
    pub rcode: u8,
    /// Question count.
    pub qdcount: u16,
    /// Answer count.
    pub ancount: u16,
}

/// RCODE for NXDOMAIN.
pub const RCODE_NXDOMAIN: u8 = 3;

/// One question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuestion {
    /// Queried name.
    pub name: String,
    /// Queried type.
    pub qtype: RecordType,
}

/// One answer resource record, wire-level.
#[derive(Debug, Clone, PartialEq)]
pub struct DnsRecordWire {
    /// Owner name.
    pub name: String,
    /// TTL seconds.
    pub ttl: u32,
    /// Address payload.
    pub data: RecordData,
}

/// A parsed or to-be-encoded DNS message.
#[derive(Debug, Clone, PartialEq)]
pub struct DnsMessage {
    /// Header fields.
    pub header: DnsHeader,
    /// Questions (the study always sends exactly one).
    pub questions: Vec<DnsQuestion>,
    /// Answers.
    pub answers: Vec<DnsRecordWire>,
}

impl DnsMessage {
    /// Builds a single-question query.
    pub fn query(id: u16, name: impl Into<String>, qtype: RecordType) -> Self {
        DnsMessage {
            header: DnsHeader { id, response: false, rcode: 0, qdcount: 1, ancount: 0 },
            questions: vec![DnsQuestion { name: name.into(), qtype }],
            answers: Vec::new(),
        }
    }

    /// Builds the response to `query` carrying `records` (empty = NODATA),
    /// or NXDOMAIN when `nxdomain` is set.
    pub fn response(query: &DnsMessage, records: &[Record], nxdomain: bool) -> Self {
        DnsMessage {
            header: DnsHeader {
                id: query.header.id,
                response: true,
                rcode: if nxdomain { RCODE_NXDOMAIN } else { 0 },
                qdcount: query.questions.len() as u16,
                ancount: records.len() as u16,
            },
            questions: query.questions.clone(),
            answers: records
                .iter()
                .map(|r| DnsRecordWire { name: r.name.clone(), ttl: r.ttl, data: r.data })
                .collect(),
        }
    }

    /// Encodes to wire bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        v.put_u16(self.header.id);
        let mut flags: u16 = 0;
        if self.header.response {
            flags |= 0x8000;
        }
        flags |= 0x0100; // RD
        flags |= self.header.rcode as u16 & 0x000f;
        v.put_u16(flags);
        v.put_u16(self.questions.len() as u16);
        v.put_u16(self.answers.len() as u16);
        v.put_u16(0); // NSCOUNT
        v.put_u16(0); // ARCOUNT
        for q in &self.questions {
            encode_name(&mut v, &q.name);
            v.put_u16(q.qtype.code());
            v.put_u16(1); // IN
        }
        for a in &self.answers {
            encode_name(&mut v, &a.name);
            v.put_u16(a.data.record_type().code());
            v.put_u16(1); // IN
            v.put_u32(a.ttl);
            match a.data {
                RecordData::V4(ip) => {
                    v.put_u16(4);
                    v.put_slice(&ip.octets());
                }
                RecordData::V6(ip) => {
                    v.put_u16(16);
                    v.put_slice(&ip.octets());
                }
            }
        }
        v
    }

    /// Decodes a message.
    pub fn decode(data: &[u8]) -> Result<Self, PacketError> {
        let mut buf = data;
        if buf.remaining() < 12 {
            return Err(PacketError::Truncated {
                what: "dns header",
                needed: 12,
                got: buf.remaining(),
            });
        }
        let id = buf.get_u16();
        let flags = buf.get_u16();
        let qdcount = buf.get_u16();
        let ancount = buf.get_u16();
        let _ns = buf.get_u16();
        let _ar = buf.get_u16();
        let header = DnsHeader {
            id,
            response: flags & 0x8000 != 0,
            rcode: (flags & 0x000f) as u8,
            qdcount,
            ancount,
        };
        let mut questions = Vec::with_capacity(qdcount as usize);
        for _ in 0..qdcount {
            let name = decode_name(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(PacketError::Truncated {
                    what: "dns question",
                    needed: 4,
                    got: buf.remaining(),
                });
            }
            let code = buf.get_u16();
            let _class = buf.get_u16();
            let qtype =
                RecordType::from_code(code).ok_or(PacketError::BadField { what: "dns qtype" })?;
            questions.push(DnsQuestion { name, qtype });
        }
        let mut answers = Vec::with_capacity(ancount as usize);
        for _ in 0..ancount {
            let name = decode_name(&mut buf)?;
            if buf.remaining() < 10 {
                return Err(PacketError::Truncated {
                    what: "dns answer",
                    needed: 10,
                    got: buf.remaining(),
                });
            }
            let code = buf.get_u16();
            let _class = buf.get_u16();
            let ttl = buf.get_u32();
            let rdlen = buf.get_u16() as usize;
            if buf.remaining() < rdlen {
                return Err(PacketError::Truncated {
                    what: "dns rdata",
                    needed: rdlen,
                    got: buf.remaining(),
                });
            }
            let rtype = RecordType::from_code(code)
                .ok_or(PacketError::BadField { what: "dns answer type" })?;
            let data = match (rtype, rdlen) {
                (RecordType::A, 4) => {
                    let mut o = [0u8; 4];
                    buf.copy_to_slice(&mut o);
                    RecordData::V4(Ipv4Addr::from(o))
                }
                (RecordType::Aaaa, 16) => {
                    let mut o = [0u8; 16];
                    buf.copy_to_slice(&mut o);
                    RecordData::V6(Ipv6Addr::from(o))
                }
                _ => return Err(PacketError::BadLength { what: "dns rdata length", value: rdlen }),
            };
            answers.push(DnsRecordWire { name, ttl, data });
        }
        Ok(DnsMessage { header, questions, answers })
    }
}

fn encode_name(v: &mut Vec<u8>, name: &str) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        debug_assert!(label.len() < 64, "label too long: {label}");
        v.put_u8(label.len() as u8);
        v.put_slice(label.as_bytes());
    }
    v.put_u8(0);
}

fn decode_name(buf: &mut &[u8]) -> Result<String, PacketError> {
    let mut labels: Vec<String> = Vec::new();
    loop {
        if buf.remaining() < 1 {
            return Err(PacketError::Truncated { what: "dns name", needed: 1, got: 0 });
        }
        let len = buf.get_u8();
        if len == 0 {
            break;
        }
        if len & 0xc0 != 0 {
            return Err(PacketError::BadField { what: "dns compression pointer (unsupported)" });
        }
        if buf.remaining() < len as usize {
            return Err(PacketError::Truncated {
                what: "dns label",
                needed: len as usize,
                got: buf.remaining(),
            });
        }
        let mut bytes = vec![0u8; len as usize];
        buf.copy_to_slice(&mut bytes);
        labels.push(
            String::from_utf8(bytes)
                .map_err(|_| PacketError::BadField { what: "dns label utf8" })?,
        );
        if labels.len() > 32 {
            return Err(PacketError::BadField { what: "dns name too deep" });
        }
    }
    Ok(labels.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::query(0x1234, "www.site7.example", RecordType::Aaaa);
        let d = DnsMessage::decode(&q.to_vec()).unwrap();
        assert_eq!(q, d);
        assert!(!d.header.response);
        assert_eq!(d.questions[0].name, "www.site7.example");
        assert_eq!(d.questions[0].qtype, RecordType::Aaaa);
    }

    #[test]
    fn response_roundtrip_with_answers() {
        let q = DnsMessage::query(7, "s.example", RecordType::A);
        let recs = vec![Record::a("s.example", Ipv4Addr::new(192, 0, 2, 9), 120)];
        let r = DnsMessage::response(&q, &recs, false);
        let d = DnsMessage::decode(&r.to_vec()).unwrap();
        assert!(d.header.response);
        assert_eq!(d.header.id, 7);
        assert_eq!(d.header.rcode, 0);
        assert_eq!(d.answers.len(), 1);
        assert_eq!(d.answers[0].data, RecordData::V4(Ipv4Addr::new(192, 0, 2, 9)));
        assert_eq!(d.answers[0].ttl, 120);
    }

    #[test]
    fn aaaa_answer_roundtrip() {
        let q = DnsMessage::query(8, "s.example", RecordType::Aaaa);
        let recs = vec![Record::aaaa("s.example", "2001:db8::42".parse().unwrap(), 60)];
        let d = DnsMessage::decode(&DnsMessage::response(&q, &recs, false).to_vec()).unwrap();
        assert_eq!(d.answers[0].data, RecordData::V6("2001:db8::42".parse().unwrap()));
    }

    #[test]
    fn nxdomain_response() {
        let q = DnsMessage::query(9, "gone.example", RecordType::A);
        let r = DnsMessage::response(&q, &[], true);
        let d = DnsMessage::decode(&r.to_vec()).unwrap();
        assert_eq!(d.header.rcode, RCODE_NXDOMAIN);
        assert!(d.answers.is_empty());
    }

    #[test]
    fn nodata_response_has_rcode_zero() {
        let q = DnsMessage::query(9, "v4only.example", RecordType::Aaaa);
        let d = DnsMessage::decode(&DnsMessage::response(&q, &[], false).to_vec()).unwrap();
        assert_eq!(d.header.rcode, 0);
        assert!(d.answers.is_empty());
    }

    #[test]
    fn truncated_rejected() {
        let q = DnsMessage::query(1, "x.example", RecordType::A).to_vec();
        for cut in [0, 5, 11, q.len() - 1] {
            assert!(DnsMessage::decode(&q[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn compression_pointer_rejected() {
        let mut v = DnsMessage::query(1, "x.example", RecordType::A).to_vec();
        v[12] = 0xc0; // pointer marker where the first label length was
        assert_eq!(
            DnsMessage::decode(&v).unwrap_err(),
            PacketError::BadField { what: "dns compression pointer (unsupported)" }
        );
    }

    #[test]
    fn unknown_qtype_rejected() {
        let mut v = DnsMessage::query(1, "x.example", RecordType::A).to_vec();
        let n = v.len();
        v[n - 4] = 0;
        v[n - 3] = 15; // MX
        assert_eq!(
            DnsMessage::decode(&v).unwrap_err(),
            PacketError::BadField { what: "dns qtype" }
        );
    }

    #[test]
    fn empty_name_roundtrips_as_root() {
        let q = DnsMessage::query(2, "", RecordType::A);
        let d = DnsMessage::decode(&q.to_vec()).unwrap();
        assert_eq!(d.questions[0].name, "");
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_names(
            labels in proptest::collection::vec("[a-z0-9-]{1,20}", 1..5),
            id in any::<u16>(),
        ) {
            let name = labels.join(".");
            let q = DnsMessage::query(id, name.clone(), RecordType::Aaaa);
            let d = DnsMessage::decode(&q.to_vec()).unwrap();
            prop_assert_eq!(d.questions[0].name.clone(), name);
            prop_assert_eq!(d.header.id, id);
        }

        #[test]
        fn roundtrip_many_answers(
            n in 0usize..10,
            ttl in any::<u32>(),
        ) {
            let q = DnsMessage::query(3, "multi.example", RecordType::A);
            let recs: Vec<Record> = (0..n)
                .map(|i| Record::a("multi.example", Ipv4Addr::new(10, 0, (i / 256) as u8, (i % 256) as u8), ttl))
                .collect();
            let d = DnsMessage::decode(&DnsMessage::response(&q, &recs, false).to_vec()).unwrap();
            prop_assert_eq!(d.answers.len(), n);
            for (a, r) in d.answers.iter().zip(&recs) {
                prop_assert_eq!(a.data, r.data);
                prop_assert_eq!(a.ttl, ttl);
            }
        }
    }
}
