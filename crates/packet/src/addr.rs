//! CIDR prefix types used by the simulated address plan.
//!
//! Each simulated AS is assigned one IPv4 and (if dual-stack) one IPv6
//! prefix; DNS answers and routing lookups test membership against these.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// An IPv4 CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Cidr {
    addr: Ipv4Addr,
    len: u8,
}

impl Ipv4Cidr {
    /// Creates a prefix, truncating host bits. `len` is clamped to 32.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        let len = len.min(32);
        let mask = Self::mask(len);
        Ipv4Cidr { addr: Ipv4Addr::from(u32::from(addr) & mask), len }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Network address.
    pub fn network(&self) -> Ipv4Addr {
        self.addr
    }

    /// Prefix length.
    #[allow(clippy::len_without_is_empty)] // prefix length, not a collection
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask(self.len)) == u32::from(self.addr)
    }

    /// The `i`-th host address inside the prefix (wraps within the prefix).
    pub fn host(&self, i: u32) -> Ipv4Addr {
        let span = if self.len == 32 { 1u64 } else { 1u64 << (32 - self.len as u64) };
        let offset = u32::try_from(u64::from(i) % span).expect("span ≤ 2^32 keeps offset in u32");
        Ipv4Addr::from(u32::from(self.addr) | offset)
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Ipv4Cidr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, l) = s.split_once('/').ok_or_else(|| format!("no '/': {s}"))?;
        let addr: Ipv4Addr = a.parse().map_err(|e| format!("bad addr {a}: {e}"))?;
        let len: u8 = l.parse().map_err(|e| format!("bad len {l}: {e}"))?;
        if len > 32 {
            return Err(format!("prefix length {len} > 32"));
        }
        Ok(Ipv4Cidr::new(addr, len))
    }
}

/// An IPv6 CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv6Cidr {
    addr: Ipv6Addr,
    len: u8,
}

impl Ipv6Cidr {
    /// Creates a prefix, truncating host bits. `len` is clamped to 128.
    pub fn new(addr: Ipv6Addr, len: u8) -> Self {
        let len = len.min(128);
        let mask = Self::mask(len);
        Ipv6Cidr { addr: Ipv6Addr::from(u128::from(addr) & mask), len }
    }

    fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len as u32)
        }
    }

    /// Network address.
    pub fn network(&self) -> Ipv6Addr {
        self.addr
    }

    /// Prefix length.
    #[allow(clippy::len_without_is_empty)] // prefix length, not a collection
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv6Addr) -> bool {
        (u128::from(ip) & Self::mask(self.len)) == u128::from(self.addr)
    }

    /// The `i`-th host address inside the prefix (wraps within the prefix).
    pub fn host(&self, i: u128) -> Ipv6Addr {
        if self.len == 128 {
            return self.addr;
        }
        let span = 1u128 << (128 - self.len as u32).min(127);
        Ipv6Addr::from(u128::from(self.addr) | (i % span))
    }
}

impl fmt::Display for Ipv6Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Ipv6Cidr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, l) = s.split_once('/').ok_or_else(|| format!("no '/': {s}"))?;
        let addr: Ipv6Addr = a.parse().map_err(|e| format!("bad addr {a}: {e}"))?;
        let len: u8 = l.parse().map_err(|e| format!("bad len {l}: {e}"))?;
        if len > 128 {
            return Err(format!("prefix length {len} > 128"));
        }
        Ok(Ipv6Cidr::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn v4_truncates_host_bits() {
        let c = Ipv4Cidr::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(c.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(c.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn v4_contains() {
        let c: Ipv4Cidr = "192.168.4.0/22".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(192, 168, 4, 1)));
        assert!(c.contains(Ipv4Addr::new(192, 168, 7, 255)));
        assert!(!c.contains(Ipv4Addr::new(192, 168, 8, 0)));
    }

    #[test]
    fn v4_zero_length_contains_everything() {
        let c = Ipv4Cidr::new(Ipv4Addr::UNSPECIFIED, 0);
        assert!(c.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(c.contains(Ipv4Addr::new(0, 0, 0, 1)));
    }

    #[test]
    fn v4_host_enumeration_wraps() {
        let c: Ipv4Cidr = "10.0.0.0/30".parse().unwrap();
        assert_eq!(c.host(0), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(c.host(3), Ipv4Addr::new(10, 0, 0, 3));
        assert_eq!(c.host(4), Ipv4Addr::new(10, 0, 0, 0));
    }

    #[test]
    fn v4_slash32() {
        let c: Ipv4Cidr = "1.2.3.4/32".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(1, 2, 3, 4)));
        assert!(!c.contains(Ipv4Addr::new(1, 2, 3, 5)));
        assert_eq!(c.host(99), Ipv4Addr::new(1, 2, 3, 4));
    }

    #[test]
    fn v4_parse_errors() {
        assert!("10.0.0.0".parse::<Ipv4Cidr>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Cidr>().is_err());
        assert!("banana/8".parse::<Ipv4Cidr>().is_err());
    }

    #[test]
    fn v6_truncates_and_displays() {
        let c = Ipv6Cidr::new("2001:db8:1:2::5".parse().unwrap(), 32);
        assert_eq!(c.network(), "2001:db8::".parse::<Ipv6Addr>().unwrap());
        assert_eq!(c.to_string(), "2001:db8::/32");
    }

    #[test]
    fn v6_contains() {
        let c: Ipv6Cidr = "2001:db8::/32".parse().unwrap();
        assert!(c.contains("2001:db8:ffff::1".parse().unwrap()));
        assert!(!c.contains("2001:db9::1".parse().unwrap()));
    }

    #[test]
    fn v6_host_enumeration() {
        let c: Ipv6Cidr = "2001:db8::/64".parse().unwrap();
        assert_eq!(c.host(1), "2001:db8::1".parse::<Ipv6Addr>().unwrap());
        assert_eq!(c.host(0x1_0000), "2001:db8::1:0".parse::<Ipv6Addr>().unwrap());
    }

    #[test]
    fn v6_parse_errors() {
        assert!("2001:db8::/129".parse::<Ipv6Cidr>().is_err());
        assert!("2001:db8::".parse::<Ipv6Cidr>().is_err());
    }

    proptest! {
        #[test]
        fn v4_roundtrip_display_parse(a in any::<u32>(), len in 0u8..=32) {
            let c = Ipv4Cidr::new(Ipv4Addr::from(a), len);
            let back: Ipv4Cidr = c.to_string().parse().unwrap();
            prop_assert_eq!(c, back);
        }

        #[test]
        fn v4_network_contained_in_self(a in any::<u32>(), len in 0u8..=32) {
            let c = Ipv4Cidr::new(Ipv4Addr::from(a), len);
            prop_assert!(c.contains(c.network()));
        }

        #[test]
        fn v4_hosts_are_contained(a in any::<u32>(), len in 0u8..=32, i in any::<u32>()) {
            let c = Ipv4Cidr::new(Ipv4Addr::from(a), len);
            prop_assert!(c.contains(c.host(i)));
        }

        #[test]
        fn v6_roundtrip_display_parse(a in any::<u128>(), len in 0u8..=128) {
            let c = Ipv6Cidr::new(Ipv6Addr::from(a), len);
            let back: Ipv6Cidr = c.to_string().parse().unwrap();
            prop_assert_eq!(c, back);
        }

        #[test]
        fn v6_hosts_are_contained(a in any::<u128>(), len in 0u8..=128, i in any::<u128>()) {
            let c = Ipv6Cidr::new(Ipv6Addr::from(a), len);
            prop_assert!(c.contains(c.host(i)));
        }
    }
}
