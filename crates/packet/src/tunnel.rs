//! IPv6-over-IPv4 tunneling: 6in4 encapsulation (RFC 4213) and 6to4
//! addressing (RFC 3056).
//!
//! The paper attributes two observable artifacts to tunnels:
//!
//! 1. **Hop hiding** — an IPv6 traceroute/AS-path across a tunnel sees one
//!    hop where the underlying IPv4 path has several, which is the paper's
//!    explanation for IPv6 under-performing at small AS hop counts
//!    (Table 7).
//! 2. **Destination-AS drift** — `6to4` (RFC 3056, cited in Section 5) maps
//!    a site's IPv4 address into `2002::/16`, so its IPv6 "location" can
//!    resolve to a different AS than its IPv4 one (Table 2 discussion).
//!
//! Both mechanisms are implemented here at the byte level.

use crate::error::PacketError;
use crate::ipv4::{Ipv4Header, IPPROTO_IPV6, IPV4_HEADER_LEN};
use crate::Result;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Conventional MTU cost of a 6in4 tunnel: the encapsulating IPv4 header.
pub const TUNNEL_OVERHEAD: usize = IPV4_HEADER_LEN;

/// Encapsulates a full IPv6 packet in an IPv4 packet between tunnel
/// endpoints `entry` and `exit` (protocol 41).
pub fn encapsulate_6in4(entry: Ipv4Addr, exit: Ipv4Addr, ipv6_packet: &[u8]) -> Vec<u8> {
    let outer = Ipv4Header::new(entry, exit, IPPROTO_IPV6, ipv6_packet.len() as u16);
    let mut v = outer.to_vec();
    v.extend_from_slice(ipv6_packet);
    v
}

/// Decapsulates a 6in4 packet: verifies the outer IPv4 header, checks the
/// protocol number, and returns `(outer_header, inner_ipv6_bytes)`.
pub fn decapsulate_6in4(packet: &[u8]) -> Result<(Ipv4Header, &[u8])> {
    let mut cursor = packet;
    let outer = Ipv4Header::decode(&mut cursor)?;
    if outer.protocol != IPPROTO_IPV6 {
        return Err(PacketError::BadField { what: "6in4 outer protocol (want 41)" });
    }
    Ok((outer, cursor))
}

/// Maps an IPv4 address into its 6to4 prefix `2002:aabb:ccdd::/48` network
/// address (RFC 3056 §2).
pub fn to_6to4(v4: Ipv4Addr) -> Ipv6Addr {
    let o = v4.octets();
    Ipv6Addr::new(
        0x2002,
        u16::from_be_bytes([o[0], o[1]]),
        u16::from_be_bytes([o[2], o[3]]),
        0,
        0,
        0,
        0,
        1,
    )
}

/// True if `v6` lies inside `2002::/16`.
pub fn is_6to4(v6: Ipv6Addr) -> bool {
    v6.segments()[0] == 0x2002
}

/// Recovers the embedded IPv4 address from a 6to4 address, if it is one.
pub fn from_6to4(v6: Ipv6Addr) -> Option<Ipv4Addr> {
    if !is_6to4(v6) {
        return None;
    }
    let s = v6.segments();
    let hi = s[1].to_be_bytes();
    let lo = s[2].to_be_bytes();
    Some(Ipv4Addr::new(hi[0], hi[1], lo[0], lo[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv6::Ipv6Header;
    use proptest::prelude::*;

    #[test]
    fn encap_decap_roundtrip() {
        let inner_hdr =
            Ipv6Header::new("2001:db8::1".parse().unwrap(), "2001:db8::2".parse().unwrap(), 6, 11);
        let mut inner = inner_hdr.to_vec();
        inner.extend_from_slice(b"hello world");
        let entry = Ipv4Addr::new(192, 0, 2, 1);
        let exit = Ipv4Addr::new(192, 0, 2, 254);
        let wire = encapsulate_6in4(entry, exit, &inner);
        assert_eq!(wire.len(), inner.len() + TUNNEL_OVERHEAD);

        let (outer, recovered) = decapsulate_6in4(&wire).unwrap();
        assert_eq!(outer.src, entry);
        assert_eq!(outer.dst, exit);
        assert_eq!(outer.protocol, IPPROTO_IPV6);
        assert_eq!(recovered, &inner[..]);
        // inner still parses
        let h = Ipv6Header::decode(&mut &recovered[..]).unwrap();
        assert_eq!(h, inner_hdr);
    }

    #[test]
    fn decap_rejects_non_41() {
        let outer = Ipv4Header::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            6, // TCP, not 41
            0,
        );
        let wire = outer.to_vec();
        assert_eq!(
            decapsulate_6in4(&wire).unwrap_err(),
            PacketError::BadField { what: "6in4 outer protocol (want 41)" }
        );
    }

    #[test]
    fn decap_rejects_garbage() {
        assert!(decapsulate_6in4(&[0u8; 5]).is_err());
    }

    #[test]
    fn rfc3056_mapping_example() {
        // 192.0.2.4 -> 2002:c000:0204::/48
        let v6 = to_6to4(Ipv4Addr::new(192, 0, 2, 4));
        assert_eq!(v6.segments()[0], 0x2002);
        assert_eq!(v6.segments()[1], 0xc000);
        assert_eq!(v6.segments()[2], 0x0204);
        assert!(is_6to4(v6));
        assert_eq!(from_6to4(v6), Some(Ipv4Addr::new(192, 0, 2, 4)));
    }

    #[test]
    fn non_6to4_not_recognized() {
        let native: Ipv6Addr = "2001:db8::1".parse().unwrap();
        assert!(!is_6to4(native));
        assert_eq!(from_6to4(native), None);
    }

    proptest! {
        #[test]
        fn sixto4_roundtrips(a in any::<u32>()) {
            let v4 = Ipv4Addr::from(a);
            prop_assert_eq!(from_6to4(to_6to4(v4)), Some(v4));
        }

        #[test]
        fn encap_preserves_payload(
            inner in proptest::collection::vec(any::<u8>(), 0..500),
            e in any::<u32>(),
            x in any::<u32>(),
        ) {
            let wire = encapsulate_6in4(Ipv4Addr::from(e), Ipv4Addr::from(x), &inner);
            let (_, recovered) = decapsulate_6in4(&wire).unwrap();
            prop_assert_eq!(recovered, &inner[..]);
        }
    }
}
