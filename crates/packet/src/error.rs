//! Packet parsing/serialization errors.

use std::fmt;

/// Errors produced while decoding or encoding packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Buffer too short for the expected structure.
    Truncated {
        /// What was being parsed.
        what: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A version field did not match the expected IP version.
    BadVersion {
        /// Expected version number (4 or 6).
        expected: u8,
        /// Version found on the wire.
        got: u8,
    },
    /// Header checksum verification failed.
    BadChecksum {
        /// Which protocol's checksum failed.
        what: &'static str,
    },
    /// A length field is inconsistent with the buffer.
    BadLength {
        /// What was being parsed.
        what: &'static str,
        /// The offending value.
        value: usize,
    },
    /// A field value outside its valid range.
    BadField {
        /// Field description.
        what: &'static str,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated { what, needed, got } => {
                write!(f, "{what}: truncated (need {needed} bytes, have {got})")
            }
            PacketError::BadVersion { expected, got } => {
                write!(f, "bad IP version: expected {expected}, got {got}")
            }
            PacketError::BadChecksum { what } => write!(f, "{what}: checksum mismatch"),
            PacketError::BadLength { what, value } => {
                write!(f, "{what}: inconsistent length {value}")
            }
            PacketError::BadField { what } => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for PacketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PacketError::Truncated { what: "ipv4 header", needed: 20, got: 7 };
        let s = e.to_string();
        assert!(s.contains("ipv4 header") && s.contains("20") && s.contains('7'));

        assert!(PacketError::BadVersion { expected: 6, got: 4 }.to_string().contains("expected 6"));
        assert!(PacketError::BadChecksum { what: "udp" }.to_string().contains("udp"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&PacketError::BadField { what: "ihl" });
    }
}
