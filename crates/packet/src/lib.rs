//! Wire formats for the `ipv6web` simulated Internet.
//!
//! The monitoring pipeline exercises real protocol mechanics in several
//! places: DNS A/AAAA lookups, TCP page downloads, traceroute's hop-limit /
//! ICMP Time Exceeded dance, and IPv6-over-IPv4 tunnels crossing v4-only
//! islands. This crate implements the corresponding packet formats from the
//! RFCs — encode, decode, and checksum — so those code paths operate on real
//! bytes rather than ad-hoc structs.
//!
//! Layout follows the RFCs exactly:
//! * IPv4 — RFC 791 (plus the 6in4 protocol number 41, RFC 4213)
//! * IPv6 — RFC 8200
//! * ICMPv4 — RFC 792, ICMPv6 — RFC 4443
//! * UDP — RFC 768, TCP — RFC 793
//! * 6to4 addressing — RFC 3056 (`2002::/16`), referenced by the paper as a
//!   contributor to IPv6/IPv4 destination-AS differences.

pub mod addr;
pub mod checksum;
pub mod error;
pub mod icmpv4;
pub mod icmpv6;
pub mod ipv4;
pub mod ipv6;
pub mod ipv6_ext;
pub mod tcp;
pub mod tunnel;
pub mod udp;

pub use addr::{Ipv4Cidr, Ipv6Cidr};
pub use error::PacketError;
pub use icmpv4::{Icmpv4Message, Icmpv4Type};
pub use icmpv6::{Icmpv6Message, Icmpv6Type};
pub use ipv4::{Ipv4Header, IPPROTO_ICMP, IPPROTO_IPV6, IPPROTO_TCP, IPPROTO_UDP};
pub use ipv6::{Ipv6Header, IPPROTO_ICMPV6};
pub use ipv6_ext::{walk_chain, ChainWalk, ExtHeader, FragmentHeader};
pub use tcp::TcpHeader;
pub use tunnel::{decapsulate_6in4, encapsulate_6in4, from_6to4, is_6to4, to_6to4};
pub use udp::UdpHeader;

/// Result alias for packet operations.
pub type Result<T> = std::result::Result<T, PacketError>;
