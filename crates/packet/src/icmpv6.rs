//! ICMPv6 messages (RFC 4443) — echo, time exceeded, destination
//! unreachable, plus Packet Too Big which matters for tunnel MTU issues.
//!
//! Unlike ICMPv4, the ICMPv6 checksum covers an IPv6 pseudo-header, so
//! encode/decode take the source and destination addresses.

use crate::checksum::pseudo_v6;
use crate::error::PacketError;
use crate::ipv6::IPPROTO_ICMPV6;
use crate::Result;
use bytes::BufMut;
use std::net::Ipv6Addr;

/// ICMPv6 message types used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Icmpv6Type {
    /// Destination unreachable (type 1).
    DestUnreachable,
    /// Packet too big (type 2) — emitted when a 6in4 tunnel shrinks the MTU.
    PacketTooBig,
    /// Time exceeded (type 3).
    TimeExceeded,
    /// Echo request (type 128).
    EchoRequest,
    /// Echo reply (type 129).
    EchoReply,
}

impl Icmpv6Type {
    /// Wire type number.
    pub fn number(self) -> u8 {
        match self {
            Icmpv6Type::DestUnreachable => 1,
            Icmpv6Type::PacketTooBig => 2,
            Icmpv6Type::TimeExceeded => 3,
            Icmpv6Type::EchoRequest => 128,
            Icmpv6Type::EchoReply => 129,
        }
    }

    /// Parses a wire type number.
    pub fn from_number(n: u8) -> Option<Self> {
        match n {
            1 => Some(Icmpv6Type::DestUnreachable),
            2 => Some(Icmpv6Type::PacketTooBig),
            3 => Some(Icmpv6Type::TimeExceeded),
            128 => Some(Icmpv6Type::EchoRequest),
            129 => Some(Icmpv6Type::EchoReply),
            _ => None,
        }
    }
}

/// A decoded ICMPv6 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Icmpv6Message {
    /// Message type.
    pub msg_type: Icmpv6Type,
    /// Code.
    pub code: u8,
    /// The 4 bytes after the checksum: echo id/seq, or the MTU for
    /// PacketTooBig, or zero.
    pub rest_of_header: u32,
    /// Message body (for errors: as much of the invoking packet as fits).
    pub payload: Vec<u8>,
}

impl Icmpv6Message {
    /// Builds an echo request.
    pub fn echo_request(ident: u16, seq: u16, payload: Vec<u8>) -> Self {
        Icmpv6Message {
            msg_type: Icmpv6Type::EchoRequest,
            code: 0,
            rest_of_header: ((ident as u32) << 16) | seq as u32,
            payload,
        }
    }

    /// Builds the matching echo reply.
    pub fn echo_reply(ident: u16, seq: u16, payload: Vec<u8>) -> Self {
        Icmpv6Message {
            msg_type: Icmpv6Type::EchoReply,
            code: 0,
            rest_of_header: ((ident as u32) << 16) | seq as u32,
            payload,
        }
    }

    /// Builds a hop-limit-exceeded Time Exceeded carrying the invoking
    /// packet excerpt (up to 1232 bytes per RFC 4443; we keep 48).
    pub fn time_exceeded(invoking_packet: &[u8]) -> Self {
        let excerpt = invoking_packet.len().min(48);
        Icmpv6Message {
            msg_type: Icmpv6Type::TimeExceeded,
            code: 0, // hop limit exceeded in transit
            rest_of_header: 0,
            payload: invoking_packet[..excerpt].to_vec(),
        }
    }

    /// Builds a Packet Too Big advertising `mtu`.
    pub fn packet_too_big(mtu: u32, invoking_packet: &[u8]) -> Self {
        let excerpt = invoking_packet.len().min(48);
        Icmpv6Message {
            msg_type: Icmpv6Type::PacketTooBig,
            code: 0,
            rest_of_header: mtu,
            payload: invoking_packet[..excerpt].to_vec(),
        }
    }

    /// Echo identifier, if an echo message.
    pub fn echo_ident(&self) -> Option<u16> {
        matches!(self.msg_type, Icmpv6Type::EchoRequest | Icmpv6Type::EchoReply)
            .then(|| (self.rest_of_header >> 16) as u16)
    }

    /// Echo sequence, if an echo message.
    pub fn echo_seq(&self) -> Option<u16> {
        matches!(self.msg_type, Icmpv6Type::EchoRequest | Icmpv6Type::EchoReply)
            .then(|| (self.rest_of_header & 0xffff) as u16)
    }

    /// Advertised MTU, if a Packet Too Big.
    pub fn mtu(&self) -> Option<u32> {
        (self.msg_type == Icmpv6Type::PacketTooBig).then_some(self.rest_of_header)
    }

    /// Serializes with the pseudo-header checksum for `src`→`dst`.
    pub fn to_vec(&self, src: Ipv6Addr, dst: Ipv6Addr) -> Vec<u8> {
        let mut v = Vec::with_capacity(8 + self.payload.len());
        v.put_u8(self.msg_type.number());
        v.put_u8(self.code);
        v.put_u16(0);
        v.put_u32(self.rest_of_header);
        v.put_slice(&self.payload);
        let mut c = pseudo_v6(src, dst, IPPROTO_ICMPV6, v.len() as u32);
        c.add_bytes(&v);
        let ck = c.finish();
        v[2..4].copy_from_slice(&ck.to_be_bytes());
        v
    }

    /// Decodes and verifies against the pseudo-header for `src`→`dst`.
    pub fn decode(data: &[u8], src: Ipv6Addr, dst: Ipv6Addr) -> Result<Self> {
        if data.len() < 8 {
            return Err(PacketError::Truncated {
                what: "icmpv6 message",
                needed: 8,
                got: data.len(),
            });
        }
        let mut c = pseudo_v6(src, dst, IPPROTO_ICMPV6, data.len() as u32);
        c.add_bytes(data);
        if c.finish() != 0 {
            return Err(PacketError::BadChecksum { what: "icmpv6" });
        }
        let msg_type = Icmpv6Type::from_number(data[0])
            .ok_or(PacketError::BadField { what: "icmpv6 type" })?;
        Ok(Icmpv6Message {
            msg_type,
            code: data[1],
            rest_of_header: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            payload: data[8..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn addrs() -> (Ipv6Addr, Ipv6Addr) {
        ("2001:db8::1".parse().unwrap(), "2001:db8::2".parse().unwrap())
    }

    #[test]
    fn echo_roundtrip() {
        let (s, d) = addrs();
        let m = Icmpv6Message::echo_request(0xbeef, 42, b"hello".to_vec());
        let dec = Icmpv6Message::decode(&m.to_vec(s, d), s, d).unwrap();
        assert_eq!(m, dec);
        assert_eq!(dec.echo_ident(), Some(0xbeef));
        assert_eq!(dec.echo_seq(), Some(42));
    }

    #[test]
    fn checksum_binds_addresses() {
        let (s, d) = addrs();
        let v = Icmpv6Message::echo_request(1, 1, vec![]).to_vec(s, d);
        // decoding with swapped addresses must fail: pseudo-header differs...
        // (note: swapping src/dst alone keeps the sum identical since both are
        // summed symmetrically, so perturb one address instead)
        let other: Ipv6Addr = "2001:db8::3".parse().unwrap();
        assert_eq!(
            Icmpv6Message::decode(&v, s, other).unwrap_err(),
            PacketError::BadChecksum { what: "icmpv6" }
        );
    }

    #[test]
    fn packet_too_big_mtu() {
        let (s, d) = addrs();
        let m = Icmpv6Message::packet_too_big(1480, &[0u8; 100]);
        let dec = Icmpv6Message::decode(&m.to_vec(s, d), s, d).unwrap();
        assert_eq!(dec.mtu(), Some(1480));
        assert_eq!(dec.payload.len(), 48);
        assert_eq!(dec.echo_ident(), None);
    }

    #[test]
    fn time_exceeded_fields() {
        let m = Icmpv6Message::time_exceeded(&[7u8; 10]);
        assert_eq!(m.msg_type, Icmpv6Type::TimeExceeded);
        assert_eq!(m.code, 0);
        assert_eq!(m.payload, vec![7u8; 10]);
        assert_eq!(m.mtu(), None);
    }

    #[test]
    fn corruption_detected() {
        let (s, d) = addrs();
        let mut v = Icmpv6Message::echo_reply(1, 2, b"z".to_vec()).to_vec(s, d);
        v[8] ^= 0xff;
        assert!(Icmpv6Message::decode(&v, s, d).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let (s, d) = addrs();
        assert!(matches!(
            Icmpv6Message::decode(&[128, 0], s, d).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    #[test]
    fn type_numbers_roundtrip() {
        for t in [
            Icmpv6Type::DestUnreachable,
            Icmpv6Type::PacketTooBig,
            Icmpv6Type::TimeExceeded,
            Icmpv6Type::EchoRequest,
            Icmpv6Type::EchoReply,
        ] {
            assert_eq!(Icmpv6Type::from_number(t.number()), Some(t));
        }
        assert_eq!(Icmpv6Type::from_number(200), None);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            ident in any::<u16>(),
            seq in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..80),
            s in any::<u128>(),
            d in any::<u128>(),
        ) {
            let (s, d) = (Ipv6Addr::from(s), Ipv6Addr::from(d));
            let m = Icmpv6Message::echo_request(ident, seq, payload);
            let dec = Icmpv6Message::decode(&m.to_vec(s, d), s, d).unwrap();
            prop_assert_eq!(m, dec);
        }
    }
}
