//! IPv6 header (RFC 8200) encode/decode.

use crate::error::PacketError;
use crate::Result;
use bytes::{Buf, BufMut};
use std::net::Ipv6Addr;

/// Next-header number: ICMPv6.
pub const IPPROTO_ICMPV6: u8 = 58;

/// Fixed IPv6 header length in bytes.
pub const IPV6_HEADER_LEN: usize = 40;

/// An IPv6 fixed header. Extension headers other than what the simulator
/// emits are not modeled; `next_header` carries the payload protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Header {
    /// Traffic class byte.
    pub traffic_class: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
    /// Payload length in bytes (excludes this header).
    pub payload_len: u16,
    /// Payload protocol (e.g. TCP=6, UDP=17, ICMPv6=58).
    pub next_header: u8,
    /// Hop limit; decremented per hop by the simulated forwarding plane.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
}

impl Ipv6Header {
    /// Convenience constructor with hop limit 64 and zero flow label.
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, payload_len: u16) -> Self {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len,
            next_header,
            hop_limit: 64,
            src,
            dst,
        }
    }

    /// Serializes the header into `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let word0: u32 =
            (6u32 << 28) | ((self.traffic_class as u32) << 20) | (self.flow_label & 0x000f_ffff);
        buf.put_u32(word0);
        buf.put_u16(self.payload_len);
        buf.put_u8(self.next_header);
        buf.put_u8(self.hop_limit);
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
    }

    /// Serializes to a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        ipv6web_obs::inc("packet.v6_headers_encoded");
        let mut v = Vec::with_capacity(IPV6_HEADER_LEN);
        self.encode(&mut v);
        v
    }

    /// Decodes a header from the front of `buf` and advances past it.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        if buf.remaining() < IPV6_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "ipv6 header",
                needed: IPV6_HEADER_LEN,
                got: buf.remaining(),
            });
        }
        let word0 = buf.get_u32();
        let version = (word0 >> 28) as u8;
        if version != 6 {
            return Err(PacketError::BadVersion { expected: 6, got: version });
        }
        let payload_len = buf.get_u16();
        let next_header = buf.get_u8();
        let hop_limit = buf.get_u8();
        let mut src = [0u8; 16];
        buf.copy_to_slice(&mut src);
        let mut dst = [0u8; 16];
        buf.copy_to_slice(&mut dst);
        Ok(Ipv6Header {
            traffic_class: ((word0 >> 20) & 0xff) as u8,
            flow_label: word0 & 0x000f_ffff,
            payload_len,
            next_header,
            hop_limit,
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Ipv6Header {
        Ipv6Header::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8:ff::2".parse().unwrap(),
            crate::ipv4::IPPROTO_TCP,
            256,
        )
    }

    #[test]
    fn encode_layout() {
        let v = sample().to_vec();
        assert_eq!(v.len(), IPV6_HEADER_LEN);
        assert_eq!(v[0] >> 4, 6, "version nibble");
        assert_eq!(u16::from_be_bytes([v[4], v[5]]), 256);
        assert_eq!(v[6], 6, "next header TCP");
        assert_eq!(v[7], 64, "hop limit");
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let d = Ipv6Header::decode(&mut &h.to_vec()[..]).unwrap();
        assert_eq!(h, d);
    }

    #[test]
    fn traffic_class_and_flow_label_packing() {
        let mut h = sample();
        h.traffic_class = 0xab;
        h.flow_label = 0xf_1234;
        let v = h.to_vec();
        let d = Ipv6Header::decode(&mut &v[..]).unwrap();
        assert_eq!(d.traffic_class, 0xab);
        assert_eq!(d.flow_label, 0xf_1234);
    }

    #[test]
    fn flow_label_truncated_to_20_bits() {
        let mut h = sample();
        h.flow_label = 0xfff_ffff; // 28 bits
        let d = Ipv6Header::decode(&mut &h.to_vec()[..]).unwrap();
        assert_eq!(d.flow_label, 0xf_ffff);
    }

    #[test]
    fn rejects_truncated() {
        let v = sample().to_vec();
        assert!(matches!(
            Ipv6Header::decode(&mut &v[..30]).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut v = sample().to_vec();
        v[0] = 0x45;
        assert_eq!(
            Ipv6Header::decode(&mut &v[..]).unwrap_err(),
            PacketError::BadVersion { expected: 6, got: 4 }
        );
    }

    #[test]
    fn decode_consumes_exactly_header() {
        let mut v = sample().to_vec();
        v.extend_from_slice(&[9; 5]);
        let mut cursor = &v[..];
        Ipv6Header::decode(&mut cursor).unwrap();
        assert_eq!(cursor.len(), 5);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            src in any::<u128>(),
            dst in any::<u128>(),
            nh in any::<u8>(),
            hl in any::<u8>(),
            plen in any::<u16>(),
            tc in any::<u8>(),
            fl in 0u32..(1 << 20),
        ) {
            let h = Ipv6Header {
                traffic_class: tc,
                flow_label: fl,
                payload_len: plen,
                next_header: nh,
                hop_limit: hl,
                src: Ipv6Addr::from(src),
                dst: Ipv6Addr::from(dst),
            };
            let d = Ipv6Header::decode(&mut &h.to_vec()[..]).unwrap();
            prop_assert_eq!(h, d);
        }
    }
}
