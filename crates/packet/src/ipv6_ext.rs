//! IPv6 extension headers (RFC 8200 §4): encode, decode, and chain walking.
//!
//! The simulator's own traffic never needs extension headers, but a
//! believable IPv6 stack must parse packets that carry them — 2011-era
//! IPv6 debugging was full of hop-by-hop and fragment headers confusing
//! middleboxes. Supported here: Hop-by-Hop Options (0), Destination
//! Options (60), Routing (43, opaque), and Fragment (44), plus a chain
//! walker that finds the upper-layer protocol and payload offset.

use crate::error::PacketError;
use crate::Result;
use bytes::BufMut;

/// Next-header numbers for the supported extension headers.
pub mod next_header {
    /// Hop-by-Hop Options.
    pub const HOP_BY_HOP: u8 = 0;
    /// Routing header.
    pub const ROUTING: u8 = 43;
    /// Fragment header.
    pub const FRAGMENT: u8 = 44;
    /// Destination Options.
    pub const DEST_OPTS: u8 = 60;
    /// No next header (RFC 8200 §4.7).
    pub const NO_NEXT: u8 = 59;
}

/// Returns true if `nh` is an extension header this module can walk.
pub fn is_extension(nh: u8) -> bool {
    matches!(
        nh,
        next_header::HOP_BY_HOP
            | next_header::ROUTING
            | next_header::FRAGMENT
            | next_header::DEST_OPTS
    )
}

/// A generic options-style extension header (Hop-by-Hop / Destination
/// Options / Routing carried opaquely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtHeader {
    /// This header's type (one of [`next_header`]).
    pub header_type: u8,
    /// The next header in the chain.
    pub next: u8,
    /// Option bytes (padded to make the whole header a multiple of 8).
    pub data: Vec<u8>,
}

impl ExtHeader {
    /// Builds a Hop-by-Hop header carrying PadN-only options (the honest
    /// filler real stacks emit when they need alignment).
    pub fn hop_by_hop_padded(next: u8, pad_len: usize) -> Self {
        ExtHeader { header_type: next_header::HOP_BY_HOP, next, data: vec![0u8; pad_len] }
    }

    /// Serializes: `next`, `hdr ext len` (in 8-octet units, not counting
    /// the first), then data padded to the 8-octet boundary.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let body_len = 2 + self.data.len();
        let padded = body_len.div_ceil(8) * 8;
        let ext_len = (padded / 8 - 1) as u8;
        buf.put_u8(self.next);
        buf.put_u8(ext_len);
        buf.put_slice(&self.data);
        for _ in 0..(padded - body_len) {
            buf.put_u8(0);
        }
    }

    /// Serializes to a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = Vec::new();
        self.encode(&mut v);
        v
    }
}

/// A Fragment header (RFC 8200 §4.5) — fixed 8 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentHeader {
    /// Next header.
    pub next: u8,
    /// Fragment offset in 8-octet units.
    pub offset: u16,
    /// More-fragments flag.
    pub more: bool,
    /// Identification.
    pub ident: u32,
}

impl FragmentHeader {
    /// Serializes the 8-byte fragment header.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.next);
        buf.put_u8(0); // reserved
        buf.put_u16((self.offset << 3) | u16::from(self.more));
        buf.put_u32(self.ident);
    }

    /// Serializes to a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(8);
        self.encode(&mut v);
        v
    }

    /// Decodes from exactly 8 bytes.
    pub fn decode(data: &[u8]) -> Result<Self> {
        if data.len() < 8 {
            return Err(PacketError::Truncated {
                what: "ipv6 fragment header",
                needed: 8,
                got: data.len(),
            });
        }
        let off_flags = u16::from_be_bytes([data[2], data[3]]);
        Ok(FragmentHeader {
            next: data[0],
            offset: off_flags >> 3,
            more: off_flags & 1 != 0,
            ident: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
        })
    }
}

/// Result of walking an extension-header chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainWalk {
    /// The upper-layer protocol the chain terminates in (e.g. TCP=6), or
    /// [`next_header::NO_NEXT`].
    pub upper_protocol: u8,
    /// Byte offset of the upper-layer payload from the start of the
    /// extension area.
    pub payload_offset: usize,
    /// Extension header types encountered, in order.
    pub headers: Vec<u8>,
}

/// Walks the chain starting at `first_next_header` over `data` (the bytes
/// immediately following the fixed IPv6 header).
pub fn walk_chain(first_next_header: u8, data: &[u8]) -> Result<ChainWalk> {
    let mut nh = first_next_header;
    let mut off = 0usize;
    let mut headers = Vec::new();
    let mut hops = 0;
    while is_extension(nh) {
        hops += 1;
        if hops > 16 {
            return Err(PacketError::BadField { what: "ipv6 extension chain too long" });
        }
        headers.push(nh);
        if nh == next_header::FRAGMENT {
            let fh = FragmentHeader::decode(&data[off.min(data.len())..])?;
            nh = fh.next;
            off += 8;
        } else {
            if data.len() < off + 2 {
                return Err(PacketError::Truncated {
                    what: "ipv6 extension header",
                    needed: off + 2,
                    got: data.len(),
                });
            }
            let ext_len = data[off + 1] as usize;
            let total = (ext_len + 1) * 8;
            if data.len() < off + total {
                return Err(PacketError::Truncated {
                    what: "ipv6 extension header body",
                    needed: off + total,
                    got: data.len(),
                });
            }
            nh = data[off];
            off += total;
        }
    }
    Ok(ChainWalk { upper_protocol: nh, payload_offset: off, headers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::IPPROTO_TCP;
    use proptest::prelude::*;

    #[test]
    fn single_hop_by_hop_walks_to_tcp() {
        let h = ExtHeader::hop_by_hop_padded(IPPROTO_TCP, 4);
        let mut wire = h.to_vec();
        assert_eq!(wire.len() % 8, 0, "8-octet aligned");
        wire.extend_from_slice(b"PAYLOAD");
        let walk = walk_chain(next_header::HOP_BY_HOP, &wire).unwrap();
        assert_eq!(walk.upper_protocol, IPPROTO_TCP);
        assert_eq!(walk.headers, vec![next_header::HOP_BY_HOP]);
        assert_eq!(&wire[walk.payload_offset..], b"PAYLOAD");
    }

    #[test]
    fn chained_headers_walk_in_order() {
        // hop-by-hop -> dest-opts -> fragment -> TCP
        let frag = FragmentHeader { next: IPPROTO_TCP, offset: 0, more: true, ident: 0xabcd_1234 };
        let dest = ExtHeader {
            header_type: next_header::DEST_OPTS,
            next: next_header::FRAGMENT,
            data: vec![0; 10],
        };
        let hbh = ExtHeader::hop_by_hop_padded(next_header::DEST_OPTS, 0);
        let mut wire = hbh.to_vec();
        wire.extend(dest.to_vec());
        wire.extend(frag.to_vec());
        wire.extend_from_slice(b"X");
        let walk = walk_chain(next_header::HOP_BY_HOP, &wire).unwrap();
        assert_eq!(
            walk.headers,
            vec![next_header::HOP_BY_HOP, next_header::DEST_OPTS, next_header::FRAGMENT]
        );
        assert_eq!(walk.upper_protocol, IPPROTO_TCP);
        assert_eq!(&wire[walk.payload_offset..], b"X");
    }

    #[test]
    fn fragment_header_roundtrips() {
        let f = FragmentHeader { next: 17, offset: 185, more: true, ident: 99 };
        let d = FragmentHeader::decode(&f.to_vec()).unwrap();
        assert_eq!(f, d);
        let f2 = FragmentHeader { next: 6, offset: 0, more: false, ident: 1 };
        assert_eq!(FragmentHeader::decode(&f2.to_vec()).unwrap(), f2);
    }

    #[test]
    fn no_extensions_is_a_trivial_walk() {
        let walk = walk_chain(IPPROTO_TCP, b"payload").unwrap();
        assert_eq!(walk.upper_protocol, IPPROTO_TCP);
        assert_eq!(walk.payload_offset, 0);
        assert!(walk.headers.is_empty());
    }

    #[test]
    fn truncated_chain_rejected() {
        let h = ExtHeader::hop_by_hop_padded(IPPROTO_TCP, 20);
        let wire = h.to_vec();
        assert!(matches!(
            walk_chain(next_header::HOP_BY_HOP, &wire[..3]).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    #[test]
    fn self_referential_chain_bounded() {
        // a malicious hop-by-hop that points back at hop-by-hop forever
        let mut wire = Vec::new();
        for _ in 0..20 {
            ExtHeader::hop_by_hop_padded(next_header::HOP_BY_HOP, 0).encode(&mut wire);
        }
        assert_eq!(
            walk_chain(next_header::HOP_BY_HOP, &wire).unwrap_err(),
            PacketError::BadField { what: "ipv6 extension chain too long" }
        );
    }

    #[test]
    fn no_next_header_terminates() {
        let h = ExtHeader::hop_by_hop_padded(next_header::NO_NEXT, 0);
        let walk = walk_chain(next_header::HOP_BY_HOP, &h.to_vec()).unwrap();
        assert_eq!(walk.upper_protocol, next_header::NO_NEXT);
    }

    proptest! {
        #[test]
        fn fragment_roundtrip_arbitrary(
            next in any::<u8>(),
            offset in 0u16..(1 << 13),
            more in any::<bool>(),
            ident in any::<u32>(),
        ) {
            let f = FragmentHeader { next, offset, more, ident };
            prop_assert_eq!(FragmentHeader::decode(&f.to_vec()).unwrap(), f);
        }

        #[test]
        fn padded_headers_always_aligned(pad in 0usize..64, next in any::<u8>()) {
            let wire = ExtHeader::hop_by_hop_padded(next, pad).to_vec();
            prop_assert_eq!(wire.len() % 8, 0);
            prop_assert!(wire.len() >= pad + 2);
        }
    }
}
