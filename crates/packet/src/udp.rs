//! UDP header (RFC 768) with pseudo-header checksums for both families.

use crate::checksum::{pseudo_v4, pseudo_v6};
use crate::error::PacketError;
use crate::ipv4::IPPROTO_UDP;
use crate::Result;
use bytes::BufMut;
use std::net::{Ipv4Addr, Ipv6Addr};

/// UDP header length in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header plus the address family context needed for its checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + payload.
    pub length: u16,
}

impl UdpHeader {
    /// Builds a header for a payload of `payload_len` bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: u16) -> Self {
        UdpHeader { src_port, dst_port, length: UDP_HEADER_LEN as u16 + payload_len }
    }

    fn raw(&self, payload: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(UDP_HEADER_LEN + payload.len());
        v.put_u16(self.src_port);
        v.put_u16(self.dst_port);
        v.put_u16(self.length);
        v.put_u16(0);
        v.put_slice(payload);
        v
    }

    /// Serializes header + payload with the IPv4 pseudo-header checksum.
    pub fn to_vec_v4(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let mut v = self.raw(payload);
        let mut c = pseudo_v4(src, dst, IPPROTO_UDP, v.len() as u16);
        c.add_bytes(&v);
        let ck = match c.finish() {
            0 => 0xffff, // RFC 768: transmitted zero means "no checksum"
            x => x,
        };
        v[6..8].copy_from_slice(&ck.to_be_bytes());
        v
    }

    /// Serializes header + payload with the IPv6 pseudo-header checksum
    /// (mandatory in IPv6, RFC 8200 §8.1).
    pub fn to_vec_v6(&self, src: Ipv6Addr, dst: Ipv6Addr, payload: &[u8]) -> Vec<u8> {
        let mut v = self.raw(payload);
        let mut c = pseudo_v6(src, dst, IPPROTO_UDP, v.len() as u32);
        c.add_bytes(&v);
        let ck = match c.finish() {
            0 => 0xffff,
            x => x,
        };
        v[6..8].copy_from_slice(&ck.to_be_bytes());
        v
    }

    fn decode_common(data: &[u8]) -> Result<(Self, &[u8])> {
        if data.len() < UDP_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "udp header",
                needed: UDP_HEADER_LEN,
                got: data.len(),
            });
        }
        let length = u16::from_be_bytes([data[4], data[5]]);
        if (length as usize) < UDP_HEADER_LEN || length as usize > data.len() {
            return Err(PacketError::BadLength { what: "udp length", value: length as usize });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                length,
            },
            &data[UDP_HEADER_LEN..length as usize],
        ))
    }

    /// Decodes and verifies a datagram carried over IPv4. Returns the header
    /// and a slice of the payload.
    pub fn decode_v4(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<(Self, &[u8])> {
        let (hdr, payload) = Self::decode_common(data)?;
        let stored = u16::from_be_bytes([data[6], data[7]]);
        if stored != 0 {
            let mut c = pseudo_v4(src, dst, IPPROTO_UDP, hdr.length);
            c.add_bytes(&data[..hdr.length as usize]);
            if c.finish() != 0 {
                return Err(PacketError::BadChecksum { what: "udp/v4" });
            }
        }
        Ok((hdr, payload))
    }

    /// Decodes and verifies a datagram carried over IPv6. A zero checksum is
    /// illegal in IPv6.
    pub fn decode_v6(data: &[u8], src: Ipv6Addr, dst: Ipv6Addr) -> Result<(Self, &[u8])> {
        let (hdr, payload) = Self::decode_common(data)?;
        let stored = u16::from_be_bytes([data[6], data[7]]);
        if stored == 0 {
            return Err(PacketError::BadField { what: "udp/v6 zero checksum" });
        }
        let mut c = pseudo_v6(src, dst, IPPROTO_UDP, hdr.length as u32);
        c.add_bytes(&data[..hdr.length as usize]);
        if c.finish() != 0 {
            return Err(PacketError::BadChecksum { what: "udp/v6" });
        }
        Ok((hdr, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v4addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    fn v6addrs() -> (Ipv6Addr, Ipv6Addr) {
        ("fd00::1".parse().unwrap(), "fd00::2".parse().unwrap())
    }

    #[test]
    fn v4_roundtrip() {
        let (s, d) = v4addrs();
        let h = UdpHeader::new(5353, 53, 4);
        let wire = h.to_vec_v4(s, d, b"quer");
        let (dh, payload) = UdpHeader::decode_v4(&wire, s, d).unwrap();
        assert_eq!(dh, h);
        assert_eq!(payload, b"quer");
    }

    #[test]
    fn v6_roundtrip() {
        let (s, d) = v6addrs();
        let h = UdpHeader::new(1024, 53, 5);
        let wire = h.to_vec_v6(s, d, b"query");
        let (dh, payload) = UdpHeader::decode_v6(&wire, s, d).unwrap();
        assert_eq!(dh, h);
        assert_eq!(payload, b"query");
    }

    #[test]
    fn v4_corruption_detected() {
        let (s, d) = v4addrs();
        let mut wire = UdpHeader::new(1, 2, 3).to_vec_v4(s, d, b"abc");
        wire[9] ^= 0x01;
        assert_eq!(
            UdpHeader::decode_v4(&wire, s, d).unwrap_err(),
            PacketError::BadChecksum { what: "udp/v4" }
        );
    }

    #[test]
    fn v4_zero_checksum_accepted() {
        // RFC 768 allows checksum 0 = not computed, IPv4 only.
        let (s, d) = v4addrs();
        let h = UdpHeader::new(1, 2, 2);
        let mut wire = h.raw(b"ok");
        wire[6] = 0;
        wire[7] = 0;
        let (dh, payload) = UdpHeader::decode_v4(&wire, s, d).unwrap();
        assert_eq!(dh, h);
        assert_eq!(payload, b"ok");
    }

    #[test]
    fn v6_zero_checksum_rejected() {
        let (s, d) = v6addrs();
        let mut wire = UdpHeader::new(1, 2, 2).raw(b"ok");
        wire[6] = 0;
        wire[7] = 0;
        assert_eq!(
            UdpHeader::decode_v6(&wire, s, d).unwrap_err(),
            PacketError::BadField { what: "udp/v6 zero checksum" }
        );
    }

    #[test]
    fn bad_length_field_rejected() {
        let (s, d) = v4addrs();
        let mut wire = UdpHeader::new(1, 2, 3).to_vec_v4(s, d, b"abc");
        wire[4] = 0xff; // absurd length
        wire[5] = 0xff;
        assert!(matches!(
            UdpHeader::decode_v4(&wire, s, d).unwrap_err(),
            PacketError::BadLength { .. }
        ));
    }

    #[test]
    fn length_shorter_than_header_rejected() {
        let (s, d) = v4addrs();
        let mut wire = UdpHeader::new(1, 2, 0).to_vec_v4(s, d, b"");
        wire[4] = 0;
        wire[5] = 4; // < 8
        assert!(matches!(
            UdpHeader::decode_v4(&wire, s, d).unwrap_err(),
            PacketError::BadLength { .. }
        ));
    }

    #[test]
    fn truncated_rejected() {
        let (s, d) = v4addrs();
        assert!(matches!(
            UdpHeader::decode_v4(&[1, 2, 3], s, d).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    #[test]
    fn trailing_bytes_beyond_length_ignored() {
        let (s, d) = v4addrs();
        let mut wire = UdpHeader::new(7, 8, 2).to_vec_v4(s, d, b"hi");
        wire.extend_from_slice(&[0xde, 0xad]); // IP padding
        let (_, payload) = UdpHeader::decode_v4(&wire, s, d).unwrap();
        assert_eq!(payload, b"hi");
    }

    proptest! {
        #[test]
        fn v4_roundtrip_arbitrary(
            sp in any::<u16>(), dp in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..200),
            sa in any::<u32>(), da in any::<u32>(),
        ) {
            let (s, d) = (Ipv4Addr::from(sa), Ipv4Addr::from(da));
            let h = UdpHeader::new(sp, dp, payload.len() as u16);
            let wire = h.to_vec_v4(s, d, &payload);
            let (dh, pl) = UdpHeader::decode_v4(&wire, s, d).unwrap();
            prop_assert_eq!(dh, h);
            prop_assert_eq!(pl, &payload[..]);
        }

        #[test]
        fn v6_roundtrip_arbitrary(
            sp in any::<u16>(), dp in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..200),
            sa in any::<u128>(), da in any::<u128>(),
        ) {
            let (s, d) = (Ipv6Addr::from(sa), Ipv6Addr::from(da));
            let h = UdpHeader::new(sp, dp, payload.len() as u16);
            let wire = h.to_vec_v6(s, d, &payload);
            let (dh, pl) = UdpHeader::decode_v6(&wire, s, d).unwrap();
            prop_assert_eq!(dh, h);
            prop_assert_eq!(pl, &payload[..]);
        }
    }
}
