//! The Internet checksum (RFC 1071) and transport pseudo-header sums.

use std::net::{Ipv4Addr, Ipv6Addr};

/// One's-complement accumulator for the Internet checksum.
///
/// Feed bytes (and pseudo-header words) in any 16-bit-aligned order; the
/// checksum is order-independent across 16-bit words.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Checksum { sum: 0 }
    }

    /// Adds a byte slice. An odd trailing byte is padded with zero, per RFC.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.add_u16(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.add_u16(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Adds one 16-bit word.
    pub fn add_u16(&mut self, w: u16) {
        self.sum += w as u32;
    }

    /// Adds one 32-bit word as two 16-bit halves.
    pub fn add_u32(&mut self, w: u32) {
        self.add_u16((w >> 16) as u16);
        self.add_u16((w & 0xffff) as u16);
    }

    /// Finalizes: folds carries and complements.
    pub fn finish(self) -> u16 {
        let mut s = self.sum;
        while s >> 16 != 0 {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// Computes the RFC 1071 checksum of `data` directly.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verifies a buffer whose checksum field is already filled in: the sum over
/// the whole buffer (including the stored checksum) must be zero.
pub fn verify(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

/// Pseudo-header contribution for IPv4 transports (RFC 768/793).
pub fn pseudo_v4(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, len: u16) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u16(proto as u16);
    c.add_u16(len);
    c
}

/// Pseudo-header contribution for IPv6 transports (RFC 8200 §8.1).
pub fn pseudo_v6(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, len: u32) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u32(len);
    c.add_u32(next_header as u32);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rfc1071_worked_example() {
        // RFC 1071 section 3 example data: 00 01 f2 03 f4 f5 f6 f7
        // sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2 -> !0xddf2 = 0x220d
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_zero() {
        // 0x0102 + 0x0300 = 0x0402 -> !0x0402 = 0xfbfd
        assert_eq!(internet_checksum(&[1, 2, 3]), 0xfbfd);
    }

    #[test]
    fn empty_checksum_is_ffff() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn filled_buffer_verifies() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0];
        data.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        // corrupt a byte -> fails
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_v4_matches_manual() {
        let c = pseudo_v4(Ipv4Addr::new(192, 0, 2, 1), Ipv4Addr::new(198, 51, 100, 2), 17, 8);
        let mut manual = Checksum::new();
        manual.add_bytes(&[192, 0, 2, 1, 198, 51, 100, 2, 0, 17, 0, 8]);
        assert_eq!(c.finish(), manual.finish());
    }

    #[test]
    fn pseudo_v6_known_udp_case() {
        // UDP over IPv6 with zero payload bytes and src=dst=::1 must verify
        // once the checksum field is installed.
        let src: Ipv6Addr = "::1".parse().unwrap();
        let dst: Ipv6Addr = "::1".parse().unwrap();
        let mut c = pseudo_v6(src, dst, 17, 8);
        // UDP header with zero checksum: sport 53, dport 1024, len 8, ck 0
        let hdr = [0u8, 53, 4, 0, 0, 8, 0, 0];
        c.add_bytes(&hdr);
        let ck = c.finish();
        let mut full = pseudo_v6(src, dst, 17, 8);
        let mut hdr2 = hdr;
        hdr2[6..8].copy_from_slice(&ck.to_be_bytes());
        full.add_bytes(&hdr2);
        assert_eq!(full.finish(), 0);
    }

    proptest! {
        #[test]
        fn install_then_verify_roundtrips(mut data in proptest::collection::vec(any::<u8>(), 2..200)) {
            // zero a 16-bit "checksum field" at offset 0, install, verify
            data[0] = 0;
            data[1] = 0;
            let ck = internet_checksum(&data);
            data[0..2].copy_from_slice(&ck.to_be_bytes());
            prop_assert!(verify(&data));
        }

        #[test]
        fn word_order_independent(words in proptest::collection::vec(any::<u16>(), 1..50)) {
            let mut a = Checksum::new();
            for &w in &words {
                a.add_u16(w);
            }
            let mut rev = Checksum::new();
            for &w in words.iter().rev() {
                rev.add_u16(w);
            }
            prop_assert_eq!(a.finish(), rev.finish());
        }
    }
}
