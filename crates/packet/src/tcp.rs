//! TCP header (RFC 793) encode/decode with pseudo-header checksums.
//!
//! The simulator's HTTP transactions are flow-level, but connection setup
//! and the MSS exchanged in SYN options feed the download-time model, so the
//! header format (including the MSS option) is implemented for real.

use crate::checksum::{pseudo_v4, pseudo_v6, Checksum};
use crate::error::PacketError;
use crate::ipv4::IPPROTO_TCP;
use crate::Result;
use bytes::BufMut;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Minimum TCP header length (no options).
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits.
pub mod flags {
    /// FIN.
    pub const FIN: u8 = 0x01;
    /// SYN.
    pub const SYN: u8 = 0x02;
    /// RST.
    pub const RST: u8 = 0x04;
    /// PSH.
    pub const PSH: u8 = 0x08;
    /// ACK.
    pub const ACK: u8 = 0x10;
}

/// A TCP header. Only the MSS option (kind 2) is modeled; other options are
/// preserved opaquely on decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits (see [`flags`]).
    pub flags: u8,
    /// Receive window.
    pub window: u16,
    /// Urgent pointer (unused by the simulator, carried for fidelity).
    pub urgent: u16,
    /// Maximum segment size option on SYN segments.
    pub mss: Option<u16>,
}

impl TcpHeader {
    /// Builds a SYN advertising `mss`.
    pub fn syn(src_port: u16, dst_port: u16, seq: u32, mss: u16) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: flags::SYN,
            window: 65535,
            urgent: 0,
            mss: Some(mss),
        }
    }

    /// Builds a plain ACK.
    pub fn ack(src_port: u16, dst_port: u16, seq: u32, ack: u32) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags: flags::ACK,
            window: 65535,
            urgent: 0,
            mss: None,
        }
    }

    /// Header length in bytes including options (padded to 4).
    pub fn header_len(&self) -> usize {
        TCP_HEADER_LEN + if self.mss.is_some() { 4 } else { 0 }
    }

    fn raw(&self, payload: &[u8]) -> Vec<u8> {
        let hlen = self.header_len();
        let mut v = Vec::with_capacity(hlen + payload.len());
        v.put_u16(self.src_port);
        v.put_u16(self.dst_port);
        v.put_u32(self.seq);
        v.put_u32(self.ack);
        let data_offset_words = (hlen / 4) as u8;
        v.put_u8(data_offset_words << 4);
        v.put_u8(self.flags);
        v.put_u16(self.window);
        v.put_u16(0); // checksum placeholder
        v.put_u16(self.urgent);
        if let Some(mss) = self.mss {
            v.put_u8(2); // kind: MSS
            v.put_u8(4); // length
            v.put_u16(mss);
        }
        v.put_slice(payload);
        v
    }

    fn install_checksum(mut v: Vec<u8>, mut c: Checksum) -> Vec<u8> {
        c.add_bytes(&v);
        let ck = c.finish();
        v[16..18].copy_from_slice(&ck.to_be_bytes());
        v
    }

    /// Serializes segment (header + payload) for IPv4 transport.
    pub fn to_vec_v4(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let v = self.raw(payload);
        let c = pseudo_v4(src, dst, IPPROTO_TCP, v.len() as u16);
        Self::install_checksum(v, c)
    }

    /// Serializes segment for IPv6 transport.
    pub fn to_vec_v6(&self, src: Ipv6Addr, dst: Ipv6Addr, payload: &[u8]) -> Vec<u8> {
        let v = self.raw(payload);
        let c = pseudo_v6(src, dst, IPPROTO_TCP, v.len() as u32);
        Self::install_checksum(v, c)
    }

    fn decode_common(data: &[u8]) -> Result<(Self, &[u8])> {
        if data.len() < TCP_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "tcp header",
                needed: TCP_HEADER_LEN,
                got: data.len(),
            });
        }
        let data_offset = ((data[12] >> 4) as usize) * 4;
        if data_offset < TCP_HEADER_LEN || data_offset > data.len() {
            return Err(PacketError::BadLength { what: "tcp data offset", value: data_offset });
        }
        // scan options for MSS
        let mut mss = None;
        let mut i = TCP_HEADER_LEN;
        while i < data_offset {
            match data[i] {
                0 => break,  // end of options
                1 => i += 1, // NOP
                kind => {
                    if i + 1 >= data_offset {
                        return Err(PacketError::BadField { what: "tcp option length" });
                    }
                    let olen = data[i + 1] as usize;
                    if olen < 2 || i + olen > data_offset {
                        return Err(PacketError::BadField { what: "tcp option length" });
                    }
                    if kind == 2 && olen == 4 {
                        mss = Some(u16::from_be_bytes([data[i + 2], data[i + 3]]));
                    }
                    i += olen;
                }
            }
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
                flags: data[13],
                window: u16::from_be_bytes([data[14], data[15]]),
                urgent: u16::from_be_bytes([data[18], data[19]]),
                mss,
            },
            &data[data_offset..],
        ))
    }

    /// Decodes and verifies a segment carried over IPv4.
    pub fn decode_v4(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<(Self, &[u8])> {
        let mut c = pseudo_v4(src, dst, IPPROTO_TCP, data.len() as u16);
        c.add_bytes(data);
        if c.finish() != 0 {
            return Err(PacketError::BadChecksum { what: "tcp/v4" });
        }
        Self::decode_common(data)
    }

    /// Decodes and verifies a segment carried over IPv6.
    pub fn decode_v6(data: &[u8], src: Ipv6Addr, dst: Ipv6Addr) -> Result<(Self, &[u8])> {
        let mut c = pseudo_v6(src, dst, IPPROTO_TCP, data.len() as u32);
        c.add_bytes(data);
        if c.finish() != 0 {
            return Err(PacketError::BadChecksum { what: "tcp/v6" });
        }
        Self::decode_common(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v4addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(198, 51, 100, 1), Ipv4Addr::new(198, 51, 100, 2))
    }

    #[test]
    fn syn_roundtrip_with_mss() {
        let (s, d) = v4addrs();
        let h = TcpHeader::syn(49152, 80, 1000, 1460);
        let wire = h.to_vec_v4(s, d, &[]);
        assert_eq!(wire.len(), 24, "20 + 4-byte MSS option");
        let (dh, payload) = TcpHeader::decode_v4(&wire, s, d).unwrap();
        assert_eq!(dh, h);
        assert!(payload.is_empty());
        assert_eq!(dh.mss, Some(1460));
        assert_eq!(dh.flags & flags::SYN, flags::SYN);
    }

    #[test]
    fn ack_roundtrip_with_payload() {
        let (s, d) = v4addrs();
        let mut h = TcpHeader::ack(80, 49152, 5000, 1001);
        h.flags |= flags::PSH;
        let wire = h.to_vec_v4(s, d, b"HTTP/1.1 200 OK\r\n");
        let (dh, payload) = TcpHeader::decode_v4(&wire, s, d).unwrap();
        assert_eq!(dh, h);
        assert_eq!(payload, b"HTTP/1.1 200 OK\r\n");
        assert_eq!(dh.mss, None);
    }

    #[test]
    fn v6_roundtrip() {
        let s: Ipv6Addr = "2001:db8::a".parse().unwrap();
        let d: Ipv6Addr = "2001:db8::b".parse().unwrap();
        let h = TcpHeader::syn(1234, 80, 77, 1440);
        let wire = h.to_vec_v6(s, d, b"x");
        let (dh, payload) = TcpHeader::decode_v6(&wire, s, d).unwrap();
        assert_eq!(dh, h);
        assert_eq!(payload, b"x");
    }

    #[test]
    fn corruption_detected() {
        let (s, d) = v4addrs();
        let mut wire = TcpHeader::syn(1, 2, 3, 1460).to_vec_v4(s, d, &[]);
        wire[5] ^= 0x40;
        assert_eq!(
            TcpHeader::decode_v4(&wire, s, d).unwrap_err(),
            PacketError::BadChecksum { what: "tcp/v4" }
        );
    }

    #[test]
    fn nop_options_skipped() {
        // hand-craft: header with data offset 6 (24 bytes), options NOP NOP MSS
        let (s, d) = v4addrs();
        let h = TcpHeader::syn(9, 10, 0, 536);
        let mut wire = h.to_vec_v4(s, d, &[]);
        // rewrite options as NOP,NOP,... then fix: easier to rebuild manually
        // options: NOP(1) NOP(1) then 2-byte no-op "kind 8 len 2"? use padding style:
        // Instead verify decode handles NOPs: craft 28-byte header: NOP NOP MSS(4) + pad
        let mut v = wire[..20].to_vec();
        v[12] = (7u8) << 4; // 28 bytes
        v.extend_from_slice(&[1, 1, 2, 4, 2, 24, 0, 0]); // NOP NOP MSS=536 EOL pad
                                                         // re-checksum
        v[16] = 0;
        v[17] = 0;
        let mut c = pseudo_v4(s, d, IPPROTO_TCP, v.len() as u16);
        c.add_bytes(&v);
        let ck = c.finish();
        v[16..18].copy_from_slice(&ck.to_be_bytes());
        let (dh, _) = TcpHeader::decode_v4(&v, s, d).unwrap();
        assert_eq!(dh.mss, Some(536));
        wire.clear(); // silence unused
    }

    #[test]
    fn bad_data_offset_rejected() {
        let (s, d) = v4addrs();
        let mut wire = TcpHeader::ack(1, 2, 3, 4).to_vec_v4(s, d, &[]);
        wire[12] = 3 << 4; // 12 bytes < 20
                           // fix checksum so we reach the structural check
        wire[16] = 0;
        wire[17] = 0;
        let mut c = pseudo_v4(s, d, IPPROTO_TCP, wire.len() as u16);
        c.add_bytes(&wire);
        let ck = c.finish();
        wire[16..18].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            TcpHeader::decode_v4(&wire, s, d).unwrap_err(),
            PacketError::BadLength { .. }
        ));
    }

    #[test]
    fn truncated_rejected() {
        let (s, d) = v4addrs();
        // short buffer: checksum of a few bytes almost surely nonzero -> either
        // checksum or truncation error; force structural path with zero bytes
        assert!(TcpHeader::decode_v4(&[], s, d).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            sp in any::<u16>(), dp in any::<u16>(),
            seq in any::<u32>(), ack in any::<u32>(),
            fl in any::<u8>(), win in any::<u16>(),
            mss in proptest::option::of(536u16..9000),
            payload in proptest::collection::vec(any::<u8>(), 0..100),
            sa in any::<u32>(), da in any::<u32>(),
        ) {
            let h = TcpHeader {
                src_port: sp, dst_port: dp, seq, ack,
                flags: fl, window: win, urgent: 0, mss,
            };
            let (s, d) = (Ipv4Addr::from(sa), Ipv4Addr::from(da));
            let wire = h.to_vec_v4(s, d, &payload);
            let (dh, pl) = TcpHeader::decode_v4(&wire, s, d).unwrap();
            prop_assert_eq!(dh, h);
            prop_assert_eq!(pl, &payload[..]);
        }
    }
}
