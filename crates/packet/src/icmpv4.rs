//! ICMPv4 messages (RFC 792) — the subset traceroute and ping need.

use crate::checksum::{internet_checksum, verify};
use crate::error::PacketError;
use crate::Result;
use bytes::BufMut;

/// ICMPv4 message types used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Icmpv4Type {
    /// Echo reply (type 0).
    EchoReply,
    /// Destination unreachable (type 3); code carried separately.
    DestUnreachable,
    /// Echo request (type 8).
    EchoRequest,
    /// Time exceeded (type 11) — the traceroute workhorse.
    TimeExceeded,
}

impl Icmpv4Type {
    /// Wire type number.
    pub fn number(self) -> u8 {
        match self {
            Icmpv4Type::EchoReply => 0,
            Icmpv4Type::DestUnreachable => 3,
            Icmpv4Type::EchoRequest => 8,
            Icmpv4Type::TimeExceeded => 11,
        }
    }

    /// Parses a wire type number.
    pub fn from_number(n: u8) -> Option<Self> {
        match n {
            0 => Some(Icmpv4Type::EchoReply),
            3 => Some(Icmpv4Type::DestUnreachable),
            8 => Some(Icmpv4Type::EchoRequest),
            11 => Some(Icmpv4Type::TimeExceeded),
            _ => None,
        }
    }
}

/// A decoded ICMPv4 message.
///
/// For echo messages, `rest_of_header` packs identifier (high 16) and
/// sequence (low 16). For error messages it is unused (zero) and `payload`
/// carries the invoking packet's header + 8 bytes, per RFC 792.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Icmpv4Message {
    /// Message type.
    pub msg_type: Icmpv4Type,
    /// Code (e.g. 0 = net unreachable / TTL exceeded in transit).
    pub code: u8,
    /// The 4 bytes after the checksum, semantics per type.
    pub rest_of_header: u32,
    /// Message body.
    pub payload: Vec<u8>,
}

impl Icmpv4Message {
    /// Builds an echo request with the given identifier/sequence.
    pub fn echo_request(ident: u16, seq: u16, payload: Vec<u8>) -> Self {
        Icmpv4Message {
            msg_type: Icmpv4Type::EchoRequest,
            code: 0,
            rest_of_header: ((ident as u32) << 16) | seq as u32,
            payload,
        }
    }

    /// Builds the echo reply matching a request.
    pub fn echo_reply(ident: u16, seq: u16, payload: Vec<u8>) -> Self {
        Icmpv4Message {
            msg_type: Icmpv4Type::EchoReply,
            code: 0,
            rest_of_header: ((ident as u32) << 16) | seq as u32,
            payload,
        }
    }

    /// Builds a Time Exceeded (TTL expired in transit) carrying the invoking
    /// packet excerpt, as a router on the path would.
    pub fn time_exceeded(invoking_packet: &[u8]) -> Self {
        let excerpt_len = invoking_packet.len().min(28); // IP header + 8 bytes
        Icmpv4Message {
            msg_type: Icmpv4Type::TimeExceeded,
            code: 0, // TTL exceeded in transit
            rest_of_header: 0,
            payload: invoking_packet[..excerpt_len].to_vec(),
        }
    }

    /// Echo identifier, if this is an echo message.
    pub fn echo_ident(&self) -> Option<u16> {
        matches!(self.msg_type, Icmpv4Type::EchoRequest | Icmpv4Type::EchoReply)
            .then(|| (self.rest_of_header >> 16) as u16)
    }

    /// Echo sequence number, if this is an echo message.
    pub fn echo_seq(&self) -> Option<u16> {
        matches!(self.msg_type, Icmpv4Type::EchoRequest | Icmpv4Type::EchoReply)
            .then(|| (self.rest_of_header & 0xffff) as u16)
    }

    /// Serializes with a correct checksum.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(8 + self.payload.len());
        v.put_u8(self.msg_type.number());
        v.put_u8(self.code);
        v.put_u16(0); // checksum placeholder
        v.put_u32(self.rest_of_header);
        v.put_slice(&self.payload);
        let ck = internet_checksum(&v);
        v[2..4].copy_from_slice(&ck.to_be_bytes());
        v
    }

    /// Decodes and verifies a message.
    pub fn decode(data: &[u8]) -> Result<Self> {
        if data.len() < 8 {
            return Err(PacketError::Truncated {
                what: "icmpv4 message",
                needed: 8,
                got: data.len(),
            });
        }
        if !verify(data) {
            return Err(PacketError::BadChecksum { what: "icmpv4" });
        }
        let msg_type = Icmpv4Type::from_number(data[0])
            .ok_or(PacketError::BadField { what: "icmpv4 type" })?;
        Ok(Icmpv4Message {
            msg_type,
            code: data[1],
            rest_of_header: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            payload: data[8..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn echo_roundtrip() {
        let m = Icmpv4Message::echo_request(0x1234, 7, b"probe".to_vec());
        let d = Icmpv4Message::decode(&m.to_vec()).unwrap();
        assert_eq!(m, d);
        assert_eq!(d.echo_ident(), Some(0x1234));
        assert_eq!(d.echo_seq(), Some(7));
    }

    #[test]
    fn reply_matches_request_ids() {
        let req = Icmpv4Message::echo_request(9, 3, vec![]);
        let rep = Icmpv4Message::echo_reply(9, 3, vec![]);
        assert_eq!(req.echo_ident(), rep.echo_ident());
        assert_eq!(req.echo_seq(), rep.echo_seq());
        assert_eq!(rep.msg_type, Icmpv4Type::EchoReply);
    }

    #[test]
    fn time_exceeded_carries_excerpt() {
        let invoking: Vec<u8> = (0u8..60).collect();
        let m = Icmpv4Message::time_exceeded(&invoking);
        assert_eq!(m.payload.len(), 28, "IP header + 8 bytes");
        assert_eq!(&m.payload[..], &invoking[..28]);
        assert_eq!(m.code, 0);
        assert_eq!(m.echo_ident(), None, "not an echo message");
    }

    #[test]
    fn time_exceeded_short_invoking_packet() {
        let m = Icmpv4Message::time_exceeded(&[1, 2, 3]);
        assert_eq!(m.payload, vec![1, 2, 3]);
    }

    #[test]
    fn detects_corruption() {
        let mut v = Icmpv4Message::echo_request(1, 1, b"x".to_vec()).to_vec();
        v[4] ^= 0x80;
        assert_eq!(
            Icmpv4Message::decode(&v).unwrap_err(),
            PacketError::BadChecksum { what: "icmpv4" }
        );
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            Icmpv4Message::decode(&[8, 0, 0]).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    #[test]
    fn rejects_unknown_type() {
        // build a "type 42" message with valid checksum
        let mut v = vec![42u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = internet_checksum(&v);
        v[2..4].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(
            Icmpv4Message::decode(&v).unwrap_err(),
            PacketError::BadField { what: "icmpv4 type" }
        );
    }

    #[test]
    fn type_numbers_roundtrip() {
        for t in [
            Icmpv4Type::EchoReply,
            Icmpv4Type::DestUnreachable,
            Icmpv4Type::EchoRequest,
            Icmpv4Type::TimeExceeded,
        ] {
            assert_eq!(Icmpv4Type::from_number(t.number()), Some(t));
        }
        assert_eq!(Icmpv4Type::from_number(99), None);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_echo(
            ident in any::<u16>(),
            seq in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..100),
        ) {
            let m = Icmpv4Message::echo_request(ident, seq, payload);
            let d = Icmpv4Message::decode(&m.to_vec()).unwrap();
            prop_assert_eq!(m, d);
        }
    }
}
