//! IPv4 header (RFC 791) encode/decode.

use crate::checksum::{internet_checksum, verify};
use crate::error::PacketError;
use crate::Result;
use bytes::{Buf, BufMut};
use std::net::Ipv4Addr;

/// IP protocol number: ICMP.
pub const IPPROTO_ICMP: u8 = 1;
/// IP protocol number: TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IP protocol number: UDP.
pub const IPPROTO_UDP: u8 = 17;
/// IP protocol number: IPv6 encapsulated in IPv4 (6in4, RFC 4213).
pub const IPPROTO_IPV6: u8 = 41;

/// Minimum (option-less) IPv4 header length in bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// An IPv4 header. Options are not supported (the simulator never emits
/// them; receivers skip them on decode and report the true header length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services byte.
    pub dscp_ecn: u8,
    /// Total length of header plus payload, in bytes.
    pub total_len: u16,
    /// Identification field (used by fragmentation, which we never do).
    pub identification: u16,
    /// Flags (3 bits) and fragment offset (13 bits), packed as on the wire.
    pub flags_fragment: u16,
    /// Time to live; decremented per hop by the simulated forwarding plane.
    pub ttl: u8,
    /// Payload protocol number.
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Convenience constructor with common defaults (DF set, TTL 64).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload_len: u16) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: IPV4_HEADER_LEN as u16 + payload_len,
            identification: 0,
            flags_fragment: 0x4000, // Don't Fragment
            ttl: 64,
            protocol,
            src,
            dst,
        }
    }

    /// Payload length implied by `total_len`.
    pub fn payload_len(&self) -> u16 {
        self.total_len.saturating_sub(IPV4_HEADER_LEN as u16)
    }

    /// Serializes the header (with a correct checksum) into `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let mut hdr = [0u8; IPV4_HEADER_LEN];
        hdr[0] = 0x45; // version 4, IHL 5
        hdr[1] = self.dscp_ecn;
        hdr[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        hdr[4..6].copy_from_slice(&self.identification.to_be_bytes());
        hdr[6..8].copy_from_slice(&self.flags_fragment.to_be_bytes());
        hdr[8] = self.ttl;
        hdr[9] = self.protocol;
        // 10..12 checksum, zero while summing
        hdr[12..16].copy_from_slice(&self.src.octets());
        hdr[16..20].copy_from_slice(&self.dst.octets());
        let ck = internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&ck.to_be_bytes());
        buf.put_slice(&hdr);
    }

    /// Serializes to a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        ipv6web_obs::inc("packet.v4_headers_encoded");
        let mut v = Vec::with_capacity(IPV4_HEADER_LEN);
        self.encode(&mut v);
        v
    }

    /// Decodes a header from the front of `buf`, verifying version and
    /// checksum, and advances `buf` past the header (including any options).
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        if buf.remaining() < IPV4_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "ipv4 header",
                needed: IPV4_HEADER_LEN,
                got: buf.remaining(),
            });
        }
        // Copy the fixed part without consuming yet, to know IHL.
        let mut fixed = [0u8; IPV4_HEADER_LEN];
        buf.copy_to_slice(&mut fixed);
        let version = fixed[0] >> 4;
        if version != 4 {
            return Err(PacketError::BadVersion { expected: 4, got: version });
        }
        let ihl = (fixed[0] & 0x0f) as usize * 4;
        if ihl < IPV4_HEADER_LEN {
            return Err(PacketError::BadLength { what: "ipv4 ihl", value: ihl });
        }
        let opt_len = ihl - IPV4_HEADER_LEN;
        if buf.remaining() < opt_len {
            return Err(PacketError::Truncated {
                what: "ipv4 options",
                needed: opt_len,
                got: buf.remaining(),
            });
        }
        let mut full = Vec::with_capacity(ihl);
        full.extend_from_slice(&fixed);
        for _ in 0..opt_len {
            full.push(buf.get_u8());
        }
        if !verify(&full) {
            return Err(PacketError::BadChecksum { what: "ipv4 header" });
        }
        Ok(Ipv4Header {
            dscp_ecn: fixed[1],
            total_len: u16::from_be_bytes([fixed[2], fixed[3]]),
            identification: u16::from_be_bytes([fixed[4], fixed[5]]),
            flags_fragment: u16::from_be_bytes([fixed[6], fixed[7]]),
            ttl: fixed[8],
            protocol: fixed[9],
            src: Ipv4Addr::new(fixed[12], fixed[13], fixed[14], fixed[15]),
            dst: Ipv4Addr::new(fixed[16], fixed[17], fixed[18], fixed[19]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(203, 0, 113, 9),
            IPPROTO_TCP,
            100,
        )
    }

    #[test]
    fn encode_layout() {
        let v = sample().to_vec();
        assert_eq!(v.len(), IPV4_HEADER_LEN);
        assert_eq!(v[0], 0x45);
        assert_eq!(u16::from_be_bytes([v[2], v[3]]), 120);
        assert_eq!(v[8], 64);
        assert_eq!(v[9], IPPROTO_TCP);
        assert_eq!(&v[12..16], &[192, 0, 2, 1]);
        assert_eq!(&v[16..20], &[203, 0, 113, 9]);
        assert!(crate::checksum::verify(&v), "header checksum must verify");
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let v = h.to_vec();
        let d = Ipv4Header::decode(&mut &v[..]).unwrap();
        assert_eq!(h, d);
    }

    #[test]
    fn decode_rejects_truncated() {
        let v = sample().to_vec();
        let e = Ipv4Header::decode(&mut &v[..10]).unwrap_err();
        assert!(matches!(e, PacketError::Truncated { .. }));
    }

    #[test]
    fn decode_rejects_wrong_version() {
        let mut v = sample().to_vec();
        v[0] = 0x65; // version 6
        let e = Ipv4Header::decode(&mut &v[..]).unwrap_err();
        assert_eq!(e, PacketError::BadVersion { expected: 4, got: 6 });
    }

    #[test]
    fn decode_rejects_corrupt_checksum() {
        let mut v = sample().to_vec();
        v[15] ^= 0xff;
        let e = Ipv4Header::decode(&mut &v[..]).unwrap_err();
        assert_eq!(e, PacketError::BadChecksum { what: "ipv4 header" });
    }

    #[test]
    fn decode_rejects_bad_ihl() {
        let mut v = sample().to_vec();
        v[0] = 0x44; // IHL 4 -> 16 bytes < 20
        let e = Ipv4Header::decode(&mut &v[..]).unwrap_err();
        assert!(matches!(e, PacketError::BadLength { .. }));
    }

    #[test]
    fn decode_skips_options() {
        // Hand-build a header with IHL 6 (4 bytes of NOP options).
        let mut v = sample().to_vec();
        v[0] = 0x46;
        v.splice(20..20, [1u8, 1, 1, 1]); // NOPs after fixed header
                                          // fix checksum
        v[10] = 0;
        v[11] = 0;
        let ck = internet_checksum(&v[..24]);
        v[10..12].copy_from_slice(&ck.to_be_bytes());
        v.extend_from_slice(&[0xde, 0xad]); // payload
        let mut cursor = &v[..];
        let h = Ipv4Header::decode(&mut cursor).unwrap();
        assert_eq!(h.protocol, IPPROTO_TCP);
        assert_eq!(cursor, &[0xde, 0xad], "cursor advanced past options");
    }

    #[test]
    fn decode_consumes_exactly_header() {
        let mut v = sample().to_vec();
        v.extend_from_slice(&[0xaa; 7]);
        let mut cursor = &v[..];
        Ipv4Header::decode(&mut cursor).unwrap();
        assert_eq!(cursor.len(), 7);
    }

    #[test]
    fn payload_len_saturates() {
        let mut h = sample();
        h.total_len = 5;
        assert_eq!(h.payload_len(), 0);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            src in any::<u32>(),
            dst in any::<u32>(),
            proto in any::<u8>(),
            ttl in any::<u8>(),
            plen in 0u16..1400,
            ident in any::<u16>(),
        ) {
            let mut h = Ipv4Header::new(Ipv4Addr::from(src), Ipv4Addr::from(dst), proto, plen);
            h.ttl = ttl;
            h.identification = ident;
            let v = h.to_vec();
            let d = Ipv4Header::decode(&mut &v[..]).unwrap();
            prop_assert_eq!(h, d);
        }

        #[test]
        fn corrupting_any_byte_is_detected(idx in 0usize..IPV4_HEADER_LEN, bit in 0u8..8) {
            let mut v = sample().to_vec();
            v[idx] ^= 1 << bit;
            // Either checksum/version/ihl failure, or (for checksum-field bits)
            // still rejected: any single-bit flip breaks the checksum.
            prop_assert!(Ipv4Header::decode(&mut &v[..]).is_err());
        }
    }
}
