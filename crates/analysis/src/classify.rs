//! Classification and the per-vantage analysis builder.

use crate::hypotheses::categorize;
use crate::sanitize::{sanitize_site_windows, SanitizeOutcome};
use crate::types::{AnalysisConfig, AsGroup, RemovedSite, SiteClass, SitePerf, VantageAnalysis};
use ipv6web_bgp::BgpTable;
use ipv6web_monitor::MonitorDb;
use ipv6web_web::Site;
use std::collections::BTreeMap;

/// Classifies one site given the vantage point's routing tables.
///
/// Returns `None` when a required route is missing (the site never
/// completed a measurement from here anyway).
pub fn classify_site(site: &Site, table_v4: &BgpTable, table_v6: &BgpTable) -> Option<SiteClass> {
    let v6 = site.v6.as_ref()?;
    if v6.dest_as != site.v4_as {
        return Some(SiteClass::Dl);
    }
    let p4 = table_v4.as_path(site.v4_as)?;
    let p6 = table_v6.as_path(v6.dest_as)?;
    Some(if p4.same_route(p6) { SiteClass::Sp } else { SiteClass::Dp })
}

/// Runs sanitization + classification + AS grouping for one vantage point,
/// producing everything the paper's tables consume.
pub fn analyze_vantage(
    cfg: &AnalysisConfig,
    sites: &[Site],
    db: &MonitorDb,
    table_v4: &BgpTable,
    table_v6: &BgpTable,
) -> VantageAnalysis {
    analyze_vantage_faulted(cfg, sites, db, table_v4, table_v6, &[])
}

/// [`analyze_vantage`] with fault attribution: transition removals whose
/// onset falls inside one of `fault_windows` (inclusive week ranges from
/// the campaign's fault plan) are flagged
/// [`RemovedSite::fault_attributed`], tying the Table 3 ↑/↓ buckets back
/// to injected disruptions. With no windows this is exactly
/// [`analyze_vantage`].
pub fn analyze_vantage_faulted(
    cfg: &AnalysisConfig,
    sites: &[Site],
    db: &MonitorDb,
    table_v4: &BgpTable,
    table_v6: &BgpTable,
    fault_windows: &[(u32, u32)],
) -> VantageAnalysis {
    let mut out = VantageAnalysis {
        vantage: db.vantage.clone(),
        sites_total: 0,
        kept: Vec::new(),
        removed: Vec::new(),
        dest_ases_v4: Default::default(),
        dest_ases_v6: Default::default(),
        crossed_v4: Default::default(),
        crossed_v6: Default::default(),
        sp_groups: BTreeMap::new(),
        dp_groups: BTreeMap::new(),
        dp_v6_paths: BTreeMap::new(),
        good_v6_paths: BTreeMap::new(),
    };

    for (site_id, rec) in db.iter() {
        // candidates: dual-stack sites that entered the performance phase
        let attempted = !rec.samples_v4.is_empty() || rec.unconfident_rounds > 0;
        if rec.dual_since.is_none() || !attempted {
            continue;
        }
        out.sites_total += 1;
        ipv6web_obs::inc("analysis.sites_considered");

        let site = &sites[site_id.index()];
        let class = classify_site(site, table_v4, table_v6);

        match sanitize_site_windows(rec, cfg.min_paired_samples, cfg.tolerance, fault_windows) {
            (SanitizeOutcome::Removed { cause, good_v6_perf }, fault_attributed) => {
                ipv6web_obs::inc("analysis.sites_removed");
                out.removed.push(RemovedSite {
                    site: site_id,
                    cause,
                    class,
                    good_v6_perf,
                    fault_attributed,
                });
            }
            (SanitizeOutcome::Kept { v4_mean, v6_mean }, _) => {
                ipv6web_obs::inc("analysis.sites_kept");
                let Some(class) = class else { continue };
                let v6_dest = site.v6.as_ref().expect("dual site").dest_as;
                let (Some(r4), Some(r6)) = (table_v4.route(site.v4_as), table_v6.route(v6_dest))
                else {
                    continue;
                };
                out.kept.push(SitePerf {
                    site: site_id,
                    class,
                    v4_mean,
                    v6_mean,
                    v4_hops: r4.hops(),
                    v6_hops: r6.hops(),
                    dest_v4: site.v4_as,
                    dest_v6: v6_dest,
                });
                out.dest_ases_v4.insert(site.v4_as);
                out.dest_ases_v6.insert(v6_dest);
                out.crossed_v4.extend(r4.as_path.crossed().iter().copied());
                out.crossed_v6.extend(r6.as_path.crossed().iter().copied());
            }
        }
    }

    // per-destination-AS grouping for SL sites
    let mut groups: BTreeMap<(SiteClass, ipv6web_topology::AsId), Vec<usize>> = BTreeMap::new();
    for (idx, perf) in out.kept.iter().enumerate() {
        if perf.class == SiteClass::Dl {
            continue;
        }
        groups.entry((perf.class, perf.dest_v6)).or_default().push(idx);
    }
    for ((class, dest), site_idx) in groups {
        let members: Vec<&SitePerf> = site_idx.iter().map(|&i| &out.kept[i]).collect();
        let (category, sites_at_zero, v4_mean, v6_mean) = categorize(&members, cfg);
        let group = AsGroup { dest, site_idx, v4_mean, v6_mean, category, sites_at_zero };
        match class {
            SiteClass::Sp => {
                if category == crate::types::AsCategory::Comparable {
                    if let Some(p) = table_v6.as_path(dest) {
                        out.good_v6_paths.insert(dest, p.ases().to_vec());
                    }
                }
                out.sp_groups.insert(dest, group);
            }
            SiteClass::Dp => {
                if let Some(p) = table_v6.as_path(dest) {
                    out.dp_v6_paths.insert(dest, p.ases().to_vec());
                }
                out.dp_groups.insert(dest, group);
            }
            SiteClass::Dl => unreachable!("DL filtered above"),
        }
    }
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::types::AsCategory;
    use ipv6web_bgp::BgpTable;
    use ipv6web_monitor::{
        run_campaign, CampaignConfig, DisturbanceConfig, Disturbances, ProbeContext, VantageKind,
        VantagePoint,
    };
    use ipv6web_netsim::TcpConfig;
    use ipv6web_stats::RelativeCiRule;
    use ipv6web_topology::{generate as gen_topo, AsId, Family, Tier, TopologyConfig};
    use ipv6web_web::{build_zone, population, PopulationConfig};

    /// End-to-end mini campaign reused by classify/hypotheses/table tests.
    pub(crate) struct Campaign {
        #[allow(dead_code)]
        pub topo: ipv6web_topology::Topology,
        pub sites: Vec<Site>,
        pub db: MonitorDb,
        pub table_v4: BgpTable,
        pub table_v6: BgpTable,
    }

    /// One shared campaign for the whole test module (expensive to run).
    pub(crate) fn shared_campaign() -> &'static Campaign {
        static CAMPAIGN: std::sync::OnceLock<Campaign> = std::sync::OnceLock::new();
        CAMPAIGN.get_or_init(|| run_mini_campaign(3))
    }

    pub(crate) fn run_mini_campaign(seed: u64) -> Campaign {
        let topo = gen_topo(&TopologyConfig::test_small(), seed);
        let mut pcfg = PopulationConfig::test_small(26);
        pcfg.n_sites = 1200;
        let (sites, names) = population::generate(&pcfg, &topo, seed);
        let zone = build_zone(&topo, &sites, names);
        let vantage_as =
            topo.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
        let mut dests: Vec<AsId> = sites.iter().map(|s| s.v4_as).collect();
        dests.extend(sites.iter().filter_map(|s| s.v6.as_ref().map(|v| v.dest_as)));
        dests.sort();
        dests.dedup();
        let table_v4 = BgpTable::build(&topo, vantage_as, Family::V4, &dests);
        let table_v6 = BgpTable::build(&topo, vantage_as, Family::V6, &dests);
        let disturbances =
            Disturbances::generate(&DisturbanceConfig::paper(), sites.len(), 26, seed);
        let list = ipv6web_alexa_list(&sites);
        let vantage = VantagePoint {
            name: "MiniVP".into(),
            location: "Lab".into(),
            as_id: vantage_as,
            start_week: 0,
            has_as_path: true,
            white_listed: false,
            kind: VantageKind::Academic,
            external_inputs: false,
            stack: ipv6web_xlat::ClientStack::DualStack,
        };
        let ctx = ProbeContext {
            topo: &topo,
            sites: &sites,
            zone: &zone,
            table_v4: &table_v4,
            table_v6: &table_v6,
            disturbances: &disturbances,
            tcp: TcpConfig::paper(),
            ci_rule: RelativeCiRule::paper(),
            identity_threshold: 0.06,
            round_noise_sigma: 0.08,
            seed,
            vantage_name: "MiniVP",
            white_listed: false,
            v6_epoch: None,
            faults: None,
            stack: ipv6web_xlat::ClientStack::DualStack,
            xlat: None,
        };
        let mut ccfg = CampaignConfig::test_small();
        ccfg.total_weeks = 26;
        ccfg.workers = 8;
        let db = run_campaign(&ctx, &vantage, &list, &[], |_| 0, &ccfg).expect("valid config");
        Campaign { topo, sites, db, table_v4, table_v6 }
    }

    fn ipv6web_alexa_list(sites: &[Site]) -> ipv6web_alexa::TopList {
        ipv6web_alexa::TopList::from_parts(
            sites.iter().map(|s| (s.id.0, s.rank, s.first_seen_week)),
        )
    }

    #[test]
    fn analysis_splits_classes_and_groups() {
        let c = shared_campaign();
        let a =
            analyze_vantage(&AnalysisConfig::paper(), &c.sites, &c.db, &c.table_v4, &c.table_v6);
        assert!(a.sites_total > 0);
        assert!(!a.kept.is_empty(), "some sites kept");
        assert!(!a.removed.is_empty(), "disturbances must remove some sites");
        let total_classified =
            a.count_of(SiteClass::Dl) + a.count_of(SiteClass::Sp) + a.count_of(SiteClass::Dp);
        assert_eq!(total_classified, a.kept.len(), "every kept site classified");
        assert_eq!(a.sites_total, a.kept.len() + a.removed.len());
        assert!(a.count_of(SiteClass::Dl) > 0, "CDN/6to4 sites exist");
        assert!(!a.sp_groups.is_empty() || !a.dp_groups.is_empty());
    }

    #[test]
    fn sp_sites_have_identical_paths_dp_differ() {
        let c = shared_campaign();
        let a =
            analyze_vantage(&AnalysisConfig::paper(), &c.sites, &c.db, &c.table_v4, &c.table_v6);
        for perf in &a.kept {
            let p4 = c.table_v4.as_path(perf.dest_v4).expect("kept => routed");
            let p6 = c.table_v6.as_path(perf.dest_v6).expect("kept => routed");
            match perf.class {
                SiteClass::Sp => {
                    assert!(p4.same_route(p6), "SP must mean identical paths");
                    assert_eq!(perf.v4_hops, perf.v6_hops);
                    assert_eq!(perf.dest_v4, perf.dest_v6);
                }
                SiteClass::Dp => {
                    assert!(!p4.same_route(p6), "DP must mean different paths");
                    assert_eq!(perf.dest_v4, perf.dest_v6, "DP is same-location");
                }
                SiteClass::Dl => {
                    assert_ne!(perf.dest_v4, perf.dest_v6, "DL is different-location");
                }
            }
        }
    }

    #[test]
    fn groups_cover_all_sl_kept_sites() {
        let c = shared_campaign();
        let a =
            analyze_vantage(&AnalysisConfig::paper(), &c.sites, &c.db, &c.table_v4, &c.table_v6);
        let grouped: usize =
            a.sp_groups.values().chain(a.dp_groups.values()).map(|g| g.site_idx.len()).sum();
        assert_eq!(grouped, a.count_of(SiteClass::Sp) + a.count_of(SiteClass::Dp));
        // group means are averages of their members
        for g in a.sp_groups.values() {
            let v4: f64 = g.site_idx.iter().map(|&i| a.kept[i].v4_mean).sum::<f64>()
                / g.site_idx.len() as f64;
            assert!((g.v4_mean - v4).abs() < 1e-9);
        }
    }

    #[test]
    fn good_paths_only_from_comparable_sp_groups() {
        let c = shared_campaign();
        let a =
            analyze_vantage(&AnalysisConfig::paper(), &c.sites, &c.db, &c.table_v4, &c.table_v6);
        for dest in a.good_v6_paths.keys() {
            let g = &a.sp_groups[dest];
            assert_eq!(g.category, AsCategory::Comparable);
        }
    }

    #[test]
    fn crossed_sets_superset_of_dest_sets() {
        let c = shared_campaign();
        let a =
            analyze_vantage(&AnalysisConfig::paper(), &c.sites, &c.db, &c.table_v4, &c.table_v6);
        for d in &a.dest_ases_v4 {
            assert!(a.crossed_v4.contains(d), "dest {d} must be crossed");
        }
        for d in &a.dest_ases_v6 {
            assert!(a.crossed_v6.contains(d));
        }
        assert!(a.crossed_v4.len() >= a.dest_ases_v4.len());
    }

    #[test]
    fn v6_coverage_smaller_than_v4() {
        let c = shared_campaign();
        let a =
            analyze_vantage(&AnalysisConfig::paper(), &c.sites, &c.db, &c.table_v4, &c.table_v6);
        // Table 2's structural fact: the IPv6 topology is sparser.
        assert!(a.crossed_v6.len() <= a.crossed_v4.len());
    }
}
