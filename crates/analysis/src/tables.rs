//! One struct per paper table, with builders from [`VantageAnalysis`] and
//! plain-text renderers. Table numbers follow the paper.

use crate::hypotheses::{cross_checks, good_coverage_buckets, COVERAGE_BUCKETS};
use crate::types::{AsCategory, RemovalCause, SiteClass, VantageAnalysis};
use ipv6web_topology::AsId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Renders a fixed-width grid: one header row, then data rows.
fn render_grid(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Table 2: monitoring profiles per vantage point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Vantage names, column order.
    pub vantages: Vec<String>,
    /// Dual-stack sites that entered measurement.
    pub sites_total: Vec<usize>,
    /// Sites kept after sanitization.
    pub sites_kept: Vec<usize>,
    /// IPv4 destination ASes per vantage.
    pub dest_v4: Vec<usize>,
    /// IPv6 destination ASes per vantage.
    pub dest_v6: Vec<usize>,
    /// ASes crossed by IPv4 paths per vantage.
    pub crossed_v4: Vec<usize>,
    /// ASes crossed by IPv6 paths per vantage.
    pub crossed_v6: Vec<usize>,
    /// Union across vantages: dest v4 / dest v6 / crossed v4 / crossed v6.
    pub all: [usize; 4],
}

impl Table2 {
    /// Builds from per-vantage analyses.
    pub fn build(analyses: &[VantageAnalysis]) -> Self {
        let union = |f: &dyn Fn(&VantageAnalysis) -> &BTreeSet<AsId>| -> usize {
            analyses.iter().flat_map(|a| f(a).iter().copied()).collect::<BTreeSet<_>>().len()
        };
        Table2 {
            vantages: analyses.iter().map(|a| a.vantage.clone()).collect(),
            sites_total: analyses.iter().map(|a| a.sites_total).collect(),
            sites_kept: analyses.iter().map(|a| a.kept.len()).collect(),
            dest_v4: analyses.iter().map(|a| a.dest_ases_v4.len()).collect(),
            dest_v6: analyses.iter().map(|a| a.dest_ases_v6.len()).collect(),
            crossed_v4: analyses.iter().map(|a| a.crossed_v4.len()).collect(),
            crossed_v6: analyses.iter().map(|a| a.crossed_v6.len()).collect(),
            all: [
                union(&|a| &a.dest_ases_v4),
                union(&|a| &a.dest_ases_v6),
                union(&|a| &a.crossed_v4),
                union(&|a| &a.crossed_v6),
            ],
        }
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["Numbers of".to_string()];
        headers.extend(self.vantages.iter().cloned());
        headers.push("All".into());
        let row = |label: &str, xs: &[usize], all: Option<usize>| -> Vec<String> {
            let mut r = vec![label.to_string()];
            r.extend(xs.iter().map(|x| x.to_string()));
            r.push(all.map_or("NA".into(), |x| x.to_string()));
            r
        };
        let rows = vec![
            row("Sites (total)", &self.sites_total, None),
            row("Sites kept", &self.sites_kept, None),
            row("Dest. ASes (IPv4)", &self.dest_v4, Some(self.all[0])),
            row("Dest. ASes (IPv6)", &self.dest_v6, Some(self.all[1])),
            row("ASes crossed (IPv4)", &self.crossed_v4, Some(self.all[2])),
            row("ASes crossed (IPv6)", &self.crossed_v6, Some(self.all[3])),
        ];
        write!(
            f,
            "{}",
            render_grid("Table 2: Monitoring profiles per vantage-point.", &headers, &rows)
        )
    }
}

/// Table 3: causes of confidence-target failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// Vantage names.
    pub vantages: Vec<String>,
    /// Counts per vantage: [insufficient, ↑, ↓, ↗, ↘].
    pub counts: Vec<[usize; 5]>,
}

impl Table3 {
    /// Builds from per-vantage analyses.
    pub fn build(analyses: &[VantageAnalysis]) -> Self {
        let counts = analyses
            .iter()
            .map(|a| {
                let mut c = [0usize; 5];
                for r in &a.removed {
                    let i = match r.cause {
                        RemovalCause::InsufficientSamples => 0,
                        RemovalCause::TransitionUp => 1,
                        RemovalCause::TransitionDown => 2,
                        RemovalCause::TrendUp => 3,
                        RemovalCause::TrendDown => 4,
                    };
                    c[i] += 1;
                }
                c
            })
            .collect();
        Table3 { vantages: analyses.iter().map(|a| a.vantage.clone()).collect(), counts }
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> =
            ["", "Insufficient Samples", "Up", "Down", "TrendUp", "TrendDown"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let rows: Vec<Vec<String>> = self
            .vantages
            .iter()
            .zip(&self.counts)
            .map(|(v, c)| {
                let mut r = vec![v.clone()];
                r.extend(c.iter().map(|x| x.to_string()));
                r
            })
            .collect();
        write!(
            f,
            "{}",
            render_grid("Table 3: Causes of confidence target failures.", &headers, &rows)
        )
    }
}

/// Table 4: site classification (#DL / #SP / #DP).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4 {
    /// Vantage names.
    pub vantages: Vec<String>,
    /// Counts per vantage: [DL, SP, DP].
    pub counts: Vec<[usize; 3]>,
}

impl Table4 {
    /// Builds from per-vantage analyses.
    pub fn build(analyses: &[VantageAnalysis]) -> Self {
        Table4 {
            vantages: analyses.iter().map(|a| a.vantage.clone()).collect(),
            counts: analyses
                .iter()
                .map(|a| {
                    [
                        a.count_of(SiteClass::Dl),
                        a.count_of(SiteClass::Sp),
                        a.count_of(SiteClass::Dp),
                    ]
                })
                .collect(),
        }
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["".to_string()];
        headers.extend(self.vantages.iter().cloned());
        let label = ["# DL sites", "# SP sites", "# DP sites"];
        let rows: Vec<Vec<String>> = (0..3)
            .map(|i| {
                let mut r = vec![label[i].to_string()];
                r.extend(self.counts.iter().map(|c| c[i].to_string()));
                r
            })
            .collect();
        write!(f, "{}", render_grid("Table 4: Sites classification.", &headers, &rows))
    }
}

/// Table 5: classification of removed sites (good/bad IPv6 performance ×
/// SP/DP/DL), over removals with enough samples to judge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5 {
    /// Vantage names.
    pub vantages: Vec<String>,
    /// Per vantage: [SP good, SP bad, DP good, DP bad, DL good, DL bad].
    pub counts: Vec<[usize; 6]>,
}

impl Table5 {
    /// Builds from per-vantage analyses. Only removals that are *not*
    /// insufficient-samples (the paper's "sites for which sufficient
    /// samples were available") and that carry a perf verdict count.
    pub fn build(analyses: &[VantageAnalysis]) -> Self {
        let counts = analyses
            .iter()
            .map(|a| {
                let mut c = [0usize; 6];
                for r in &a.removed {
                    if r.cause == RemovalCause::InsufficientSamples {
                        continue;
                    }
                    let (Some(class), Some(good)) = (r.class, r.good_v6_perf) else {
                        continue;
                    };
                    let base = match class {
                        SiteClass::Sp => 0,
                        SiteClass::Dp => 2,
                        SiteClass::Dl => 4,
                    };
                    c[base + usize::from(!good)] += 1;
                }
                c
            })
            .collect();
        Table5 { vantages: analyses.iter().map(|a| a.vantage.clone()).collect(), counts }
    }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["".to_string()];
        headers.extend(self.vantages.iter().cloned());
        let labels = [
            "SP good perf.",
            "SP bad perf.",
            "DP good perf.",
            "DP bad perf.",
            "DL good perf.",
            "DL bad perf.",
        ];
        let rows: Vec<Vec<String>> = (0..6)
            .map(|i| {
                let mut r = vec![labels[i].to_string()];
                r.extend(self.counts.iter().map(|c| c[i].to_string()));
                r
            })
            .collect();
        write!(f, "{}", render_grid("Table 5: Classification of removed sites.", &headers, &rows))
    }
}

/// Table 6: IPv6 vs IPv4 for DL sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6 {
    /// Vantage names.
    pub vantages: Vec<String>,
    /// DL site count per vantage.
    pub n_sites: Vec<usize>,
    /// Percent of DL sites where IPv4 ≥ IPv6.
    pub pct_v4_ge_v6: Vec<f64>,
    /// Mean of per-site IPv4 speeds, kB/s.
    pub v4_perf: Vec<f64>,
    /// Mean of per-site IPv6 speeds, kB/s.
    pub v6_perf: Vec<f64>,
}

impl Table6 {
    /// Builds from per-vantage analyses.
    pub fn build(analyses: &[VantageAnalysis]) -> Self {
        let mut t = Table6 {
            vantages: Vec::new(),
            n_sites: Vec::new(),
            pct_v4_ge_v6: Vec::new(),
            v4_perf: Vec::new(),
            v6_perf: Vec::new(),
        };
        for a in analyses {
            let dl: Vec<_> = a.kept_of(SiteClass::Dl).collect();
            let n = dl.len();
            t.vantages.push(a.vantage.clone());
            t.n_sites.push(n);
            if n == 0 {
                t.pct_v4_ge_v6.push(0.0);
                t.v4_perf.push(0.0);
                t.v6_perf.push(0.0);
                continue;
            }
            let ge = dl.iter().filter(|s| s.v4_mean >= s.v6_mean).count();
            t.pct_v4_ge_v6.push(100.0 * ge as f64 / n as f64);
            t.v4_perf.push(dl.iter().map(|s| s.v4_mean).sum::<f64>() / n as f64);
            t.v6_perf.push(dl.iter().map(|s| s.v6_mean).sum::<f64>() / n as f64);
        }
        t
    }
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["".to_string()];
        headers.extend(self.vantages.iter().cloned());
        let mut rows = Vec::new();
        let mut push = |label: &str, cells: Vec<String>| {
            let mut r = vec![label.to_string()];
            r.extend(cells);
            rows.push(r);
        };
        push("# sites", self.n_sites.iter().map(|x| x.to_string()).collect());
        push("IPv4>=IPv6", self.pct_v4_ge_v6.iter().map(|x| format!("{x:.0}%")).collect());
        push("IPv4 perf.", self.v4_perf.iter().map(|x| format!("{x:.1}")).collect());
        push("IPv6 perf.", self.v6_perf.iter().map(|x| format!("{x:.1}")).collect());
        write!(
            f,
            "{}",
            render_grid(
                "Table 6: IPv6 vs. IPv4 performance (kbytes/sec) for sites in DL.",
                &headers,
                &rows
            )
        )
    }
}

/// Hop-count bucket labels for Tables 7 and 9.
pub const HOP_BUCKETS: [&str; 5] = ["1 Hop", "2 Hops", "3 Hops", "4 Hops", ">= 5 Hops"];

fn hop_bucket(hops: usize) -> usize {
    match hops {
        0 | 1 => 0,
        2 => 1,
        3 => 2,
        4 => 3,
        _ => 4,
    }
}

/// Per-vantage hop-count breakdown: `(mean speed, #sites)` per bucket per
/// family. Shared by Tables 7 (DL+DP) and 9 (SP).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopTable {
    /// Table title.
    pub title: String,
    /// Vantage names.
    pub vantages: Vec<String>,
    /// Per vantage: IPv4 buckets `(mean, n)`.
    pub v4: Vec<[(f64, usize); 5]>,
    /// Per vantage: IPv6 buckets `(mean, n)`.
    pub v6: Vec<[(f64, usize); 5]>,
}

impl HopTable {
    fn build(title: &str, analyses: &[VantageAnalysis], classes: &[SiteClass]) -> Self {
        let mut t =
            HopTable { title: title.into(), vantages: Vec::new(), v4: Vec::new(), v6: Vec::new() };
        for a in analyses {
            let mut sum4 = [(0.0f64, 0usize); 5];
            let mut sum6 = [(0.0f64, 0usize); 5];
            for s in a.kept.iter().filter(|s| classes.contains(&s.class)) {
                let b4 = hop_bucket(s.v4_hops);
                sum4[b4].0 += s.v4_mean;
                sum4[b4].1 += 1;
                let b6 = hop_bucket(s.v6_hops);
                sum6[b6].0 += s.v6_mean;
                sum6[b6].1 += 1;
            }
            let avg = |sums: [(f64, usize); 5]| {
                sums.map(|(sum, n)| (if n == 0 { 0.0 } else { sum / n as f64 }, n))
            };
            t.vantages.push(a.vantage.clone());
            t.v4.push(avg(sum4));
            t.v6.push(avg(sum6));
        }
        t
    }

    /// Table 7: DL+DP sites, performance by hop count (per family — the
    /// families disagree on hop counts because of tunnels).
    pub fn table7(analyses: &[VantageAnalysis]) -> Self {
        Self::build(
            "Table 7: DL+DP sites - Performance (kbytes/sec) by hop count.",
            analyses,
            &[SiteClass::Dl, SiteClass::Dp],
        )
    }

    /// Table 9: SP destination ASes, performance by hop count.
    pub fn table9(analyses: &[VantageAnalysis]) -> Self {
        Self::build(
            "Table 9: Destination ASes in SP: Performance (in kbytes/sec) by hop-count.",
            analyses,
            &[SiteClass::Sp],
        )
    }
}

impl fmt::Display for HopTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["".to_string(), "".to_string()];
        for b in HOP_BUCKETS {
            headers.push(b.to_string());
            headers.push("# sites".into());
        }
        let mut rows = Vec::new();
        for (i, v) in self.vantages.iter().enumerate() {
            for (fam, data) in [("IPv4", &self.v4[i]), ("IPv6", &self.v6[i])] {
                let mut r = vec![if fam == "IPv4" { v.clone() } else { String::new() }, fam.into()];
                for (mean, n) in data.iter() {
                    r.push(if *n == 0 { "-".into() } else { format!("{mean:.1}") });
                    r.push(n.to_string());
                }
                rows.push(r);
            }
        }
        write!(f, "{}", render_grid(&self.title, &headers, &rows))
    }
}

/// Table 8 (and 10): SP destination-AS verdicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table8 {
    /// Table title.
    pub title: String,
    /// Vantage names.
    pub vantages: Vec<String>,
    /// Percent comparable (IPv6≈IPv4 or better).
    pub pct_comparable: Vec<f64>,
    /// Percent zero-mode.
    pub pct_zero_mode: Vec<f64>,
    /// Percent small-N.
    pub pct_small: Vec<f64>,
    /// Percent genuinely bad (paper's data had none in SP).
    pub pct_bad: Vec<f64>,
    /// SP destination AS count.
    pub n_ases: Vec<usize>,
    /// Cross-checks across vantages: positive / negative.
    pub xcheck: (usize, usize),
    /// Whether the zero-mode row is rendered (Table 10 omits it).
    pub show_zero_mode: bool,
}

impl Table8 {
    /// Builds Table 8 from the weekly-campaign analyses.
    pub fn build(analyses: &[VantageAnalysis]) -> Self {
        Self::build_titled("Table 8: IPv6 vs. IPv4 for SP destination ASes.", analyses, true)
    }

    /// Builds Table 10 from World IPv6 Day analyses (no zero-mode row:
    /// participants fixed their servers).
    pub fn build_ipv6_day(analyses: &[VantageAnalysis]) -> Self {
        Self::build_titled("Table 10: World IPv6 Day - IPv6 vs. IPv4 for SP ASes.", analyses, false)
    }

    fn build_titled(title: &str, analyses: &[VantageAnalysis], show_zero_mode: bool) -> Self {
        let mut t = Table8 {
            title: title.into(),
            vantages: Vec::new(),
            pct_comparable: Vec::new(),
            pct_zero_mode: Vec::new(),
            pct_small: Vec::new(),
            pct_bad: Vec::new(),
            n_ases: Vec::new(),
            xcheck: cross_checks(analyses),
            show_zero_mode,
        };
        for a in analyses {
            let n = a.sp_groups.len();
            let share = |cat: AsCategory| -> f64 {
                if n == 0 {
                    return 0.0;
                }
                100.0 * a.sp_groups.values().filter(|g| g.category == cat).count() as f64 / n as f64
            };
            t.vantages.push(a.vantage.clone());
            t.pct_comparable.push(share(AsCategory::Comparable));
            t.pct_zero_mode.push(share(AsCategory::ZeroMode));
            t.pct_small.push(share(AsCategory::SmallN));
            t.pct_bad.push(share(AsCategory::Bad));
            t.n_ases.push(n);
        }
        t
    }
}

impl fmt::Display for Table8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["".to_string()];
        headers.extend(self.vantages.iter().cloned());
        let mut rows = Vec::new();
        let mut push = |label: &str, cells: Vec<String>| {
            let mut r = vec![label.to_string()];
            r.extend(cells);
            rows.push(r);
        };
        push("IPv6~=IPv4", self.pct_comparable.iter().map(|x| pct(*x)).collect());
        if self.show_zero_mode {
            push("Zero mode", self.pct_zero_mode.iter().map(|x| pct(*x)).collect());
            push("Small number of sites", self.pct_small.iter().map(|x| pct(*x)).collect());
            if self.pct_bad.iter().any(|x| *x > 0.0) {
                push("Network-attributable", self.pct_bad.iter().map(|x| pct(*x)).collect());
            }
        } else {
            let other: Vec<String> = self
                .pct_zero_mode
                .iter()
                .zip(&self.pct_small)
                .zip(&self.pct_bad)
                .map(|((a, b), c)| pct(a + b + c))
                .collect();
            push("Other", other);
        }
        push("# ASes", self.n_ases.iter().map(|x| x.to_string()).collect());
        push("x-check (+)", vec![self.xcheck.0.to_string()]);
        if self.show_zero_mode {
            push("x-check (-)", vec![self.xcheck.1.to_string()]);
        }
        write!(f, "{}", render_grid(&self.title, &headers, &rows))
    }
}

/// Table 11 (and 12): DP destination-AS verdicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table11 {
    /// Table title.
    pub title: String,
    /// Vantage names.
    pub vantages: Vec<String>,
    /// Percent comparable.
    pub pct_comparable: Vec<f64>,
    /// Percent zero-mode.
    pub pct_zero_mode: Vec<f64>,
    /// DP destination AS count.
    pub n_ases: Vec<usize>,
    /// Whether the zero-mode row is rendered (Table 12 omits it).
    pub show_zero_mode: bool,
}

impl Table11 {
    /// Builds Table 11 from the weekly-campaign analyses.
    pub fn build(analyses: &[VantageAnalysis]) -> Self {
        Self::build_titled("Table 11: IPv6 vs. IPv4 for DP destination ASes.", analyses, true)
    }

    /// Builds Table 12 from World IPv6 Day analyses.
    pub fn build_ipv6_day(analyses: &[VantageAnalysis]) -> Self {
        Self::build_titled("Table 12: World IPv6 Day - IPv6 vs. IPv4 for DP ASes.", analyses, false)
    }

    fn build_titled(title: &str, analyses: &[VantageAnalysis], show_zero_mode: bool) -> Self {
        let mut t = Table11 {
            title: title.into(),
            vantages: Vec::new(),
            pct_comparable: Vec::new(),
            pct_zero_mode: Vec::new(),
            n_ases: Vec::new(),
            show_zero_mode,
        };
        for a in analyses {
            let n = a.dp_groups.len();
            let share = |cat: AsCategory| -> f64 {
                if n == 0 {
                    return 0.0;
                }
                100.0 * a.dp_groups.values().filter(|g| g.category == cat).count() as f64 / n as f64
            };
            t.vantages.push(a.vantage.clone());
            t.pct_comparable.push(share(AsCategory::Comparable));
            t.pct_zero_mode.push(share(AsCategory::ZeroMode));
            t.n_ases.push(n);
        }
        t
    }
}

impl fmt::Display for Table11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["".to_string()];
        headers.extend(self.vantages.iter().cloned());
        let mut rows = Vec::new();
        let mut push = |label: &str, cells: Vec<String>| {
            let mut r = vec![label.to_string()];
            r.extend(cells);
            rows.push(r);
        };
        push("IPv6~=IPv4", self.pct_comparable.iter().map(|x| pct(*x)).collect());
        if self.show_zero_mode {
            push("Zero mode", self.pct_zero_mode.iter().map(|x| pct(*x)).collect());
        }
        push("# ASes", self.n_ases.iter().map(|x| x.to_string()).collect());
        write!(f, "{}", render_grid(&self.title, &headers, &rows))
    }
}

/// Table 13: good-AS coverage of DP IPv6 paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table13 {
    /// Vantage names.
    pub vantages: Vec<String>,
    /// Per vantage: shares per coverage bucket (row-major bucket order).
    pub buckets: Vec<[f64; 5]>,
    /// Size of the good-AS set the coverage was computed against.
    pub n_good_ases: usize,
}

impl Table13 {
    /// Builds from per-vantage analyses; the good-AS set is pooled across
    /// all of them, as in Section 4.
    pub fn build(analyses: &[VantageAnalysis]) -> Self {
        let good = crate::hypotheses::good_as_set(analyses);
        Table13 {
            vantages: analyses.iter().map(|a| a.vantage.clone()).collect(),
            buckets: analyses.iter().map(|a| good_coverage_buckets(a, &good)).collect(),
            n_good_ases: good.len(),
        }
    }
}

impl fmt::Display for Table13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["% good ASes in path".to_string()];
        headers.extend(self.vantages.iter().cloned());
        let rows: Vec<Vec<String>> = (0..5)
            .map(|b| {
                let mut r = vec![COVERAGE_BUCKETS[b].to_string()];
                r.extend(self.buckets.iter().map(|v| pct(v[b])));
                r
            })
            .collect();
        write!(f, "{}", render_grid("Table 13: \"Good\" AS coverage in DP Paths.", &headers, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AsGroup, RemovedSite, SitePerf};
    use ipv6web_web::SiteId;

    fn perf(id: u32, class: SiteClass, v4: f64, v6: f64, hops: usize) -> SitePerf {
        SitePerf {
            site: SiteId(id),
            class,
            v4_mean: v4,
            v6_mean: v6,
            v4_hops: hops,
            v6_hops: hops,
            dest_v4: AsId(1),
            dest_v6: AsId(if class == SiteClass::Dl { 2 } else { 1 }),
        }
    }

    fn analysis(name: &str) -> VantageAnalysis {
        let kept = vec![
            perf(0, SiteClass::Sp, 100.0, 98.0, 2),
            perf(1, SiteClass::Sp, 50.0, 52.0, 3),
            perf(2, SiteClass::Dp, 80.0, 40.0, 4),
            perf(3, SiteClass::Dl, 60.0, 45.0, 2),
            perf(4, SiteClass::Dl, 70.0, 80.0, 1),
        ];
        let removed = vec![
            RemovedSite {
                site: SiteId(9),
                cause: RemovalCause::TransitionUp,
                class: Some(SiteClass::Sp),
                good_v6_perf: Some(true),
                fault_attributed: false,
            },
            RemovedSite {
                site: SiteId(10),
                cause: RemovalCause::InsufficientSamples,
                class: Some(SiteClass::Dp),
                good_v6_perf: Some(false),
                fault_attributed: false,
            },
            RemovedSite {
                site: SiteId(11),
                cause: RemovalCause::TrendDown,
                class: Some(SiteClass::Dp),
                good_v6_perf: Some(false),
                fault_attributed: false,
            },
        ];
        let mut sp_groups = std::collections::BTreeMap::new();
        sp_groups.insert(
            AsId(1),
            AsGroup {
                dest: AsId(1),
                site_idx: vec![0, 1],
                v4_mean: 75.0,
                v6_mean: 75.0,
                category: AsCategory::Comparable,
                sites_at_zero: 2,
            },
        );
        let mut dp_groups = std::collections::BTreeMap::new();
        dp_groups.insert(
            AsId(1),
            AsGroup {
                dest: AsId(1),
                site_idx: vec![2],
                v4_mean: 80.0,
                v6_mean: 40.0,
                category: AsCategory::SmallN,
                sites_at_zero: 0,
            },
        );
        let mut dp_v6_paths = std::collections::BTreeMap::new();
        dp_v6_paths.insert(AsId(1), vec![AsId(0), AsId(5), AsId(1)]);
        let mut good_v6_paths = std::collections::BTreeMap::new();
        good_v6_paths.insert(AsId(1), vec![AsId(0), AsId(5), AsId(1)]);
        VantageAnalysis {
            vantage: name.into(),
            sites_total: 8,
            kept,
            removed,
            dest_ases_v4: [AsId(1), AsId(2)].into_iter().collect(),
            dest_ases_v6: [AsId(1)].into_iter().collect(),
            crossed_v4: [AsId(1), AsId(2), AsId(5)].into_iter().collect(),
            crossed_v6: [AsId(1), AsId(5)].into_iter().collect(),
            sp_groups,
            dp_groups,
            dp_v6_paths,
            good_v6_paths,
        }
    }

    #[test]
    fn table2_counts_and_union() {
        let t = Table2::build(&[analysis("A"), analysis("B")]);
        assert_eq!(t.sites_total, vec![8, 8]);
        assert_eq!(t.sites_kept, vec![5, 5]);
        assert_eq!(t.dest_v4, vec![2, 2]);
        assert_eq!(t.all[0], 2, "identical sets union to themselves");
        let text = t.to_string();
        assert!(text.contains("Sites kept"));
        assert!(text.contains("All"));
    }

    #[test]
    fn table3_classifies_causes() {
        let t = Table3::build(&[analysis("A")]);
        assert_eq!(t.counts[0], [1, 1, 0, 0, 1]);
        assert!(t.to_string().contains("Insufficient"));
    }

    #[test]
    fn table4_counts_classes() {
        let t = Table4::build(&[analysis("A")]);
        assert_eq!(t.counts[0], [2, 2, 1]);
        let text = t.to_string();
        assert!(text.contains("# DL sites") && text.contains("# SP sites"));
    }

    #[test]
    fn table5_skips_insufficient() {
        let t = Table5::build(&[analysis("A")]);
        // only the TransitionUp SP-good and TrendDown DP-bad survive
        assert_eq!(t.counts[0], [1, 0, 0, 1, 0, 0]);
    }

    #[test]
    fn table6_dl_stats() {
        let t = Table6::build(&[analysis("A")]);
        assert_eq!(t.n_sites, vec![2]);
        assert_eq!(t.pct_v4_ge_v6, vec![50.0]);
        assert!((t.v4_perf[0] - 65.0).abs() < 1e-9);
        assert!((t.v6_perf[0] - 62.5).abs() < 1e-9);
    }

    #[test]
    fn table7_and_9_bucket_by_hops() {
        let a = analysis("A");
        let t7 = HopTable::table7(&[a.clone()]);
        // DL+DP sites: hops 4 (DP), 2 and 1 (DL)
        assert_eq!(t7.v4[0][0].1, 1, "one site at 1 hop");
        assert_eq!(t7.v4[0][1].1, 1, "one site at 2 hops");
        assert_eq!(t7.v4[0][3].1, 1, "one site at 4 hops");
        let t9 = HopTable::table9(&[a]);
        assert_eq!(t9.v4[0][1].1, 1, "SP site at 2 hops");
        assert_eq!(t9.v4[0][2].1, 1, "SP site at 3 hops");
        assert_eq!(t9.v4[0][0].1, 0);
        assert!(t9.to_string().contains(">= 5 Hops"));
    }

    #[test]
    fn table8_shares_sum_to_100() {
        let t = Table8::build(&[analysis("A")]);
        let total = t.pct_comparable[0] + t.pct_zero_mode[0] + t.pct_small[0] + t.pct_bad[0];
        assert!((total - 100.0).abs() < 1e-9);
        assert_eq!(t.n_ases, vec![1]);
        assert!(t.to_string().contains("x-check"));
    }

    #[test]
    fn table10_merges_non_comparable_into_other() {
        let t = Table8::build_ipv6_day(&[analysis("A")]);
        let text = t.to_string();
        assert!(text.contains("Other"));
        assert!(!text.contains("Zero mode"));
    }

    #[test]
    fn table11_dp_shares() {
        let t = Table11::build(&[analysis("A")]);
        assert_eq!(t.pct_comparable, vec![0.0]);
        assert_eq!(t.n_ases, vec![1]);
        assert!(t.to_string().contains("Zero mode"));
        let t12 = Table11::build_ipv6_day(&[analysis("A")]);
        assert!(!t12.to_string().contains("Zero mode"));
    }

    #[test]
    fn table13_buckets() {
        let t = Table13::build(&[analysis("A")]);
        // the single DP path [0,5,1]: crossed = {5,1}; good set = {0,5,1}
        // => 100% good
        assert_eq!(t.buckets[0][0], 100.0);
        assert!(t.to_string().contains("100%"));
        assert_eq!(t.n_good_ases, 3);
    }

    #[test]
    fn renders_are_nonempty_and_aligned() {
        let a = analysis("VP-with-long-name");
        for text in [
            Table2::build(&[a.clone()]).to_string(),
            Table3::build(&[a.clone()]).to_string(),
            Table4::build(&[a.clone()]).to_string(),
            Table5::build(&[a.clone()]).to_string(),
            Table6::build(&[a.clone()]).to_string(),
            HopTable::table7(&[a.clone()]).to_string(),
            Table8::build(&[a.clone()]).to_string(),
            HopTable::table9(&[a.clone()]).to_string(),
            Table11::build(&[a.clone()]).to_string(),
            Table13::build(&[a]).to_string(),
        ] {
            assert!(text.lines().count() >= 4, "table too short:\n{text}");
            assert!(text.contains("Table "), "missing title:\n{text}");
        }
    }
}
