//! Data sanitization (Section 5.1, Tables 3 and 5).

pub use crate::types::RemovalCause;
use ipv6web_monitor::SiteRecord;
use ipv6web_stats::{detect_transition_paper, mean_ci, trend_paper, StudentT, Trend, Welford};

/// Result of sanitizing one site's sample series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SanitizeOutcome {
    /// Usable: carry the per-family means forward.
    Kept {
        /// Mean IPv4 speed over paired weeks, kB/s.
        v4_mean: f64,
        /// Mean IPv6 speed over paired weeks, kB/s.
        v6_mean: f64,
    },
    /// Removed for `cause`; `good_v6_perf` summarizes whatever samples
    /// existed (for the Table 5 bias check), when at least one pair exists.
    Removed {
        /// The Table 3 column.
        cause: RemovalCause,
        /// IPv6-relative performance over the available samples.
        good_v6_perf: Option<bool>,
    },
}

/// Extracts the paired per-week speed series of a record: weeks present in
/// both families, ascending, as `(v4_speeds, v6_speeds)`.
fn paired_series(rec: &SiteRecord) -> (Vec<f64>, Vec<f64>) {
    let weeks = rec.paired_weeks();
    let pick = |samples: &[ipv6web_monitor::PerfSample], week: u32| {
        samples.iter().find(|s| s.week == week).map(|s| s.speed_kbps)
    };
    let mut v4 = Vec::with_capacity(weeks.len());
    let mut v6 = Vec::with_capacity(weeks.len());
    for w in weeks {
        if let (Some(a), Some(b)) = (pick(&rec.samples_v4, w), pick(&rec.samples_v6, w)) {
            v4.push(a);
            v6.push(b);
        }
    }
    (v4, v6)
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Applies the paper's sanitization to one site record:
///
/// 1. fewer than `min_paired_samples` paired weeks → insufficient samples;
/// 2. a sharp transition in either family's series (median filter, 30%,
///    6 consecutive) → ↑/↓ by direction;
/// 3. a steady drift in either family (regression) → ↗/↘;
/// 4. the overall 95% CI of either family wider than `tolerance` of its
///    mean → insufficient (the confidence target was never met);
/// 5. otherwise kept, with the per-family means.
pub fn sanitize_site(
    rec: &SiteRecord,
    min_paired_samples: usize,
    tolerance: f64,
) -> SanitizeOutcome {
    sanitize_impl(rec, min_paired_samples, tolerance).0
}

/// [`sanitize_site`] plus fault attribution: the second element is true
/// when the site was removed for a sharp transition (↑/↓) whose onset week
/// falls inside one of `fault_windows` (`(from, to)`, both ends inclusive
/// — a disruption shifts the level both when it starts and when it
/// recovers). This connects the Table 3 transition buckets back to
/// injected disruptions, the way the paper footnotes route changes behind
/// part of its transition removals.
pub fn sanitize_site_windows(
    rec: &SiteRecord,
    min_paired_samples: usize,
    tolerance: f64,
    fault_windows: &[(u32, u32)],
) -> (SanitizeOutcome, bool) {
    let (out, onset_idx) = sanitize_impl(rec, min_paired_samples, tolerance);
    let attributed = match (&out, onset_idx) {
        (SanitizeOutcome::Removed { .. }, Some(idx)) => {
            let weeks = rec.paired_weeks();
            weeks
                .get(idx)
                .is_some_and(|&w| fault_windows.iter().any(|&(from, to)| from <= w && w <= to))
        }
        _ => false,
    };
    if attributed {
        ipv6web_obs::inc("analysis.fault_window_transitions");
    }
    (out, attributed)
}

/// The shared implementation; the second element is the paired-series
/// index of the detected transition onset, when removal was a transition.
fn sanitize_impl(
    rec: &SiteRecord,
    min_paired_samples: usize,
    tolerance: f64,
) -> (SanitizeOutcome, Option<usize>) {
    let (v4, v6) = paired_series(rec);
    let good_perf =
        if v4.is_empty() { None } else { Some(mean(&v6) >= mean(&v4) * (1.0 - tolerance)) };
    if v4.len() < min_paired_samples {
        return (
            SanitizeOutcome::Removed {
                cause: RemovalCause::InsufficientSamples,
                good_v6_perf: good_perf,
            },
            None,
        );
    }
    // transitions (either family)
    for series in [&v4, &v6] {
        if let Some(t) = detect_transition_paper(series) {
            return (
                SanitizeOutcome::Removed {
                    cause: if t.upward {
                        RemovalCause::TransitionUp
                    } else {
                        RemovalCause::TransitionDown
                    },
                    good_v6_perf: good_perf,
                },
                Some(t.index),
            );
        }
    }
    // trends (either family)
    for series in [&v4, &v6] {
        match trend_paper(series) {
            Trend::Upward => {
                return (
                    SanitizeOutcome::Removed {
                        cause: RemovalCause::TrendUp,
                        good_v6_perf: good_perf,
                    },
                    None,
                )
            }
            Trend::Downward => {
                return (
                    SanitizeOutcome::Removed {
                        cause: RemovalCause::TrendDown,
                        good_v6_perf: good_perf,
                    },
                    None,
                )
            }
            Trend::Stationary => {}
        }
    }
    // overall confidence
    for series in [&v4, &v6] {
        let acc: Welford = series.iter().copied().collect();
        let ci = mean_ci(&acc, StudentT::P95);
        if ci.relative_half_width() > tolerance {
            return (
                SanitizeOutcome::Removed {
                    cause: RemovalCause::InsufficientSamples,
                    good_v6_perf: good_perf,
                },
                None,
            );
        }
    }
    (SanitizeOutcome::Kept { v4_mean: mean(&v4), v6_mean: mean(&v6) }, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_monitor::PerfSample;

    fn rec_from(v4: &[f64], v6: &[f64]) -> SiteRecord {
        let mut rec = SiteRecord::default();
        rec.samples_v4 = v4
            .iter()
            .enumerate()
            .map(|(w, &s)| PerfSample { week: w as u32, speed_kbps: s, downloads: 4 })
            .collect();
        rec.samples_v6 = v6
            .iter()
            .enumerate()
            .map(|(w, &s)| PerfSample { week: w as u32, speed_kbps: s, downloads: 4 })
            .collect();
        rec
    }

    #[test]
    fn stationary_series_kept_with_means() {
        let v4: Vec<f64> = (0..20).map(|i| 50.0 + (i % 3) as f64).collect();
        let v6: Vec<f64> = (0..20).map(|i| 48.0 + (i % 3) as f64).collect();
        match sanitize_site(&rec_from(&v4, &v6), 8, 0.10) {
            SanitizeOutcome::Kept { v4_mean, v6_mean } => {
                assert!((v4_mean - 51.0).abs() < 0.2);
                assert!((v6_mean - 49.0).abs() < 0.2);
            }
            other => panic!("expected Kept, got {other:?}"),
        }
    }

    #[test]
    fn too_few_samples_removed() {
        let out = sanitize_site(&rec_from(&[50.0; 5], &[50.0; 5]), 8, 0.10);
        assert_eq!(
            out,
            SanitizeOutcome::Removed {
                cause: RemovalCause::InsufficientSamples,
                good_v6_perf: Some(true)
            }
        );
    }

    #[test]
    fn empty_record_removed_without_perf_verdict() {
        let out = sanitize_site(&SiteRecord::default(), 8, 0.10);
        assert_eq!(
            out,
            SanitizeOutcome::Removed {
                cause: RemovalCause::InsufficientSamples,
                good_v6_perf: None
            }
        );
    }

    #[test]
    fn step_up_detected() {
        let mut v4 = vec![50.0; 12];
        v4.extend(vec![90.0; 12]);
        let v6 = v4.clone();
        match sanitize_site(&rec_from(&v4, &v6), 8, 0.10) {
            SanitizeOutcome::Removed { cause: RemovalCause::TransitionUp, .. } => {}
            other => panic!("expected TransitionUp, got {other:?}"),
        }
    }

    #[test]
    fn step_down_in_v6_only_still_caught() {
        let v4 = vec![50.0; 24];
        let mut v6 = vec![50.0; 12];
        v6.extend(vec![25.0; 12]);
        match sanitize_site(&rec_from(&v4, &v6), 8, 0.10) {
            SanitizeOutcome::Removed { cause: RemovalCause::TransitionDown, .. } => {}
            other => panic!("expected TransitionDown, got {other:?}"),
        }
    }

    #[test]
    fn steady_trend_detected() {
        let v4: Vec<f64> = (0..30).map(|i| 50.0 + 1.5 * i as f64).collect();
        let v6 = v4.clone();
        match sanitize_site(&rec_from(&v4, &v6), 8, 0.10) {
            SanitizeOutcome::Removed { cause: RemovalCause::TrendUp, .. } => {}
            other => panic!("expected TrendUp, got {other:?}"),
        }
    }

    #[test]
    fn downward_trend_detected() {
        let v4: Vec<f64> = (0..30).map(|i| 120.0 - 1.5 * i as f64).collect();
        let v6 = v4.clone();
        match sanitize_site(&rec_from(&v4, &v6), 8, 0.10) {
            SanitizeOutcome::Removed { cause: RemovalCause::TrendDown, .. } => {}
            other => panic!("expected TrendDown, got {other:?}"),
        }
    }

    #[test]
    fn wild_series_fails_overall_confidence() {
        // alternating ±25% around the mean: swings stay under the 30%
        // transition threshold (so the median filter cannot fire even at
        // its shrunken edge windows), there is no trend, but the 95% CI
        // never reaches 10% of the mean
        let v4: Vec<f64> = (0..12).map(|i| if i % 2 == 0 { 80.0 } else { 120.0 }).collect();
        let v6 = v4.clone();
        match sanitize_site(&rec_from(&v4, &v6), 8, 0.10) {
            SanitizeOutcome::Removed { cause: RemovalCause::InsufficientSamples, .. } => {}
            other => panic!("expected confidence failure, got {other:?}"),
        }
    }

    #[test]
    fn good_perf_flag_reflects_v6_standing() {
        // v6 clearly worse in the available (insufficient) samples
        let out = sanitize_site(&rec_from(&[100.0; 4], &[40.0; 4]), 8, 0.10);
        assert_eq!(
            out,
            SanitizeOutcome::Removed {
                cause: RemovalCause::InsufficientSamples,
                good_v6_perf: Some(false)
            }
        );
    }

    #[test]
    fn fault_window_transition_attributed() {
        let mut v4 = vec![50.0; 12];
        v4.extend(vec![90.0; 12]);
        let v6 = v4.clone();
        let rec = rec_from(&v4, &v6);
        let (out, hit) = sanitize_site_windows(&rec, 8, 0.10, &[(8, 16)]);
        assert!(
            matches!(out, SanitizeOutcome::Removed { cause: RemovalCause::TransitionUp, .. }),
            "got {out:?}"
        );
        assert!(hit, "onset inside the window must attribute");
        let (_, miss) = sanitize_site_windows(&rec, 8, 0.10, &[(20, 23)]);
        assert!(!miss, "window elsewhere must not attribute");
        let (_, none) = sanitize_site_windows(&rec, 8, 0.10, &[]);
        assert!(!none, "no windows, no attribution");
    }

    #[test]
    fn trend_removals_never_attributed() {
        let v4: Vec<f64> = (0..30).map(|i| 50.0 + 1.5 * i as f64).collect();
        let (out, hit) = sanitize_site_windows(&rec_from(&v4, &v4.clone()), 8, 0.10, &[(0, 30)]);
        assert!(
            matches!(out, SanitizeOutcome::Removed { cause: RemovalCause::TrendUp, .. }),
            "got {out:?}"
        );
        assert!(!hit, "trends have no onset; only transitions attribute");
    }

    #[test]
    fn unpaired_weeks_ignored() {
        // v4 has extra weeks that v6 lacks; only the pairs count
        let mut rec = rec_from(&[50.0; 10], &[50.0; 10]);
        rec.samples_v4.push(PerfSample { week: 99, speed_kbps: 9999.0, downloads: 4 });
        match sanitize_site(&rec, 8, 0.10) {
            SanitizeOutcome::Kept { v4_mean, .. } => {
                assert!((v4_mean - 50.0).abs() < 1e-9, "outlier unpaired week excluded");
            }
            other => panic!("expected Kept, got {other:?}"),
        }
    }
}
