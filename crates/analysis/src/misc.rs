//! Section 5.5's "miscellaneous finding": do sites/ASes with *better* IPv6
//! performance share a common trait?
//!
//! The paper looked for dominance by class (DL/SP/DP) and by geography and
//! found none — a negative result it reports explicitly. This module runs
//! the same investigation over the simulated campaign.

use crate::types::VantageAnalysis;
use ipv6web_topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Share of better-IPv6 sites vs the base rate, for one grouping value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraitShare {
    /// Sites in this group where IPv6 outperformed IPv4.
    pub better: usize,
    /// All kept sites in this group.
    pub total: usize,
}

impl TraitShare {
    /// Better-share within the group; 0 for empty groups.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.better as f64 / self.total as f64
        }
    }
}

/// The Section 5.5 investigation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BetterV6Profile {
    /// Sites where IPv6 outperformed IPv4, across all analyses.
    pub total_better: usize,
    /// All kept sites considered.
    pub total_sites: usize,
    /// Breakdown by site class.
    pub by_class: BTreeMap<String, TraitShare>,
    /// Breakdown by destination-AS region.
    pub by_region: BTreeMap<String, TraitShare>,
    /// A trait whose group is both enriched (≥2× the overall rate) and
    /// covers a majority of the better-IPv6 sites — `None` reproduces the
    /// paper's negative finding.
    pub dominant_trait: Option<String>,
}

fn enriched_and_majority(
    shares: &BTreeMap<String, TraitShare>,
    overall_rate: f64,
    total_better: usize,
) -> Option<String> {
    for (name, s) in shares {
        if s.total < 10 {
            continue; // too small to call dominant
        }
        let covers_majority = 2 * s.better > total_better;
        let enriched = s.rate() > 2.0 * overall_rate;
        if covers_majority && enriched {
            return Some(name.clone());
        }
    }
    None
}

/// Runs the investigation over all vantage analyses.
pub fn better_v6_profile(topo: &Topology, analyses: &[VantageAnalysis]) -> BetterV6Profile {
    let mut by_class: BTreeMap<String, TraitShare> = BTreeMap::new();
    let mut by_region: BTreeMap<String, TraitShare> = BTreeMap::new();
    let mut total_better = 0usize;
    let mut total_sites = 0usize;
    for a in analyses {
        for s in &a.kept {
            let better = s.v6_mean > s.v4_mean;
            total_sites += 1;
            total_better += usize::from(better);
            let class_key = s.class.to_string();
            let region_key = format!("{:?}", topo.node(s.dest_v6).region);
            for (map, key) in [(&mut by_class, class_key), (&mut by_region, region_key)] {
                let e = map.entry(key).or_insert(TraitShare { better: 0, total: 0 });
                e.total += 1;
                e.better += usize::from(better);
            }
        }
    }
    let overall_rate =
        if total_sites == 0 { 0.0 } else { total_better as f64 / total_sites as f64 };
    let dominant_trait = enriched_and_majority(&by_class, overall_rate, total_better)
        .or_else(|| enriched_and_majority(&by_region, overall_rate, total_better));
    BetterV6Profile { total_better, total_sites, by_class, by_region, dominant_trait }
}

impl std::fmt::Display for BetterV6Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Section 5.5: traits of better-IPv6 performers ({} of {} kept sites)",
            self.total_better, self.total_sites
        )?;
        for (label, map) in [("class", &self.by_class), ("region", &self.by_region)] {
            for (k, s) in map {
                writeln!(
                    f,
                    "  by {label}: {k:<14} {}/{} ({:.0}%)",
                    s.better,
                    s.total,
                    100.0 * s.rate()
                )?;
            }
        }
        match &self.dominant_trait {
            Some(t) => {
                writeln!(f, "  dominant trait: {t} (deviates from the paper's negative finding)")
            }
            None => writeln!(f, "  no dominant trait — the paper's negative finding reproduces"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{SiteClass, SitePerf};
    use ipv6web_topology::{generate, AsId, Region, TopologyConfig};
    use ipv6web_web::SiteId;

    fn analysis_with(kept: Vec<SitePerf>) -> VantageAnalysis {
        VantageAnalysis {
            vantage: "T".into(),
            sites_total: kept.len(),
            kept,
            removed: vec![],
            dest_ases_v4: Default::default(),
            dest_ases_v6: Default::default(),
            crossed_v4: Default::default(),
            crossed_v6: Default::default(),
            sp_groups: Default::default(),
            dp_groups: Default::default(),
            dp_v6_paths: Default::default(),
            good_v6_paths: Default::default(),
        }
    }

    fn perf(id: u32, class: SiteClass, dest: u32, v4: f64, v6: f64) -> SitePerf {
        SitePerf {
            site: SiteId(id),
            class,
            v4_mean: v4,
            v6_mean: v6,
            v4_hops: 2,
            v6_hops: 2,
            dest_v4: AsId(dest),
            dest_v6: AsId(dest),
        }
    }

    #[test]
    fn balanced_world_has_no_dominant_trait() {
        let topo = generate(&TopologyConfig::test_small(), 1);
        // better-v6 sites spread evenly over classes and (via different dest
        // ASes) regions
        let mut kept = Vec::new();
        for i in 0..60u32 {
            let class = match i % 3 {
                0 => SiteClass::Sp,
                1 => SiteClass::Dp,
                _ => SiteClass::Dl,
            };
            let better = i % 4 == 0; // 25% better, uniformly
            let dest = 100 + (i % 30);
            kept.push(perf(i, class, dest, 100.0, if better { 120.0 } else { 80.0 }));
        }
        let p = better_v6_profile(&topo, &[analysis_with(kept)]);
        assert_eq!(p.total_sites, 60);
        assert_eq!(p.total_better, 15);
        assert_eq!(p.dominant_trait, None, "{p}");
        assert_eq!(p.by_class.len(), 3);
    }

    #[test]
    fn concentrated_world_flags_the_trait() {
        let topo = generate(&TopologyConfig::test_small(), 1);
        // ALL better-v6 sites are DL; DL's rate is far above overall
        let mut kept = Vec::new();
        for i in 0..40u32 {
            kept.push(perf(i, SiteClass::Dp, 100 + (i % 20), 100.0, 80.0));
        }
        for i in 40..60u32 {
            kept.push(perf(i, SiteClass::Dl, 100 + (i % 20), 100.0, 150.0));
        }
        let p = better_v6_profile(&topo, &[analysis_with(kept)]);
        assert_eq!(p.dominant_trait, Some("DL".to_string()), "{p}");
    }

    #[test]
    fn empty_input_is_negative() {
        let topo = generate(&TopologyConfig::test_small(), 1);
        let p = better_v6_profile(&topo, &[]);
        assert_eq!(p.total_sites, 0);
        assert_eq!(p.dominant_trait, None);
    }

    #[test]
    fn display_mentions_verdict() {
        let topo = generate(&TopologyConfig::test_small(), 1);
        let p = better_v6_profile(&topo, &[]);
        assert!(p.to_string().contains("negative finding"));
        let _ = Region::Europe;
    }

    #[test]
    fn quick_campaign_reproduces_negative_finding() {
        // the real pipeline: in the calibrated world, better-IPv6 sites
        // must not concentrate in one class or region
        let c = crate::classify::tests::shared_campaign();
        let a = crate::classify::analyze_vantage(
            &crate::types::AnalysisConfig::paper(),
            &c.sites,
            &c.db,
            &c.table_v4,
            &c.table_v6,
        );
        let p = better_v6_profile(&c.topo, &[a]);
        assert!(p.total_sites > 0);
        assert_eq!(p.dominant_trait, None, "{p}");
    }
}
