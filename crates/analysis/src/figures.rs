//! Figure series (Figs 1, 3a, 3b).

use crate::types::SitePerf;
use ipv6web_alexa::AdoptionTimeline;
use ipv6web_monitor::MonitorDb;
use ipv6web_web::SiteId;

/// One point of the Fig 1 series.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig1Point {
    /// Campaign week.
    pub week: u32,
    /// Calendar label (`YY/MM/DD`).
    pub label: String,
    /// IPv6-reachable share of monitored sites, percent.
    pub reachable_pct: f64,
}

/// Fig 1: weekly IPv6 reachability of the monitored list, from `from_week`
/// (the figure starts Dec 2010, i.e. partway into the campaign).
pub fn fig1_series(db: &MonitorDb, timeline: &AdoptionTimeline, from_week: u32) -> Vec<Fig1Point> {
    (from_week..=timeline.total_weeks)
        .map(|week| Fig1Point {
            week,
            label: timeline.date_label(week),
            reachable_pct: 100.0 * db.reachability_at(week),
        })
        .collect()
}

/// Fig 3a's rank buckets (top-k prefixes).
pub const RANK_BUCKETS: [(u32, &str); 6] = [
    (10, "Top 10"),
    (100, "Top 100"),
    (1_000, "Top 1k"),
    (10_000, "Top 10k"),
    (100_000, "Top 100k"),
    (1_000_000, "Top 1M"),
];

/// Fig 3a: IPv6 reachability by rank bucket at `week`. `rank_of` maps a
/// site id to its list rank. Buckets beyond the largest rank repeat the
/// full-list value (our scaled list stands in for the 1M list). Returns
/// `(label, reachable_pct)` per bucket.
pub fn fig3a_series(
    db: &MonitorDb,
    rank_of: impl Fn(SiteId) -> Option<u32>,
    week: u32,
) -> Vec<(String, f64)> {
    let mut per_bucket: Vec<(usize, usize)> = vec![(0, 0); RANK_BUCKETS.len()];
    for (site, rec) in db.iter() {
        if rec.added_week > week {
            continue;
        }
        let Some(rank) = rank_of(site) else { continue };
        let dual = rec.dual_since.is_some_and(|w| w <= week);
        for (i, (k, _)) in RANK_BUCKETS.iter().enumerate() {
            if rank <= *k {
                per_bucket[i].0 += 1;
                if dual {
                    per_bucket[i].1 += 1;
                }
            }
        }
    }
    RANK_BUCKETS
        .iter()
        .zip(per_bucket)
        .map(|((_, label), (total, dual))| {
            let pct = if total == 0 { 0.0 } else { 100.0 * dual as f64 / total as f64 };
            (label.to_string(), pct)
        })
        .collect()
}

/// Fig 3b: how often IPv6 download is faster, for the ranked-list subset
/// vs the full (list + DNS-cache tail) population. `in_top_list` selects
/// the ranked subset. Returns `(pct_top_list, pct_all)`.
pub fn fig3b_series(kept: &[SitePerf], in_top_list: impl Fn(SiteId) -> bool) -> (f64, f64) {
    let faster = |subset: &[&SitePerf]| -> f64 {
        if subset.is_empty() {
            return 0.0;
        }
        let n = subset.iter().filter(|s| s.v6_mean > s.v4_mean).count();
        100.0 * n as f64 / subset.len() as f64
    };
    let top: Vec<&SitePerf> = kept.iter().filter(|s| in_top_list(s.site)).collect();
    let all: Vec<&SitePerf> = kept.iter().collect();
    (faster(&top), faster(&all))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SiteClass;
    use ipv6web_topology::AsId;

    fn db_with(dual_weeks: &[(u32, Option<u32>)]) -> MonitorDb {
        let mut db = MonitorDb::new("t");
        for (i, (added, dual)) in dual_weeks.iter().enumerate() {
            let rec = db.record_mut(SiteId(i as u32), *added);
            rec.dual_since = *dual;
        }
        db
    }

    #[test]
    fn fig1_reflects_reachability_growth() {
        let db = db_with(&[(0, Some(2)), (0, None), (0, None), (0, Some(10))]);
        let tl = AdoptionTimeline::paper();
        let series = fig1_series(&db, &tl, 0);
        assert_eq!(series.len(), tl.total_weeks as usize + 1);
        assert_eq!(series[0].reachable_pct, 0.0);
        assert_eq!(series[2].reachable_pct, 25.0);
        assert_eq!(series[10].reachable_pct, 50.0);
        assert_eq!(series[0].label, "10/08/12");
        // monotone here (no churn in this toy db)
        for w in series.windows(2) {
            assert!(w[1].reachable_pct >= w[0].reachable_pct);
        }
    }

    #[test]
    fn fig1_from_week_truncates() {
        let db = db_with(&[(0, Some(0))]);
        let tl = AdoptionTimeline::paper();
        let series = fig1_series(&db, &tl, 40);
        assert_eq!(series.len(), 13);
        assert_eq!(series[0].week, 40);
    }

    #[test]
    fn fig3a_buckets_nest() {
        // ranks 1..=20, dual iff rank <= 2 (top-heavy adoption)
        let mut db = MonitorDb::new("t");
        for i in 0..20u32 {
            let rec = db.record_mut(SiteId(i), 0);
            rec.dual_since = (i < 2).then_some(0);
        }
        let series = fig3a_series(&db, |s| Some(s.0 + 1), 10);
        assert_eq!(series[0].0, "Top 10");
        assert_eq!(series[0].1, 20.0, "2 dual of top 10");
        assert_eq!(series[1].1, 10.0, "2 dual of 20 present (Top 100 bucket)");
        // declining with bucket size
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn fig3b_partitions() {
        let mk = |id: u32, v4: f64, v6: f64| SitePerf {
            site: SiteId(id),
            class: SiteClass::Sp,
            v4_mean: v4,
            v6_mean: v6,
            v4_hops: 1,
            v6_hops: 1,
            dest_v4: AsId(0),
            dest_v6: AsId(0),
        };
        // ids < 10 are "top list": 1 of 2 faster; all 4: 2 of 4 faster
        let kept = vec![
            mk(1, 100.0, 120.0),
            mk(2, 100.0, 80.0),
            mk(100, 100.0, 130.0),
            mk(101, 100.0, 70.0),
        ];
        let (top, all) = fig3b_series(&kept, |s| s.0 < 10);
        assert_eq!(top, 50.0);
        assert_eq!(all, 50.0);
        let (top2, _) = fig3b_series(&kept, |s| s.0 == 2);
        assert_eq!(top2, 0.0);
    }

    #[test]
    fn fig3b_empty_sets_zero() {
        let (a, b) = fig3b_series(&[], |_| true);
        assert_eq!((a, b), (0.0, 0.0));
    }
}
