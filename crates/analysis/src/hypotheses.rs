//! Hypothesis machinery: AS categorization, cross-checks, good-AS
//! coverage, and the H1/H2 verdicts.

use crate::types::{AnalysisConfig, AsCategory, SitePerf, VantageAnalysis};
use ipv6web_stats::zero_mode;
use ipv6web_topology::AsId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Applies the Fig 4 decision procedure to one destination AS's sites.
///
/// Returns `(category, sites_at_zero, v4_mean, v6_mean)`.
pub fn categorize(members: &[&SitePerf], cfg: &AnalysisConfig) -> (AsCategory, usize, f64, f64) {
    assert!(!members.is_empty(), "empty AS group");
    let n = members.len() as f64;
    let v4_mean = members.iter().map(|s| s.v4_mean).sum::<f64>() / n;
    let v6_mean = members.iter().map(|s| s.v6_mean).sum::<f64>() / n;
    let diffs: Vec<f64> = members.iter().map(|s| s.rel_diff()).collect();
    let zm = zero_mode(&diffs, cfg.tolerance);

    let comparable = v6_mean >= v4_mean * (1.0 - cfg.tolerance);
    let category = if comparable {
        AsCategory::Comparable
    } else if zm.present {
        AsCategory::ZeroMode
    } else if members.len() < cfg.small_as_sites {
        AsCategory::SmallN
    } else {
        AsCategory::Bad
    };
    (category, zm.sites_at_zero, v4_mean, v6_mean)
}

/// Cross-vantage checks on SP destination ASes (Table 8's last rows): an
/// AS observed in SP from several vantage points checks **positive** when
/// every vantage point put it in the same category, **negative** otherwise.
pub fn cross_checks(analyses: &[VantageAnalysis]) -> (usize, usize) {
    let mut seen: BTreeMap<AsId, BTreeSet<AsCategory>> = BTreeMap::new();
    let mut count: BTreeMap<AsId, usize> = BTreeMap::new();
    for a in analyses {
        for (dest, g) in &a.sp_groups {
            seen.entry(*dest).or_default().insert(g.category);
            *count.entry(*dest).or_default() += 1;
        }
    }
    let mut positive = 0;
    let mut negative = 0;
    for (dest, cats) in seen {
        if count[&dest] < 2 {
            continue; // not checkable
        }
        if cats.len() == 1 {
            positive += 1;
        } else {
            negative += 1;
        }
    }
    (positive, negative)
}

/// The set of "good" IPv6 ASes: every AS appearing on some comparable-SP
/// IPv6 path from any vantage point (Section 4's data-plane exoneration
/// step).
pub fn good_as_set(analyses: &[VantageAnalysis]) -> BTreeSet<AsId> {
    analyses.iter().flat_map(|a| a.good_v6_paths.values()).flat_map(|p| p.iter().copied()).collect()
}

/// Bucket labels for Table 13, in row order.
pub const COVERAGE_BUCKETS: [&str; 5] =
    ["100%", "[75% , 100%)", "[50% , 75%)", "[25% , 50%)", "[0% , 25%)"];

/// Table 13's row for one vantage point: the share of DP IPv6 paths whose
/// crossed ASes (source excluded) fall in each good-coverage bucket.
/// Returns percentages summing to ~100 (empty DP set gives all zeros).
pub fn good_coverage_buckets(a: &VantageAnalysis, good: &BTreeSet<AsId>) -> [f64; 5] {
    let mut counts = [0usize; 5];
    let mut total = 0usize;
    for path in a.dp_v6_paths.values() {
        let crossed = &path[1..];
        if crossed.is_empty() {
            continue;
        }
        let good_n = crossed.iter().filter(|x| good.contains(x)).count();
        let frac = good_n as f64 / crossed.len() as f64;
        let bucket = if frac >= 1.0 {
            0
        } else if frac >= 0.75 {
            1
        } else if frac >= 0.5 {
            2
        } else if frac >= 0.25 {
            3
        } else {
            4
        };
        counts[bucket] += 1;
        total += 1;
    }
    if total == 0 {
        return [0.0; 5];
    }
    let mut out = [0.0; 5];
    for i in 0..5 {
        out[i] = 100.0 * counts[i] as f64 / total as f64;
    }
    out
}

/// Summary verdict on a hypothesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypothesisVerdict {
    /// Whether the data supports the hypothesis.
    pub holds: bool,
    /// The share of SP (H1) or DP (H2-contrast) destination ASes whose
    /// IPv6 performance is comparable-or-explained, per vantage point.
    pub per_vantage_share: Vec<(String, f64)>,
    /// One-line summary.
    pub summary: String,
}

/// Fraction of groups that are Comparable or ZeroMode or SmallN, i.e. not
/// network-blamed.
fn explained_share(groups: &BTreeMap<AsId, crate::types::AsGroup>) -> f64 {
    if groups.is_empty() {
        return f64::NAN;
    }
    let explained = groups.values().filter(|g| g.category != AsCategory::Bad).count();
    explained as f64 / groups.len() as f64
}

/// Fraction of groups that are Comparable or ZeroMode (similar performance
/// for the AS or at least some of its sites).
fn similar_share(groups: &BTreeMap<AsId, crate::types::AsGroup>) -> f64 {
    if groups.is_empty() {
        return f64::NAN;
    }
    let similar = groups
        .values()
        .filter(|g| matches!(g.category, AsCategory::Comparable | AsCategory::ZeroMode))
        .count();
    similar as f64 / groups.len() as f64
}

/// H1: "the IPv6 data plane performance is mostly on par with IPv4."
/// Validated when, at every vantage point, the overwhelming majority of SP
/// destination ASes are comparable / zero-mode / small-N (i.e. no
/// network-attributable deficit) and cross-checks show no contradiction.
pub fn h1_verdict(analyses: &[VantageAnalysis]) -> HypothesisVerdict {
    // vantages without any SP destination AS carry no evidence either way
    let per_vantage: Vec<(String, f64)> = analyses
        .iter()
        .filter(|a| !a.sp_groups.is_empty())
        .map(|a| (a.vantage.clone(), explained_share(&a.sp_groups)))
        .collect();
    let (pos, neg) = cross_checks(analyses);
    // an AS straddling the 10% comparability boundary can legitimately land
    // in different categories from different vantage points; require
    // negatives to be rare rather than absent
    let holds = per_vantage.iter().all(|(_, s)| *s >= 0.9) && neg <= (pos / 5).max(1);
    let summary = format!(
        "H1 {}: SP destination ASes without network-attributable IPv6 deficit per vantage: {}; cross-checks +{pos}/-{neg}",
        if holds { "holds" } else { "REJECTED" },
        per_vantage
            .iter()
            .map(|(v, s)| format!("{v}={:.0}%", s * 100.0))
            .collect::<Vec<_>>()
            .join(", "),
    );
    HypothesisVerdict { holds, per_vantage_share: per_vantage, summary }
}

/// H2: "differences in routing choices are a major cause of poorer IPv6
/// performance." Validated by contrast: the share of destination ASes with
/// similar IPv6/IPv4 performance is much higher for SP than for DP.
pub fn h2_verdict(analyses: &[VantageAnalysis]) -> HypothesisVerdict {
    let mut per_vantage = Vec::new();
    let mut holds = true;
    for a in analyses {
        // no groups on one side means the vantage cannot contribute to the
        // SP/DP contrast
        if a.sp_groups.is_empty() || a.dp_groups.is_empty() {
            continue;
        }
        let sp = similar_share(&a.sp_groups);
        let dp = similar_share(&a.dp_groups);
        per_vantage.push((a.vantage.clone(), dp));
        // the paper's contrast: ~70-80% similar in SP vs ~10-20% in DP
        if dp > sp - 0.2 {
            holds = false;
        }
    }
    let summary = format!(
        "H2 {}: DP destination ASes with similar IPv6/IPv4 performance per vantage: {} (vs SP shares far higher)",
        if holds { "holds" } else { "REJECTED" },
        per_vantage
            .iter()
            .map(|(v, s)| format!("{v}={:.0}%", s * 100.0))
            .collect::<Vec<_>>()
            .join(", "),
    );
    HypothesisVerdict { holds, per_vantage_share: per_vantage, summary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AsGroup, SiteClass};
    use ipv6web_web::SiteId;

    fn perf(v4: f64, v6: f64) -> SitePerf {
        SitePerf {
            site: SiteId(0),
            class: SiteClass::Sp,
            v4_mean: v4,
            v6_mean: v6,
            v4_hops: 2,
            v6_hops: 2,
            dest_v4: AsId(5),
            dest_v6: AsId(5),
        }
    }

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::paper()
    }

    #[test]
    fn comparable_group() {
        let sites = [perf(100.0, 98.0), perf(50.0, 51.0)];
        let refs: Vec<&SitePerf> = sites.iter().collect();
        let (cat, _, v4m, v6m) = categorize(&refs, &cfg());
        assert_eq!(cat, AsCategory::Comparable);
        assert_eq!(v4m, 75.0);
        assert!((v6m - 74.5).abs() < 1e-9);
    }

    #[test]
    fn zero_mode_group() {
        // AS-level v6 much worse, but one site at parity => servers blamed
        let sites = [perf(100.0, 100.0), perf(100.0, 30.0), perf(100.0, 25.0), perf(100.0, 20.0)];
        let refs: Vec<&SitePerf> = sites.iter().collect();
        let (cat, at_zero, _, _) = categorize(&refs, &cfg());
        assert_eq!(cat, AsCategory::ZeroMode);
        assert_eq!(at_zero, 1);
    }

    #[test]
    fn small_group_without_zero_mode() {
        let sites = [perf(100.0, 40.0), perf(100.0, 50.0)];
        let refs: Vec<&SitePerf> = sites.iter().collect();
        let (cat, _, _, _) = categorize(&refs, &cfg());
        assert_eq!(cat, AsCategory::SmallN);
    }

    #[test]
    fn bad_group_when_large_and_uniformly_worse() {
        let sites: Vec<SitePerf> = (0..6).map(|_| perf(100.0, 50.0)).collect();
        let refs: Vec<&SitePerf> = sites.iter().collect();
        let (cat, _, _, _) = categorize(&refs, &cfg());
        assert_eq!(cat, AsCategory::Bad);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_group_panics() {
        categorize(&[], &cfg());
    }

    fn mk_analysis(
        name: &str,
        sp: Vec<(u32, AsCategory)>,
        dp: Vec<(u32, AsCategory)>,
    ) -> VantageAnalysis {
        let mk_group = |dest: u32, cat: AsCategory| AsGroup {
            dest: AsId(dest),
            site_idx: vec![0],
            v4_mean: 100.0,
            v6_mean: if cat == AsCategory::Comparable { 100.0 } else { 50.0 },
            category: cat,
            sites_at_zero: 0,
        };
        VantageAnalysis {
            vantage: name.into(),
            sites_total: 10,
            kept: vec![],
            removed: vec![],
            dest_ases_v4: Default::default(),
            dest_ases_v6: Default::default(),
            crossed_v4: Default::default(),
            crossed_v6: Default::default(),
            sp_groups: sp.into_iter().map(|(d, c)| (AsId(d), mk_group(d, c))).collect(),
            dp_groups: dp.into_iter().map(|(d, c)| (AsId(d), mk_group(d, c))).collect(),
            dp_v6_paths: Default::default(),
            good_v6_paths: Default::default(),
        }
    }

    #[test]
    fn cross_checks_positive_when_consistent() {
        let a =
            mk_analysis("A", vec![(1, AsCategory::Comparable), (2, AsCategory::ZeroMode)], vec![]);
        let b = mk_analysis(
            "B",
            vec![(1, AsCategory::Comparable), (3, AsCategory::Comparable)],
            vec![],
        );
        let (pos, neg) = cross_checks(&[a, b]);
        assert_eq!((pos, neg), (1, 0), "only AS 1 is checkable and agrees");
    }

    #[test]
    fn cross_checks_negative_on_disagreement() {
        let a = mk_analysis("A", vec![(1, AsCategory::Comparable)], vec![]);
        let b = mk_analysis("B", vec![(1, AsCategory::Bad)], vec![]);
        assert_eq!(cross_checks(&[a, b]), (0, 1));
    }

    #[test]
    fn h1_holds_with_explained_groups() {
        let a = mk_analysis(
            "A",
            vec![(1, AsCategory::Comparable), (2, AsCategory::ZeroMode), (3, AsCategory::SmallN)],
            vec![],
        );
        let v = h1_verdict(&[a]);
        assert!(v.holds, "{}", v.summary);
    }

    #[test]
    fn h1_rejected_when_bad_ases_abound() {
        let a = mk_analysis(
            "A",
            vec![(1, AsCategory::Bad), (2, AsCategory::Bad), (3, AsCategory::Comparable)],
            vec![],
        );
        let v = h1_verdict(&[a]);
        assert!(!v.holds, "{}", v.summary);
    }

    #[test]
    fn h2_holds_on_sp_dp_contrast() {
        let a = mk_analysis(
            "A",
            vec![
                (1, AsCategory::Comparable),
                (2, AsCategory::Comparable),
                (3, AsCategory::ZeroMode),
            ],
            vec![
                (10, AsCategory::Bad),
                (11, AsCategory::Bad),
                (12, AsCategory::SmallN),
                (13, AsCategory::Bad),
            ],
        );
        let v = h2_verdict(&[a]);
        assert!(v.holds, "{}", v.summary);
    }

    #[test]
    fn h2_rejected_when_dp_looks_like_sp() {
        let a = mk_analysis(
            "A",
            vec![(1, AsCategory::Comparable)],
            vec![(10, AsCategory::Comparable), (11, AsCategory::Comparable)],
        );
        let v = h2_verdict(&[a]);
        assert!(!v.holds, "{}", v.summary);
    }

    #[test]
    fn good_as_set_unions_paths() {
        let mut a = mk_analysis("A", vec![], vec![]);
        a.good_v6_paths.insert(AsId(9), vec![AsId(1), AsId(2), AsId(9)]);
        let mut b = mk_analysis("B", vec![], vec![]);
        b.good_v6_paths.insert(AsId(8), vec![AsId(3), AsId(8)]);
        let set = good_as_set(&[a, b]);
        assert_eq!(set.len(), 5);
        assert!(set.contains(&AsId(2)) && set.contains(&AsId(3)));
    }

    #[test]
    fn coverage_buckets_partition() {
        let mut a = mk_analysis("A", vec![], vec![]);
        // path fully good
        a.dp_v6_paths.insert(AsId(1), vec![AsId(0), AsId(10), AsId(11)]);
        // path half good
        a.dp_v6_paths.insert(AsId(2), vec![AsId(0), AsId(10), AsId(99)]);
        // path not good at all
        a.dp_v6_paths.insert(AsId(3), vec![AsId(0), AsId(98), AsId(99)]);
        let good: BTreeSet<AsId> = [AsId(10), AsId(11)].into_iter().collect();
        let buckets = good_coverage_buckets(&a, &good);
        assert!((buckets.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((buckets[0] - 33.33).abs() < 0.1, "one fully-good path");
        assert!((buckets[2] - 33.33).abs() < 0.1, "one 50% path");
        assert!((buckets[4] - 33.33).abs() < 0.1, "one 0% path");
    }

    #[test]
    fn coverage_empty_dp_all_zero() {
        let a = mk_analysis("A", vec![], vec![]);
        assert_eq!(good_coverage_buckets(&a, &BTreeSet::new()), [0.0; 5]);
    }
}
