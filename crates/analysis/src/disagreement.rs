//! Cross-vantage disagreement: are H1/H2 conclusions stable, or artifacts
//! of vantage placement?
//!
//! "The Blind Men and the Internet" argues conclusions drawn from a
//! handful of monitors can flip with placement. With a generated vantage
//! population this module re-asks each hypothesis **per vantage** (the
//! verdict a study would have reached had that monitor been the only
//! one), measures how often solo verdicts agree, and reports which pooled
//! conclusions flip for some placements.

use crate::hypotheses::{h1_verdict, h2_verdict, HypothesisVerdict};
use crate::types::VantageAnalysis;
use ipv6web_stats::{mean_ci, ConfidenceInterval, StudentT, Welford};
use serde::{Deserialize, Serialize};

/// How the solo (single-vantage) verdicts on one hypothesis spread around
/// the pooled verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerdictSpread {
    /// "H1" or "H2".
    pub hypothesis: String,
    /// The verdict over the pooled panel — what the study concludes.
    pub pooled_holds: bool,
    /// Solo verdicts that hold.
    pub holds: usize,
    /// Vantages with enough evidence for a solo verdict (H1 needs SP
    /// groups; H2 needs both SP and DP groups).
    pub evidential: usize,
    /// Share of solo verdicts agreeing with the majority solo verdict,
    /// with a 95% Student-t confidence interval.
    pub agreement: ConfidenceInterval,
    /// Whether any placement's solo verdict contradicts the pooled one —
    /// the conclusion flips depending on where you look.
    pub flips: bool,
    /// Vantages whose solo verdict contradicts the pooled one (capped at
    /// twelve in the rendered table; the full list is in the JSON).
    pub dissenters: Vec<String>,
}

/// The report's cross-vantage disagreement section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelReport {
    /// Vantage points in the panel.
    pub vantages: usize,
    /// How many entered the path-correlated analysis (`AS_PATH` feeds).
    pub analyzed: usize,
    /// H1 spread: IPv6 deficits mostly not network-attributable.
    pub h1: VerdictSpread,
    /// H2 spread: routing choices behind poorer IPv6 performance.
    pub h2: VerdictSpread,
}

fn spread(
    hypothesis: &str,
    analyses: &[VantageAnalysis],
    evidential: impl Fn(&VantageAnalysis) -> bool,
    verdict: impl Fn(&[VantageAnalysis]) -> HypothesisVerdict,
) -> VerdictSpread {
    let pooled_holds = verdict(analyses).holds;
    // solo verdict per evidential vantage: the conclusion this monitor
    // alone supports
    let solos: Vec<(&str, bool)> = analyses
        .iter()
        .filter(|a| evidential(a))
        .map(|a| (a.vantage.as_str(), verdict(std::slice::from_ref(a)).holds))
        .collect();
    let holds = solos.iter().filter(|(_, h)| *h).count();
    let majority_holds = 2 * holds >= solos.len();
    let mut agree = Welford::new();
    for (_, h) in &solos {
        agree.push(if *h == majority_holds { 1.0 } else { 0.0 });
    }
    let dissenters: Vec<String> =
        solos.iter().filter(|(_, h)| *h != pooled_holds).map(|(v, _)| v.to_string()).collect();
    VerdictSpread {
        hypothesis: hypothesis.to_string(),
        pooled_holds,
        holds,
        evidential: solos.len(),
        agreement: mean_ci(&agree, StudentT::P95),
        flips: !dissenters.is_empty(),
        dissenters,
    }
}

/// Builds the disagreement section from the per-vantage analyses of a
/// generated-population study. `vantages` is the full panel size
/// (including monitors without `AS_PATH` feeds, which carry no verdict).
pub fn panel_report(analyses: &[VantageAnalysis], vantages: usize) -> PanelReport {
    PanelReport {
        vantages,
        analyzed: analyses.len(),
        h1: spread("H1", analyses, |a| !a.sp_groups.is_empty(), h1_verdict),
        h2: spread(
            "H2",
            analyses,
            |a| !a.sp_groups.is_empty() && !a.dp_groups.is_empty(),
            h2_verdict,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AsCategory, AsGroup};
    use ipv6web_topology::AsId;
    use std::collections::{BTreeMap, BTreeSet};

    fn group(dest: AsId, category: AsCategory, v4: f64, v6: f64) -> AsGroup {
        AsGroup { dest, site_idx: vec![0], v4_mean: v4, v6_mean: v6, category, sites_at_zero: 0 }
    }

    fn analysis(name: &str, sp_cat: AsCategory, dp_cat: AsCategory) -> VantageAnalysis {
        let mut sp_groups = BTreeMap::new();
        sp_groups.insert(AsId(5), group(AsId(5), sp_cat, 100.0, 99.0));
        let mut dp_groups = BTreeMap::new();
        dp_groups.insert(AsId(9), group(AsId(9), dp_cat, 100.0, 40.0));
        VantageAnalysis {
            vantage: name.to_string(),
            sites_total: 1,
            kept: vec![],
            removed: vec![],
            dest_ases_v4: BTreeSet::new(),
            dest_ases_v6: BTreeSet::new(),
            crossed_v4: BTreeSet::new(),
            crossed_v6: BTreeSet::new(),
            sp_groups,
            dp_groups,
            dp_v6_paths: BTreeMap::new(),
            good_v6_paths: BTreeMap::new(),
        }
    }

    #[test]
    fn unanimous_panel_has_full_agreement_and_no_flips() {
        let panel: Vec<VantageAnalysis> = (0..5)
            .map(|i| analysis(&format!("VP-{i:03}"), AsCategory::Comparable, AsCategory::Bad))
            .collect();
        let r = panel_report(&panel, 8);
        assert_eq!(r.vantages, 8);
        assert_eq!(r.analyzed, 5);
        assert_eq!(r.h1.evidential, 5);
        assert_eq!(r.h1.holds, 5);
        assert!(r.h1.pooled_holds);
        assert!(!r.h1.flips);
        assert!(r.h1.dissenters.is_empty());
        assert!((r.h1.agreement.mean - 1.0).abs() < 1e-12);
        assert_eq!(r.h1.agreement.n, 5);
        assert!(r.h2.pooled_holds, "similar SP vs dissimilar DP supports H2");
    }

    #[test]
    fn dissenting_vantage_is_reported_as_a_flip() {
        let mut panel: Vec<VantageAnalysis> = (0..4)
            .map(|i| analysis(&format!("VP-{i:03}"), AsCategory::Comparable, AsCategory::Bad))
            .collect();
        // one placement sees an unexplained SP deficit: its solo H1 fails,
        // and (H1 requiring *every* vantage to clear 90%) it drags the
        // pooled verdict down with it
        panel.push(analysis("VP-004", AsCategory::Bad, AsCategory::Bad));
        let r = panel_report(&panel, 5);
        assert_eq!(r.h1.evidential, 5);
        assert_eq!(r.h1.holds, 4);
        assert!(!r.h1.pooled_holds, "one bad placement rejects pooled H1");
        assert!(r.h1.flips, "most placements alone would have concluded otherwise");
        assert_eq!(r.h1.dissenters.len(), 4, "the four holding vantages dissent from pooled");
        assert!((r.h1.agreement.mean - 0.8).abs() < 1e-12, "4/5 agree with the majority");
    }

    #[test]
    fn vantages_without_evidence_are_skipped() {
        let mut a = analysis("VP-000", AsCategory::Comparable, AsCategory::Bad);
        a.sp_groups.clear();
        a.dp_groups.clear();
        let with_evidence = analysis("VP-001", AsCategory::Comparable, AsCategory::Bad);
        let r = panel_report(&[a, with_evidence], 2);
        assert_eq!(r.h1.evidential, 1, "empty SP set carries no H1 evidence");
        assert_eq!(r.h2.evidential, 1);
    }
}
