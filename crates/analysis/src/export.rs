//! CSV export of figures and tables, for external plotting.
//!
//! The paper's group promised public data access ("we plan to make the
//! full data sets available … e.g., such as Google's BigQuery"); this
//! module is that promise for the reproduction: every figure series and
//! the headline tables render to plain CSV that gnuplot/pandas ingest
//! directly.

use crate::figures::Fig1Point;
use crate::tables::{HopTable, Table11, Table8};
use crate::types::VantageAnalysis;

/// Escapes one CSV field (quotes when needed).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Fig 1 as `week,date,reachable_pct`.
pub fn fig1_csv(points: &[Fig1Point]) -> String {
    let mut out = String::from("week,date,reachable_pct\n");
    for p in points {
        out.push_str(&format!("{},{},{:.4}\n", p.week, field(&p.label), p.reachable_pct));
    }
    out
}

/// Fig 3a as `bucket,reachable_pct`.
pub fn fig3a_csv(series: &[(String, f64)]) -> String {
    let mut out = String::from("bucket,reachable_pct\n");
    for (label, pct) in series {
        out.push_str(&format!("{},{pct:.4}\n", field(label)));
    }
    out
}

/// Table 8/10 as `vantage,pct_comparable,pct_zero_mode,pct_small,pct_bad,n_ases`.
pub fn table8_csv(t: &Table8) -> String {
    let mut out = String::from("vantage,pct_comparable,pct_zero_mode,pct_small,pct_bad,n_ases\n");
    for i in 0..t.vantages.len() {
        out.push_str(&format!(
            "{},{:.2},{:.2},{:.2},{:.2},{}\n",
            field(&t.vantages[i]),
            t.pct_comparable[i],
            t.pct_zero_mode[i],
            t.pct_small[i],
            t.pct_bad[i],
            t.n_ases[i],
        ));
    }
    out
}

/// Table 11/12 as `vantage,pct_comparable,pct_zero_mode,n_ases`.
pub fn table11_csv(t: &Table11) -> String {
    let mut out = String::from("vantage,pct_comparable,pct_zero_mode,n_ases\n");
    for i in 0..t.vantages.len() {
        out.push_str(&format!(
            "{},{:.2},{:.2},{}\n",
            field(&t.vantages[i]),
            t.pct_comparable[i],
            t.pct_zero_mode[i],
            t.n_ases[i],
        ));
    }
    out
}

/// Hop tables (7/9) in long form:
/// `vantage,family,hop_bucket,mean_kbps,n_sites`.
pub fn hop_table_csv(t: &HopTable) -> String {
    let mut out = String::from("vantage,family,hop_bucket,mean_kbps,n_sites\n");
    for (vi, v) in t.vantages.iter().enumerate() {
        for (fam, data) in [("IPv4", &t.v4[vi]), ("IPv6", &t.v6[vi])] {
            for (b, (mean, n)) in data.iter().enumerate() {
                out.push_str(&format!(
                    "{},{fam},{},{:.2},{}\n",
                    field(v),
                    crate::tables::HOP_BUCKETS[b],
                    mean,
                    n
                ));
            }
        }
    }
    out
}

/// Per-site long-form dump of kept sites:
/// `vantage,site,class,v4_mean,v6_mean,v4_hops,v6_hops` — the raw material
/// for any custom analysis.
pub fn kept_sites_csv(analyses: &[VantageAnalysis]) -> String {
    let mut out = String::from("vantage,site,class,v4_mean_kbps,v6_mean_kbps,v4_hops,v6_hops\n");
    for a in analyses {
        for s in &a.kept {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{},{}\n",
                field(&a.vantage),
                s.site,
                s.class,
                s.v4_mean,
                s.v6_mean,
                s.v4_hops,
                s.v6_hops,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AnalysisConfig, SiteClass};

    #[test]
    fn fig1_csv_shape() {
        let points = vec![
            Fig1Point { week: 0, label: "10/08/12".into(), reachable_pct: 0.5 },
            Fig1Point { week: 1, label: "10/08/19".into(), reachable_pct: 0.6 },
        ];
        let csv = fig1_csv(&points);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "week,date,reachable_pct");
        assert!(lines[1].starts_with("0,10/08/12,0.5"));
    }

    #[test]
    fn field_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("has,comma"), "\"has,comma\"");
        assert_eq!(field("has\"quote"), "\"has\"\"quote\"");
    }

    #[test]
    fn full_pipeline_csvs_parse_back() {
        let c = crate::classify::tests::shared_campaign();
        let a = crate::classify::analyze_vantage(
            &AnalysisConfig::paper(),
            &c.sites,
            &c.db,
            &c.table_v4,
            &c.table_v6,
        );
        let analyses = vec![a];

        let t8 = Table8::build(&analyses);
        let csv = table8_csv(&t8);
        assert!(csv.lines().count() == t8.vantages.len() + 1);
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 6);
        }

        let t11 = Table11::build(&analyses);
        assert!(table11_csv(&t11).lines().count() == t11.vantages.len() + 1);

        let t7 = HopTable::table7(&analyses);
        let hop_csv = hop_table_csv(&t7);
        // header + 2 families x 5 buckets per vantage
        assert_eq!(hop_csv.lines().count(), 1 + t7.vantages.len() * 10);

        let sites_csv = kept_sites_csv(&analyses);
        assert_eq!(sites_csv.lines().count(), 1 + analyses[0].kept.len());
        // classes render as their display names
        let has_class = analyses[0].kept.iter().any(|s| s.class == SiteClass::Dp);
        if has_class {
            assert!(sites_csv.contains(",DP,"));
        }
    }
}
