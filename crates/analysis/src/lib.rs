//! The paper's analysis methodology (Section 4, Fig 4).
//!
//! Pipeline, per vantage point with `AS_PATH` data:
//!
//! 1. **Sanitization** ([`sanitize`]) — drop sites whose month-scale series
//!    cannot support an average: too few samples, a sharp step (length-11
//!    median filter, ≥30% for 6+ samples), or a steady drift (linear
//!    regression). Produces Table 3, and the removed-site bias check of
//!    Table 5.
//! 2. **Classification** ([`classify`]) — split kept sites into DL
//!    (different IPv6/IPv4 destination AS — CDN users and 6to4), and for
//!    same-location sites SP (same AS path both families) vs DP (different
//!    paths). Produces Table 4.
//! 3. **Hypothesis validation** ([`hypotheses`]) — per-destination-AS
//!    comparison of IPv6 and IPv4 performance with zero-mode detection and
//!    cross-vantage checks (Tables 8/10 for H1 on SP, Tables 11/12 for H2
//!    on DP, Table 13's good-AS coverage), plus hop-count breakdowns
//!    (Tables 7 and 9) and the DL view (Table 6).
//! 4. **Figures** ([`figures`]) — the reachability timeline (Fig 1), the
//!    rank dependence (Fig 3a), and the top-1M vs 5M comparison (Fig 3b).
//!
//! [`tables`] holds one struct per paper table, each with a text renderer,
//! so the `repro` harness regenerates the paper's exact artifact list.

pub mod classify;
pub mod disagreement;
pub mod export;
pub mod figures;
pub mod hypotheses;
pub mod misc;
pub mod sanitize;
pub mod tables;
pub mod types;

pub use classify::{analyze_vantage, analyze_vantage_faulted};
pub use disagreement::{panel_report, PanelReport, VerdictSpread};
pub use export::{fig1_csv, fig3a_csv, hop_table_csv, kept_sites_csv, table11_csv, table8_csv};
pub use figures::{fig1_series, fig3a_series, fig3b_series};
pub use hypotheses::{h1_verdict, h2_verdict, HypothesisVerdict};
pub use misc::{better_v6_profile, BetterV6Profile};
pub use sanitize::{sanitize_site, sanitize_site_windows, RemovalCause};
pub use types::{
    AnalysisConfig, AsCategory, AsGroup, RemovedSite, SiteClass, SitePerf, VantageAnalysis,
};
