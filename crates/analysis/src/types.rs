//! Shared analysis data types.

use ipv6web_topology::AsId;
use ipv6web_web::SiteId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Analysis thresholds (all from the paper's text).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Minimum paired (same-week v4+v6) samples for a usable average.
    pub min_paired_samples: usize,
    /// Performance comparability tolerance — "do not differ by more than
    /// 10%; the range of our confidence interval".
    pub tolerance: f64,
    /// ASes with fewer sites than this count as "small number of sites"
    /// (the paper says less than four).
    pub small_as_sites: usize,
}

impl AnalysisConfig {
    /// The paper's thresholds.
    pub fn paper() -> Self {
        AnalysisConfig { min_paired_samples: 8, tolerance: 0.10, small_as_sites: 4 }
    }

    /// Looser thresholds for the World IPv6 Day data (a single day of
    /// 30-minute rounds instead of months of weekly ones).
    pub fn ipv6_day() -> Self {
        AnalysisConfig { min_paired_samples: 3, tolerance: 0.10, small_as_sites: 4 }
    }
}

/// The paper's site classes (Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SiteClass {
    /// Different locations: IPv6 and IPv4 destination ASes differ.
    Dl,
    /// Same location, same AS path in both families.
    Sp,
    /// Same location, different AS paths.
    Dp,
}

impl std::fmt::Display for SiteClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SiteClass::Dl => write!(f, "DL"),
            SiteClass::Sp => write!(f, "SP"),
            SiteClass::Dp => write!(f, "DP"),
        }
    }
}

/// Why a site was removed by sanitization (Table 3 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RemovalCause {
    /// Not enough samples for the confidence target.
    InsufficientSamples,
    /// Sharp upward transition (↑).
    TransitionUp,
    /// Sharp downward transition (↓).
    TransitionDown,
    /// Steady upward trend (↗).
    TrendUp,
    /// Steady downward trend (↘).
    TrendDown,
}

/// A sanitization-removed site, with enough context for Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemovedSite {
    /// Which site.
    pub site: SiteId,
    /// Why it was removed.
    pub cause: RemovalCause,
    /// Its class, when classifiable (needs AS paths).
    pub class: Option<SiteClass>,
    /// Whether its IPv6 performance (over whatever samples existed) was
    /// good relative to IPv4 — `None` when too few samples to say.
    pub good_v6_perf: Option<bool>,
    /// True when the removal was a sharp transition whose onset falls
    /// inside a known fault-injection window — the disturbance behind the
    /// Table 3 bucket is an injected one, not organic messiness.
    pub fault_attributed: bool,
}

/// A kept site's summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SitePerf {
    /// Which site.
    pub site: SiteId,
    /// DL / SP / DP.
    pub class: SiteClass,
    /// Mean IPv4 download speed over kept samples, kB/s.
    pub v4_mean: f64,
    /// Mean IPv6 download speed, kB/s.
    pub v6_mean: f64,
    /// IPv4 AS-path hop count from this vantage.
    pub v4_hops: usize,
    /// IPv6 AS-path hop count.
    pub v6_hops: usize,
    /// IPv4 destination AS.
    pub dest_v4: AsId,
    /// IPv6 destination AS.
    pub dest_v6: AsId,
}

impl SitePerf {
    /// Relative IPv6−IPv4 difference, `(v6 − v4) / v4`.
    pub fn rel_diff(&self) -> f64 {
        (self.v6_mean - self.v4_mean) / self.v4_mean
    }

    /// The paper's comparability test: IPv6 within `tol` of IPv4, or
    /// better.
    pub fn v6_comparable(&self, tol: f64) -> bool {
        self.v6_mean >= self.v4_mean * (1.0 - tol)
    }
}

/// Category of a destination AS after the Fig 4 decision procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AsCategory {
    /// IPv6 ≈ IPv4 (or better) across the AS's sites.
    Comparable,
    /// Worse at AS level, but the per-site difference distribution has a
    /// zero-mode — servers, not the network, explain the deficit.
    ZeroMode,
    /// Worse, no zero-mode, and too few sites to tell (paper: < 4).
    SmallN,
    /// Worse, no zero-mode, enough sites — a genuine network-level deficit.
    Bad,
}

/// One destination AS's site group and verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsGroup {
    /// The destination AS.
    pub dest: AsId,
    /// Indices into the kept vector of sites in this AS.
    pub site_idx: Vec<usize>,
    /// Average of per-site mean IPv4 speeds.
    pub v4_mean: f64,
    /// Average of per-site mean IPv6 speeds.
    pub v6_mean: f64,
    /// Fig 4 verdict.
    pub category: AsCategory,
    /// Sites within tolerance of zero difference (zero-mode support).
    pub sites_at_zero: usize,
}

/// Everything the tables need from one vantage point's campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VantageAnalysis {
    /// Vantage point name.
    pub vantage: String,
    /// Dual-stack sites that produced at least one paired measurement.
    pub sites_total: usize,
    /// Sites surviving sanitization, with summaries.
    pub kept: Vec<SitePerf>,
    /// Sites removed by sanitization.
    pub removed: Vec<RemovedSite>,
    /// Distinct IPv4 destination ASes of kept sites.
    pub dest_ases_v4: BTreeSet<AsId>,
    /// Distinct IPv6 destination ASes of kept sites.
    pub dest_ases_v6: BTreeSet<AsId>,
    /// ASes crossed by IPv4 paths (dest included, vantage AS excluded).
    pub crossed_v4: BTreeSet<AsId>,
    /// ASes crossed by IPv6 paths.
    pub crossed_v6: BTreeSet<AsId>,
    /// SP destination AS groups.
    pub sp_groups: BTreeMap<AsId, AsGroup>,
    /// DP destination AS groups.
    pub dp_groups: BTreeMap<AsId, AsGroup>,
    /// IPv6 AS paths (vantage first) to each DP destination — Table 13.
    pub dp_v6_paths: BTreeMap<AsId, Vec<AsId>>,
    /// IPv6 AS paths to each *comparable* SP destination — the "good"
    /// paths whose member ASes are certified good.
    pub good_v6_paths: BTreeMap<AsId, Vec<AsId>>,
}

impl VantageAnalysis {
    /// Kept sites of one class.
    pub fn kept_of(&self, class: SiteClass) -> impl Iterator<Item = &SitePerf> {
        self.kept.iter().filter(move |s| s.class == class)
    }

    /// Count of kept sites of one class (Table 4 cells).
    pub fn count_of(&self, class: SiteClass) -> usize {
        self.kept_of(class).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(v4: f64, v6: f64) -> SitePerf {
        SitePerf {
            site: SiteId(0),
            class: SiteClass::Sp,
            v4_mean: v4,
            v6_mean: v6,
            v4_hops: 3,
            v6_hops: 3,
            dest_v4: AsId(1),
            dest_v6: AsId(1),
        }
    }

    #[test]
    fn comparability_rule() {
        assert!(perf(100.0, 95.0).v6_comparable(0.10));
        assert!(perf(100.0, 90.0).v6_comparable(0.10), "exactly at tolerance");
        assert!(!perf(100.0, 89.9).v6_comparable(0.10));
        assert!(perf(100.0, 150.0).v6_comparable(0.10), "better is comparable");
    }

    #[test]
    fn rel_diff_sign() {
        assert!(perf(100.0, 80.0).rel_diff() < 0.0);
        assert!(perf(100.0, 120.0).rel_diff() > 0.0);
        assert_eq!(perf(100.0, 100.0).rel_diff(), 0.0);
    }

    #[test]
    fn class_display() {
        assert_eq!(SiteClass::Dl.to_string(), "DL");
        assert_eq!(SiteClass::Sp.to_string(), "SP");
        assert_eq!(SiteClass::Dp.to_string(), "DP");
    }

    #[test]
    fn configs_sane() {
        let p = AnalysisConfig::paper();
        assert_eq!(p.tolerance, 0.10);
        assert_eq!(p.small_as_sites, 4);
        assert!(AnalysisConfig::ipv6_day().min_paired_samples < p.min_paired_samples);
    }
}
