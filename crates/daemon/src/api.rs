//! The HTTP+JSON surface of `ipv6webd`.
//!
//! Routes (one request per connection, `Connection: close`):
//!
//! | Method | Path                | Response |
//! |--------|---------------------|----------|
//! | GET    | `/healthz`          | `{"ok":true}` |
//! | GET    | `/metrics`          | merged obs [`Snapshot`] as JSON |
//! | GET    | `/jobs`             | every job record, submission order |
//! | POST   | `/jobs`             | 202 + the accepted record (body: [`JobSpec`]) |
//! | GET    | `/jobs/:id`         | one record (live phase progress while running) |
//! | GET    | `/jobs/:id/report`  | the finished report, byte-identical to `repro --json` |
//! | POST   | `/shutdown`         | stop accepting jobs, then exit the accept loop |
//!
//! The wire layer is `ipv6web-web`'s HTTP substrate — the same parser the
//! simulated monitor speaks, now on a real socket.
//!
//! [`Snapshot`]: ipv6web_obs::Snapshot

use crate::daemon::Daemon;
use crate::job::JobSpec;
use ipv6web_web::{build_http_response, read_http_request_deadline, HttpRequest};
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock budget for reading one request off the socket. Control-plane
/// requests are a few KB; ten seconds is generous for any honest client
/// and cuts off a slowloris peer (half-sent or drip-fed requests) that
/// would otherwise pin the accept thread forever.
pub const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(10);

/// One routed response: status + JSON body (already serialized).
struct Reply {
    status: u16,
    body: Vec<u8>,
}

impl Reply {
    fn json(status: u16, json: String) -> Reply {
        Reply { status, body: json.into_bytes() }
    }

    fn error(status: u16, msg: &str) -> Reply {
        let obj = serde_json::Value::Obj(vec![(
            "error".to_string(),
            serde_json::Value::Str(msg.to_string()),
        )]);
        Reply::json(status, serde_json::to_string(&obj).expect("error serializes"))
    }

    fn ok() -> Reply {
        Reply::json(200, "{\"ok\":true}".to_string())
    }
}

/// Routes one parsed request. Returns the reply plus whether the daemon
/// should stop serving after it (the `/shutdown` path).
fn route(daemon: &Arc<Daemon>, req: &HttpRequest) -> (Reply, bool) {
    let path = req.target.split('?').next().unwrap_or("");
    let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
    let reply = match (req.method.as_str(), parts.as_slice()) {
        ("GET", ["healthz"]) => Reply::ok(),
        ("GET", ["metrics"]) => {
            ipv6web_obs::flush_thread();
            let snap = ipv6web_obs::snapshot();
            Reply::json(200, serde_json::to_string_pretty(&snap).expect("snapshot serializes"))
        }
        ("GET", ["jobs"]) => {
            let jobs = daemon.jobs();
            Reply::json(200, serde_json::to_string_pretty(&jobs).expect("records serialize"))
        }
        ("POST", ["jobs"]) => {
            let spec: Result<JobSpec, _> = match std::str::from_utf8(&req.body) {
                Ok("") => Ok(JobSpec::default()),
                Ok(text) => serde_json::from_str(text).map_err(|e| e.to_string()),
                Err(e) => Err(e.to_string()),
            };
            match spec.and_then(|s| daemon.submit(&s)) {
                Ok(rec) => {
                    Reply::json(202, serde_json::to_string_pretty(&rec).expect("record serializes"))
                }
                Err(msg) => Reply::error(400, &msg),
            }
        }
        ("GET", ["jobs", id]) => match daemon.job(id) {
            Some(rec) => {
                Reply::json(200, serde_json::to_string_pretty(&rec).expect("record serializes"))
            }
            None => Reply::error(404, "no such job"),
        },
        ("GET", ["jobs", id, "report"]) => match daemon.job(id) {
            None => Reply::error(404, "no such job"),
            Some(rec) => match daemon.report_bytes(id) {
                Ok(Some(bytes)) => Reply { status: 200, body: bytes },
                Ok(None) => {
                    Reply::error(409, &format!("job is {}, report not ready", rec.state.name()))
                }
                Err(e) => Reply::error(500, &format!("read report: {e}")),
            },
        },
        ("POST", ["shutdown"]) => {
            // Graceful drain: running jobs stay `Running` on disk (the
            // resume marker the next boot replays), queued jobs stay
            // queued, and the process exits without waiting for studies
            // to finish — their checkpoints make the wait unnecessary.
            let draining = daemon.drain();
            if !draining.is_empty() {
                eprintln!(
                    "ipv6webd: drain: {} running job(s) marked for resume: {}",
                    draining.len(),
                    draining.join(", ")
                );
            }
            return (Reply::ok(), true);
        }
        (_, ["healthz" | "metrics" | "jobs" | "shutdown", ..]) => {
            Reply::error(405, "method not allowed")
        }
        _ => Reply::error(404, "no such route"),
    };
    (reply, false)
}

/// Handles one connection: parse (under `read_deadline`), route, respond.
///
/// The socket's per-read timeout catches a fully stalled peer (blocked
/// `read` returns `WouldBlock`/`TimedOut`); the deadline threaded through
/// [`read_http_request_deadline`] catches the drip-feeding one whose every
/// individual read succeeds. Both answer 408 and close.
fn handle(daemon: &Arc<Daemon>, stream: TcpStream, read_deadline: Duration) -> io::Result<bool> {
    stream.set_read_timeout(Some(read_deadline))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let deadline = Some(Instant::now() + read_deadline);
    let (reply, stop) = match read_http_request_deadline(&mut reader, deadline) {
        Ok(Some(req)) => route(daemon, &req),
        Ok(None) => return Ok(false), // peer closed without a request
        Err(e) if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock) => {
            ipv6web_obs::inc("api.read_timeouts");
            (Reply::error(408, "request read timed out"), false)
        }
        Err(e) => (Reply::error(400, &format!("bad request: {e}")), false),
    };
    stream.write_all(&build_http_response(reply.status, "application/json", &reply.body))?;
    stream.flush()?;
    Ok(stop)
}

/// [`serve`] with an explicit per-request read deadline.
pub fn serve_with_deadline(
    daemon: &Arc<Daemon>,
    listener: TcpListener,
    read_deadline: Duration,
) -> io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        match handle(daemon, stream, read_deadline) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => eprintln!("ipv6webd: connection error: {e}"),
        }
    }
    Ok(())
}

/// Serves the API on `listener` until `POST /shutdown` (or a fatal accept
/// error). Each connection is handled on the accept thread — requests are
/// tiny control-plane exchanges; the studies themselves run on the worker
/// pool, never here. Requests must arrive within
/// [`DEFAULT_READ_DEADLINE`].
pub fn serve(daemon: &Arc<Daemon>, listener: TcpListener) -> io::Result<()> {
    serve_with_deadline(daemon, listener, DEFAULT_READ_DEADLINE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobState;

    fn test_daemon(tag: &str) -> Arc<Daemon> {
        let dir = std::env::temp_dir().join(format!("ipv6webd-api-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (daemon, _) = Daemon::open(&dir, 1).unwrap();
        daemon
    }

    fn get(daemon: &Arc<Daemon>, method: &str, target: &str, body: &str) -> (u16, String) {
        let req = HttpRequest {
            method: method.to_string(),
            target: target.to_string(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        };
        let (reply, _) = route(daemon, &req);
        (reply.status, String::from_utf8(reply.body).unwrap())
    }

    #[test]
    fn healthz_and_metrics_respond() {
        let daemon = test_daemon("health");
        assert_eq!(get(&daemon, "GET", "/healthz", ""), (200, "{\"ok\":true}".to_string()));
        let (status, body) = get(&daemon, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.contains("counters"), "not a snapshot: {body}");
    }

    #[test]
    fn submit_then_fetch_record() {
        let daemon = test_daemon("submit");
        // no workers started: the job stays queued, which is all the
        // routing layer needs to prove
        let (status, body) = get(&daemon, "POST", "/jobs", "{\"scale\": \"quick\", \"seed\": 9}");
        assert_eq!(status, 202, "{body}");
        let rec: crate::job::JobRecord = serde_json::from_str(&body).unwrap();
        assert_eq!(rec.state, JobState::Queued);
        assert_eq!(rec.scenario.seed, 9);

        let (status, body) = get(&daemon, "GET", &format!("/jobs/{}", rec.id), "");
        assert_eq!(status, 200);
        assert!(body.contains(&rec.id));

        let (status, _) = get(&daemon, "GET", "/jobs", "");
        assert_eq!(status, 200);

        // report not ready yet
        let (status, body) = get(&daemon, "GET", &format!("/jobs/{}/report", rec.id), "");
        assert_eq!(status, 409, "{body}");
    }

    #[test]
    fn bad_submissions_are_400() {
        let daemon = test_daemon("bad");
        let (status, body) = get(&daemon, "POST", "/jobs", "{\"scale\": \"galactic\"}");
        assert_eq!(status, 400);
        assert!(body.contains("galactic"), "{body}");
        let (status, _) = get(&daemon, "POST", "/jobs", "not json at all");
        assert_eq!(status, 400);
    }

    #[test]
    fn unknown_routes_and_methods() {
        let daemon = test_daemon("routes");
        assert_eq!(get(&daemon, "GET", "/nope", "").0, 404);
        assert_eq!(get(&daemon, "GET", "/jobs/job-000042-abc", "").0, 404);
        assert_eq!(get(&daemon, "DELETE", "/jobs", "").0, 405);
        assert_eq!(get(&daemon, "GET", "/shutdown", "").0, 405);
        assert!(!daemon.is_shutdown());
    }

    #[test]
    fn shutdown_route_stops_serving() {
        let daemon = test_daemon("shutdown");
        let req = HttpRequest {
            method: "POST".to_string(),
            target: "/shutdown".to_string(),
            headers: vec![],
            body: vec![],
        };
        let (reply, stop) = route(&daemon, &req);
        assert_eq!(reply.status, 200);
        assert!(stop);
        assert!(daemon.is_shutdown());
        // submissions after shutdown are refused
        let (status, _) = get(&daemon, "POST", "/jobs", "");
        assert_eq!(status, 400);
    }
}
