//! The crash-safe on-disk job store.
//!
//! One directory holds everything the daemon must survive a `SIGKILL`
//! with, keyed by job id:
//!
//! * `{id}.json` — the [`JobRecord`], rewritten (atomic temp+rename) on
//!   every state change;
//! * `{id}.ckpt/` — the study's per-vantage round checkpoints (the PR 3
//!   substrate), which is what lets a rebooted daemon resume a killed job
//!   from its last completed round;
//! * `{id}.report.json` — the finished report, byte-identical to
//!   `repro --json` output for the same scenario.
//!
//! [`JobStore::scan`] is the boot path: it deletes torn `*.tmp` leftovers
//! (a crash mid-write), quarantines unparseable records as `*.corrupt`
//! (never half-reads them), and returns the surviving records in
//! submission order.

use crate::job::JobRecord;
use std::io;
use std::path::{Path, PathBuf};

/// Handle on the store directory. All writes are atomic temp+rename, so a
/// reader (or the next boot) only ever sees complete documents.
#[derive(Debug, Clone)]
pub struct JobStore {
    dir: PathBuf,
}

/// What a boot-time [`JobStore::scan`] found.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Parseable records, sorted by submission sequence.
    pub records: Vec<JobRecord>,
    /// Records that failed to parse, renamed to `*.corrupt` and skipped.
    pub quarantined: Vec<PathBuf>,
    /// Torn `*.tmp` files from a crash mid-write, deleted.
    pub removed_tmp: usize,
}

impl JobStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    pub fn open(dir: &Path) -> io::Result<JobStore> {
        std::fs::create_dir_all(dir)?;
        Ok(JobStore { dir: dir.to_path_buf() })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a job's record document.
    pub fn record_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.json"))
    }

    /// Path of a job's finished report.
    pub fn report_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.report.json"))
    }

    /// Per-job checkpoint directory handed to the study driver.
    pub fn checkpoint_dir(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.ckpt"))
    }

    /// Atomically writes `bytes` to `path` via a `.tmp` sibling + rename.
    fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Persists a record (atomic; overwrites any previous version).
    pub fn save(&self, record: &JobRecord) -> io::Result<()> {
        let json = serde_json::to_string_pretty(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Self::write_atomic(&self.record_path(&record.id), json.as_bytes())
    }

    /// Persists a finished report (atomic).
    pub fn save_report(&self, id: &str, bytes: &[u8]) -> io::Result<()> {
        Self::write_atomic(&self.report_path(id), bytes)
    }

    /// Reads a finished report back, `None` when absent.
    pub fn load_report(&self, id: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.report_path(id)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Boot-time recovery sweep over the store directory.
    pub fn scan(&self) -> io::Result<ScanOutcome> {
        let mut out = ScanOutcome::default();
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&self.dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort(); // deterministic quarantine order for logs/tests
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            if name.ends_with(".tmp") {
                std::fs::remove_file(&path)?;
                out.removed_tmp += 1;
                continue;
            }
            if !name.starts_with("job-")
                || !name.ends_with(".json")
                || name.ends_with(".report.json")
            {
                continue;
            }
            let parsed = std::fs::read_to_string(&path)
                .ok()
                .and_then(|text| serde_json::from_str::<JobRecord>(&text).ok())
                .filter(|rec| format!("{}.json", rec.id) == name);
            match parsed {
                Some(rec) => out.records.push(rec),
                None => {
                    let corrupt = path.with_extension("json.corrupt");
                    std::fs::rename(&path, &corrupt)?;
                    ipv6web_obs::inc("store.quarantined");
                    out.quarantined.push(corrupt);
                }
            }
        }
        out.records.sort_by_key(|r| r.seq);
        Ok(out)
    }

    /// Highest sequence number present (0 when the store is empty),
    /// including quarantined records' file names being ignored — sequence
    /// continuity across a quarantine is not required, only uniqueness.
    pub fn next_seq(records: &[JobRecord]) -> u64 {
        records.iter().map(|r| r.seq).max().unwrap_or(0) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobRecord, JobState};
    use ipv6web_core::Scenario;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ipv6webd-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_scan_roundtrip() {
        let dir = tmpdir("roundtrip");
        let store = JobStore::open(&dir).unwrap();
        let mut a = JobRecord::new(1, Scenario::quick(1), false);
        let b = JobRecord::new(2, Scenario::quick(2), true);
        a.state = JobState::Running;
        store.save(&a).unwrap();
        store.save(&b).unwrap();
        store.save_report(&b.id, b"{}").unwrap();

        let scan = store.scan().unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].id, a.id);
        assert_eq!(scan.records[0].state, JobState::Running);
        assert_eq!(scan.records[1].id, b.id);
        assert!(scan.quarantined.is_empty());
        assert_eq!(scan.removed_tmp, 0);
        assert_eq!(store.load_report(&b.id).unwrap().unwrap(), b"{}");
        assert_eq!(store.load_report(&a.id).unwrap(), None);
        assert_eq!(JobStore::next_seq(&scan.records), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_removes_tmp_and_quarantines_corrupt() {
        let dir = tmpdir("recovery");
        let store = JobStore::open(&dir).unwrap();
        let good = JobRecord::new(1, Scenario::quick(1), false);
        store.save(&good).unwrap();
        // a crash mid-write leaves a torn temp file
        std::fs::write(dir.join("job-000002-beef.json.tmp"), b"{\"id\": \"job-0000").unwrap();
        // and a record truncated at some earlier point is unparseable
        std::fs::write(dir.join("job-000003-dead.json"), b"{\"id\": \"job-000003-dead\"").unwrap();

        let scan = store.scan().unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].id, good.id);
        assert_eq!(scan.removed_tmp, 1);
        assert_eq!(scan.quarantined.len(), 1);
        assert!(scan.quarantined[0].ends_with("job-000003-dead.json.corrupt"));
        assert!(!dir.join("job-000002-beef.json.tmp").exists());
        assert!(dir.join("job-000003-dead.json.corrupt").exists());
        // a second scan is a no-op: corrupt files stay quarantined
        let again = store.scan().unwrap();
        assert_eq!(again.records.len(), 1);
        assert_eq!(again.quarantined.len(), 0);
        assert_eq!(again.removed_tmp, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_ignores_reports_and_foreign_files() {
        let dir = tmpdir("foreign");
        let store = JobStore::open(&dir).unwrap();
        let rec = JobRecord::new(1, Scenario::quick(1), false);
        store.save(&rec).unwrap();
        store.save_report(&rec.id, b"not a record").unwrap();
        std::fs::write(dir.join("README.txt"), b"hello").unwrap();
        std::fs::create_dir_all(store.checkpoint_dir(&rec.id)).unwrap();

        let scan = store.scan().unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_under_wrong_filename_is_quarantined() {
        // a record whose body does not match its file name (e.g. a stray
        // copy) must not be trusted as that job
        let dir = tmpdir("mismatch");
        let store = JobStore::open(&dir).unwrap();
        let rec = JobRecord::new(1, Scenario::quick(1), false);
        let json = serde_json::to_string_pretty(&rec).unwrap();
        std::fs::write(dir.join("job-000009-cafe.json"), json).unwrap();
        let scan = store.scan().unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.quarantined.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
