//! `ipv6webd` — the study service.
//!
//! The paper's measurement campaign ran for about a year as a long-lived
//! monitoring deployment; this crate gives the reproduction the same
//! operational shape. `ipv6webd` is a daemon that accepts campaign/sweep
//! jobs over HTTP+JSON, runs them on a worker pool under the global
//! `IPV6WEB_THREADS` budget, and persists every job through a crash-safe
//! store so a killed process resumes each in-flight study from its last
//! completed round on the next boot.
//!
//! The moving parts:
//!
//! * [`job`] — [`JobSpec`] (what clients submit) and [`JobRecord`] (what
//!   the daemon persists and serves);
//! * [`store`] — the atomic temp+rename job store: records, per-job
//!   checkpoint directories, finished reports, and the boot-time recovery
//!   sweep;
//! * [`worlds`] — one shared `Arc<World>` (with its memoized route
//!   tables) per distinct scenario, across concurrent jobs;
//! * [`daemon`] — the queue, the worker pool, and the runner that streams
//!   per-phase progress from obs spans into each record;
//! * [`api`] — the HTTP routes, on `ipv6web-web`'s wire substrate.
//!
//! Reports produced by a job are **byte-identical** to `repro --json`
//! output for the same scenario — the daemon is an execution shell around
//! the same deterministic pipeline, and CI holds it to that.

pub mod api;
pub mod daemon;
pub mod job;
pub mod store;
pub mod worlds;

pub use api::serve;
pub use daemon::{BootReport, Daemon};
pub use job::{JobRecord, JobSpec, JobState};
pub use store::{JobStore, ScanOutcome};
pub use worlds::WorldCache;
