//! The daemon core: job queue, worker pool, and the study runner.
//!
//! [`Daemon::open`] replays the job store (deleting torn temp files,
//! quarantining corrupt records, re-queuing every job that was queued or
//! in flight when the previous process died), then [`Daemon::start`]
//! spawns the worker pool. Workers pull jobs off one shared queue; each
//! worker `w` of `W` runs its studies inside
//! `with_allowance(worker_share(thread_count(), W, w))`, so concurrent
//! jobs split the global `IPV6WEB_THREADS` budget exactly like the
//! study's own two-level fan-out — the pool never oversubscribes.
//!
//! While a study runs, an obs span sink on the worker thread streams each
//! completed top-level phase into the job record (persisted atomically),
//! so `GET /jobs/:id` shows live per-phase progress. Reports written by a
//! job are byte-identical to `repro --json` output for the same scenario.

use crate::job::{JobRecord, JobSpec, JobState};
use crate::store::JobStore;
use crate::worlds::WorldCache;
use ipv6web_core::{run_study_on_world, SpanRecord};
use ipv6web_par::{thread_count, with_allowance, worker_share};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};

/// What boot-time store recovery found and did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BootReport {
    /// Jobs found mid-flight (running, or done without a report) and
    /// re-queued to resume from their checkpoints.
    pub resumed: usize,
    /// Jobs that were still queued and went straight back on the queue.
    pub requeued: usize,
    /// Corrupt records quarantined as `*.corrupt`.
    pub quarantined: usize,
    /// Torn `*.tmp` files deleted.
    pub removed_tmp: usize,
}

struct DaemonState {
    jobs: BTreeMap<String, JobRecord>,
    queue: VecDeque<String>,
    next_seq: u64,
    shutdown: bool,
}

/// The long-running study service behind the HTTP API.
pub struct Daemon {
    store: JobStore,
    worlds: WorldCache,
    workers: usize,
    state: Mutex<DaemonState>,
    work: Condvar,
}

impl Daemon {
    /// Opens the store at `dir`, replays it, and builds the daemon with a
    /// pool of `workers` job slots (clamped to ≥ 1).
    pub fn open(dir: &Path, workers: usize) -> io::Result<(Arc<Daemon>, BootReport)> {
        let store = JobStore::open(dir)?;
        let scan = store.scan()?;
        let mut boot = BootReport {
            quarantined: scan.quarantined.len(),
            removed_tmp: scan.removed_tmp,
            ..BootReport::default()
        };
        let next_seq = JobStore::next_seq(&scan.records);
        let mut jobs = BTreeMap::new();
        let mut queue = VecDeque::new();
        for mut rec in scan.records {
            match rec.state {
                JobState::Queued => {
                    boot.requeued += 1;
                    queue.push_back(rec.id.clone());
                }
                JobState::Running => {
                    // killed mid-flight: resume from its checkpoints
                    rec.state = JobState::Queued;
                    rec.resumes += 1;
                    rec.phases.clear();
                    store.save(&rec)?;
                    boot.resumed += 1;
                    queue.push_back(rec.id.clone());
                }
                JobState::Done => {
                    if store.load_report(&rec.id)?.is_none() {
                        // marked done but the report never landed: re-run
                        rec.state = JobState::Queued;
                        rec.resumes += 1;
                        rec.phases.clear();
                        store.save(&rec)?;
                        boot.resumed += 1;
                        queue.push_back(rec.id.clone());
                    }
                }
                JobState::Failed => {}
            }
            jobs.insert(rec.id.clone(), rec);
        }
        let daemon = Daemon {
            store,
            worlds: WorldCache::new(),
            workers: workers.max(1),
            state: Mutex::new(DaemonState { jobs, queue, next_seq, shutdown: false }),
            work: Condvar::new(),
        };
        Ok((Arc::new(daemon), boot))
    }

    /// Spawns the worker pool. Join the handles after [`Daemon::shutdown`]
    /// to wait for in-flight jobs to finish.
    pub fn start(self: &Arc<Self>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.workers)
            .map(|w| {
                let daemon = self.clone();
                std::thread::Builder::new()
                    .name(format!("ipv6webd-worker-{w}"))
                    .spawn(move || daemon.worker_loop(w))
                    .expect("spawn worker")
            })
            .collect()
    }

    /// The job store this daemon persists through.
    pub fn store(&self) -> &JobStore {
        &self.store
    }

    /// Accepts a job: resolves the spec, persists a queued record, and
    /// wakes a worker. Returns the accepted record.
    pub fn submit(&self, spec: &JobSpec) -> Result<JobRecord, String> {
        let (scenario, mode) = spec.resolve()?;
        let sequential = mode == ipv6web_core::ExecutionMode::Sequential;
        let mut state = self.state.lock().expect("daemon state lock");
        if state.shutdown {
            return Err("daemon is shutting down".into());
        }
        let rec = JobRecord::new(state.next_seq, scenario, sequential);
        state.next_seq += 1;
        self.store.save(&rec).map_err(|e| format!("persist job: {e}"))?;
        state.jobs.insert(rec.id.clone(), rec.clone());
        state.queue.push_back(rec.id.clone());
        ipv6web_obs::inc("daemon.jobs.submitted");
        drop(state);
        self.work.notify_one();
        Ok(rec)
    }

    /// Snapshot of one job record.
    pub fn job(&self, id: &str) -> Option<JobRecord> {
        self.state.lock().expect("daemon state lock").jobs.get(id).cloned()
    }

    /// Snapshot of every job record, in submission order.
    pub fn jobs(&self) -> Vec<JobRecord> {
        let state = self.state.lock().expect("daemon state lock");
        let mut all: Vec<JobRecord> = state.jobs.values().cloned().collect();
        all.sort_by_key(|r| r.seq);
        all
    }

    /// A finished job's report bytes (exactly what was written to disk).
    pub fn report_bytes(&self, id: &str) -> io::Result<Option<Vec<u8>>> {
        self.store.load_report(id)
    }

    /// Stops accepting work and wakes every idle worker so it can exit.
    /// Jobs already executing run to completion (checkpointing as they
    /// go); jobs still queued stay queued on disk for the next boot.
    pub fn shutdown(&self) {
        self.state.lock().expect("daemon state lock").shutdown = true;
        self.work.notify_all();
    }

    /// `true` once [`Daemon::shutdown`] has been called.
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().expect("daemon state lock").shutdown
    }

    /// Graceful drain for `POST /shutdown`: stops accepting work, wakes
    /// idle workers, re-persists every running job (its `Running` state
    /// on disk *is* the resume marker the next boot replays into a
    /// re-queue), and returns the draining job ids. The process may exit
    /// immediately afterwards — in-flight studies checkpoint as they go,
    /// so a restarted daemon resumes them and produces identical bytes.
    pub fn drain(&self) -> Vec<String> {
        let mut state = self.state.lock().expect("daemon state lock");
        state.shutdown = true;
        let mut draining = Vec::new();
        for rec in state.jobs.values() {
            if rec.state == JobState::Running {
                // flush the record now: drain must not depend on any
                // later update landing before the process exits
                if let Err(e) = self.store.save(rec) {
                    eprintln!("ipv6webd: drain persist {}: {e}", rec.id);
                }
                draining.push(rec.id.clone());
            }
        }
        drop(state);
        self.work.notify_all();
        ipv6web_obs::flush_thread();
        draining
    }

    /// Mutates a record under the state lock and persists the result.
    fn update(&self, id: &str, f: impl FnOnce(&mut JobRecord)) {
        let mut state = self.state.lock().expect("daemon state lock");
        let Some(rec) = state.jobs.get_mut(id) else { return };
        f(rec);
        let snapshot = rec.clone();
        // persist inside the lock: updates to one record never reorder
        if let Err(e) = self.store.save(&snapshot) {
            eprintln!("ipv6webd: persist {id}: {e}");
        }
    }

    fn worker_loop(self: Arc<Self>, w: usize) {
        loop {
            let id = {
                let mut state = self.state.lock().expect("daemon state lock");
                loop {
                    if state.shutdown {
                        return;
                    }
                    if let Some(id) = state.queue.pop_front() {
                        break id;
                    }
                    state = self.work.wait(state).expect("daemon state lock");
                }
            };
            // each worker gets its share of the global budget, so W
            // concurrent studies never oversubscribe IPV6WEB_THREADS
            let share = worker_share(thread_count(), self.workers, w);
            with_allowance(share, || self.run_job(&id));
            ipv6web_obs::flush_thread();
        }
    }

    /// Executes one job end to end on the calling worker thread.
    fn run_job(self: &Arc<Self>, id: &str) {
        self.update(id, |r| {
            r.state = JobState::Running;
            r.error = None;
        });
        let Some(record) = self.job(id) else { return };
        let world = self.worlds.get(&record.scenario);
        let ckpt = self.store.checkpoint_dir(id);

        // Stream each completed top-level phase into the record. Both the
        // span's own drop and its re-attachment at a fan-out join stream
        // the same record, so membership-dedupe keeps each phase once.
        let sink_daemon = self.clone();
        let sink_id = id.to_string();
        let prev = ipv6web_obs::set_span_sink(Some(Arc::new(move |span: &SpanRecord| {
            if span.depth == 0 {
                sink_daemon.update(&sink_id, |r| {
                    if !r.phases.contains(span) {
                        r.phases.push(span.clone());
                    }
                });
            }
        })));
        let result = run_study_on_world(&world, record.mode(), Some(&ckpt));
        ipv6web_obs::set_span_sink(prev);

        match result {
            Ok(study) => {
                // the exact bytes `repro --json` would write (with
                // --metrics, i.e. the pure report, no timings key)
                let json = serde_json::to_string_pretty(&study.report).expect("report serializes");
                let phases: Vec<SpanRecord> =
                    study.timings.phases.iter().filter(|p| p.depth == 0).cloned().collect();
                match self.store.save_report(id, json.as_bytes()) {
                    Ok(()) => {
                        ipv6web_obs::inc("daemon.jobs.done");
                        self.update(id, |r| {
                            r.state = JobState::Done;
                            r.phases = phases;
                        });
                    }
                    Err(e) => {
                        ipv6web_obs::inc("daemon.jobs.failed");
                        self.update(id, |r| {
                            r.state = JobState::Failed;
                            r.error = Some(format!("write report: {e}"));
                        });
                    }
                }
            }
            Err(e) => {
                ipv6web_obs::inc("daemon.jobs.failed");
                self.update(id, |r| {
                    r.state = JobState::Failed;
                    r.error = Some(e.to_string());
                });
            }
        }
    }
}
