//! Job specifications and records — the unit of work `ipv6webd` accepts.
//!
//! A client `POST`s a [`JobSpec`] (a named scale, or a full inline
//! [`Scenario`], plus an optional fault plan); the daemon resolves it to a
//! concrete scenario, stamps it into a [`JobRecord`], and persists that
//! record through every state change so a killed daemon can pick the job
//! back up from its checkpoints on the next boot.

use ipv6web_bench::Scale;
use ipv6web_core::{ExecutionMode, Scenario, SpanRecord};
use ipv6web_faults::FaultPlan;
use serde::{DeError, Deserialize, Serialize, Value};

/// What a client submits to `POST /jobs`.
///
/// Either a named `scale` (with an optional `seed`, default 42) or a full
/// inline `scenario` — not both. An optional `fault_plan` overlays the
/// resolved scenario, and `sequential: true` forces the reference
/// [`ExecutionMode::Sequential`] pipeline (the default is vantage-parallel;
/// both produce byte-identical reports).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JobSpec {
    /// Named scale: `quick`, `paper`, `faults`, `internet`,
    /// `internet-smoke`, `nat64`, `panel`.
    pub scale: Option<String>,
    /// Seed for a named scale (default 42). Rejected alongside an inline
    /// scenario, which carries its own seed.
    pub seed: Option<u64>,
    /// Full inline scenario; overrides `scale`/`seed`.
    pub scenario: Option<Scenario>,
    /// Fault plan overlay for the resolved scenario.
    pub fault_plan: Option<FaultPlan>,
    /// Run the reference sequential pipeline instead of vantage-parallel.
    pub sequential: Option<bool>,
}

impl JobSpec {
    /// Resolves the spec into a validated scenario and execution mode.
    ///
    /// The scenario's `checkpoint_dir` is always cleared: the job store
    /// owns checkpoint placement (one directory per job id), and a
    /// client-supplied path would break resume-on-restart.
    pub fn resolve(&self) -> Result<(Scenario, ExecutionMode), String> {
        let mut scenario = match (&self.scenario, &self.scale) {
            (Some(_), Some(_)) => {
                return Err("give either `scale` or an inline `scenario`, not both".into())
            }
            (Some(sc), None) => {
                if self.seed.is_some() {
                    return Err("`seed` only applies to a named `scale`; \
                                an inline scenario carries its own seed"
                        .into());
                }
                sc.clone()
            }
            (None, scale) => {
                let name = scale.as_deref().unwrap_or("quick");
                let scale = Scale::parse(name).ok_or_else(|| {
                    format!(
                        "unknown scale `{name}` (expected quick, paper, faults, \
                         internet, internet-smoke, nat64, or panel)"
                    )
                })?;
                scale.scenario(self.seed.unwrap_or(42))
            }
        };
        if let Some(plan) = &self.fault_plan {
            scenario.faults = plan.clone();
        }
        scenario.checkpoint_dir = None;
        scenario.validate().map_err(|msg| format!("invalid scenario: {msg}"))?;
        let mode = if self.sequential.unwrap_or(false) {
            ExecutionMode::Sequential
        } else {
            ExecutionMode::VantageParallel
        };
        Ok((scenario, mode))
    }
}

/// Lifecycle of a job. Serialized as its lowercase name, which is what CI
/// polls for (`"running"`, `"done"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing the study (checkpointing every round).
    Running,
    /// Finished; the report file is on disk.
    Done,
    /// The study returned an error (recorded on the job).
    Failed,
}

impl JobState {
    /// Lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Inverse of [`JobState::name`].
    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            _ => None,
        }
    }
}

impl Serialize for JobState {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for JobState {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => {
                JobState::parse(s).ok_or_else(|| DeError::new(format!("unknown job state `{s}`")))
            }
            other => Err(DeError::new(format!("job state must be a string, got {other:?}"))),
        }
    }
}

/// The persisted (and served) form of a job. Every mutation is written
/// back to the store with an atomic temp+rename, so the on-disk record is
/// always a complete JSON document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// `job-{seq:06}-{config_hash:016x}` — stable across restarts.
    pub id: String,
    /// Submission sequence number (defines queue order after a reboot).
    pub seq: u64,
    /// Hex [`Scenario::config_hash`] of the resolved scenario.
    pub config_hash: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// `true` when the job runs the reference sequential pipeline.
    pub sequential: bool,
    /// How many daemon boots have picked this job back up mid-flight.
    pub resumes: u64,
    /// Failure message when `state == failed`.
    pub error: Option<String>,
    /// Completed top-level study phases, streamed from the obs span log
    /// while the job runs (`campaign: Penn`, `analysis`, …).
    pub phases: Vec<SpanRecord>,
    /// The fully resolved scenario this job runs.
    pub scenario: Scenario,
}

impl JobRecord {
    /// Builds a fresh queued record for a resolved scenario.
    pub fn new(seq: u64, scenario: Scenario, sequential: bool) -> JobRecord {
        let hash = scenario.config_hash();
        JobRecord {
            id: format!("job-{seq:06}-{hash:016x}"),
            seq,
            config_hash: format!("{hash:016x}"),
            state: JobState::Queued,
            sequential,
            resumes: 0,
            error: None,
            phases: Vec::new(),
            scenario,
        }
    }

    /// Execution mode implied by the record.
    pub fn mode(&self) -> ExecutionMode {
        if self.sequential {
            ExecutionMode::Sequential
        } else {
            ExecutionMode::VantageParallel
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_resolves_to_quick_42() {
        let (scenario, mode) = JobSpec::default().resolve().unwrap();
        assert_eq!(scenario, Scenario::quick(42));
        assert_eq!(mode, ExecutionMode::VantageParallel);
    }

    #[test]
    fn named_scale_and_seed() {
        let spec = JobSpec {
            scale: Some("faults".into()),
            seed: Some(7),
            sequential: Some(true),
            ..JobSpec::default()
        };
        let (scenario, mode) = spec.resolve().unwrap();
        assert_eq!(scenario, Scenario::faults(7));
        assert_eq!(mode, ExecutionMode::Sequential);
    }

    #[test]
    fn inline_scenario_strips_checkpoint_dir() {
        let mut inline = Scenario::quick(3);
        inline.checkpoint_dir = Some("/somewhere/else".into());
        let spec = JobSpec { scenario: Some(inline), ..JobSpec::default() };
        let (scenario, _) = spec.resolve().unwrap();
        assert_eq!(scenario.checkpoint_dir, None);
    }

    #[test]
    fn conflicting_and_invalid_specs_are_rejected() {
        let both = JobSpec {
            scale: Some("quick".into()),
            scenario: Some(Scenario::quick(1)),
            ..JobSpec::default()
        };
        assert!(both.resolve().is_err());

        let seed_with_inline =
            JobSpec { scenario: Some(Scenario::quick(1)), seed: Some(9), ..JobSpec::default() };
        assert!(seed_with_inline.resolve().is_err());

        let bad_scale = JobSpec { scale: Some("galactic".into()), ..JobSpec::default() };
        assert!(bad_scale.resolve().unwrap_err().contains("galactic"));

        let mut broken = Scenario::quick(1);
        broken.campaign.workers = 0;
        let invalid = JobSpec { scenario: Some(broken), ..JobSpec::default() };
        assert!(invalid.resolve().unwrap_err().contains("invalid scenario"));
    }

    #[test]
    fn fault_plan_overlay_applies() {
        let plan = Scenario::faults(1).faults;
        assert!(!plan.is_empty());
        let spec = JobSpec { fault_plan: Some(plan.clone()), ..JobSpec::default() };
        let (scenario, _) = spec.resolve().unwrap();
        assert_eq!(scenario.faults, plan);
    }

    #[test]
    fn job_state_roundtrips_lowercase() {
        for st in [JobState::Queued, JobState::Running, JobState::Done, JobState::Failed] {
            assert_eq!(JobState::parse(st.name()), Some(st));
            let json = serde_json::to_string(&st).unwrap();
            assert_eq!(json, format!("\"{}\"", st.name()));
            assert_eq!(serde_json::from_str::<JobState>(&json).unwrap(), st);
        }
        assert!(serde_json::from_str::<JobState>("\"paused\"").is_err());
    }

    #[test]
    fn record_roundtrips_through_json() {
        let rec = JobRecord::new(3, Scenario::quick(11), true);
        assert!(rec.id.starts_with("job-000003-"));
        assert_eq!(rec.config_hash, format!("{:016x}", Scenario::quick(11).config_hash()));
        let json = serde_json::to_string_pretty(&rec).unwrap();
        let back: JobRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, rec.id);
        assert_eq!(back.state, JobState::Queued);
        assert_eq!(back.scenario, rec.scenario);
    }
}
