//! `ipv6webd` — serve study jobs over HTTP.
//!
//! ```sh
//! ipv6webd --store jobs/                          # 127.0.0.1:8642
//! ipv6webd --store jobs/ --listen 127.0.0.1:9000 --jobs 4
//! ```
//!
//! Boot replays the store: torn temp files are deleted, corrupt records
//! quarantined, and every job that was queued or mid-flight when the
//! previous process died goes back on the queue to resume from its
//! checkpoints. The bound address is printed on stdout once the daemon
//! is accepting connections.

use ipv6web_daemon::{api, Daemon};
use std::net::TcpListener;

fn usage() -> ! {
    eprintln!(
        "usage: ipv6webd --store DIR [--listen ADDR] [--jobs N]\n\
         \x20 --store DIR    job store directory (created if missing)\n\
         \x20 --listen ADDR  bind address (default 127.0.0.1:8642; port 0 picks one)\n\
         \x20 --jobs N       concurrent job slots (default 2)"
    );
    std::process::exit(2)
}

fn main() {
    let mut store_dir: Option<String> = None;
    let mut listen = "127.0.0.1:8642".to_string();
    let mut jobs = 2usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => store_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--listen" => listen = it.next().unwrap_or_else(|| usage()),
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| usage());
                jobs = v.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    let Some(store_dir) = store_dir else { usage() };

    // metrics on from the start: /metrics serves the merged obs state
    ipv6web_obs::enable();

    let (daemon, boot) = Daemon::open(store_dir.as_ref(), jobs).unwrap_or_else(|e| {
        eprintln!("ipv6webd: open store {store_dir}: {e}");
        std::process::exit(2);
    });
    if boot != ipv6web_daemon::BootReport::default() {
        eprintln!(
            "ipv6webd: store replay: {} resumed, {} requeued, {} quarantined, {} temp files removed",
            boot.resumed, boot.requeued, boot.quarantined, boot.removed_tmp
        );
    }
    let listener = TcpListener::bind(&listen).unwrap_or_else(|e| {
        eprintln!("ipv6webd: bind {listen}: {e}");
        std::process::exit(2);
    });
    let addr = listener.local_addr().expect("bound address");
    let handles = daemon.start();

    // stdout, and flushed: launch scripts parse this line for the port
    println!("ipv6webd listening on http://{addr} (store {store_dir}, {jobs} job slots)");
    use std::io::Write;
    std::io::stdout().flush().expect("flush stdout");

    if let Err(e) = api::serve(&daemon, listener) {
        eprintln!("ipv6webd: serve: {e}");
    }
    // Graceful drain: running jobs are flushed to disk still marked
    // Running — the resume marker boot replays — and the process exits
    // without waiting for them. Studies checkpoint as they go, so the
    // restarted daemon resumes mid-campaign and writes identical bytes.
    let draining = daemon.drain();
    eprintln!("ipv6webd: drained ({} job(s) will resume on restart)", draining.len());
    ipv6web_obs::flush_thread();
    drop(handles); // crash-only: never block the exit on in-flight studies
    std::process::exit(0);
}
