//! Sharing built worlds (and their memoized route tables) across jobs.
//!
//! Building a [`World`] is the expensive part of a study — the route
//! tables alone are destinations × ASes of next-hop state. Two concurrent
//! jobs with the same resolved scenario must not pay that twice, so the
//! daemon keys built worlds by [`Scenario::config_hash`] (which strips
//! `checkpoint_dir` — per-job checkpoint placement never forks a world)
//! and hands out clones of one `Arc<World>`.

use ipv6web_core::{Scenario, World};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Daemon-lifetime cache of built worlds, keyed by scenario identity.
#[derive(Default)]
pub struct WorldCache {
    worlds: Mutex<HashMap<u64, Arc<World>>>,
}

impl WorldCache {
    /// A fresh, empty cache.
    pub fn new() -> WorldCache {
        WorldCache::default()
    }

    /// Returns the shared world for `scenario`, building it on first use.
    ///
    /// The build happens under the cache lock: a second same-config job
    /// arriving mid-build blocks and then reuses the finished world
    /// instead of racing a duplicate build. Counters `daemon.world.built`
    /// and `daemon.world.reused` record which path each request took.
    pub fn get(&self, scenario: &Scenario) -> Arc<World> {
        let key = scenario.config_hash();
        let mut worlds = self.worlds.lock().expect("world cache lock");
        if let Some(world) = worlds.get(&key) {
            ipv6web_obs::inc("daemon.world.reused");
            return world.clone();
        }
        ipv6web_obs::inc("daemon.world.built");
        let world = Arc::new(World::build(&scenario.identity_scenario()));
        worlds.insert(key, world.clone());
        world
    }

    /// Number of distinct worlds currently cached.
    pub fn len(&self) -> usize {
        self.worlds.lock().expect("world cache lock").len()
    }

    /// `true` when nothing has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_config_shares_one_world() {
        let cache = WorldCache::new();
        let mut a = Scenario::quick(5);
        // a different checkpoint_dir must not fork the world
        let mut b = a.clone();
        b.checkpoint_dir = Some("/tmp/elsewhere".into());
        let wa = cache.get(&a);
        let wb = cache.get(&b);
        assert!(Arc::ptr_eq(&wa, &wb));
        assert_eq!(cache.len(), 1);

        a.seed += 1;
        let wc = cache.get(&a);
        assert!(!Arc::ptr_eq(&wa, &wc));
        assert_eq!(cache.len(), 2);
    }
}
