//! Projects a site population into the DNS zone database.

use crate::site::Site;
use ipv6web_dns::{NameTable, ZoneDb, ZoneEntry};
use ipv6web_packet::tunnel::to_6to4;
use ipv6web_topology::Topology;

/// Default record TTL for generated zones, seconds.
pub const DEFAULT_TTL: u32 = 300;

/// Builds the authoritative zone for all `sites`:
///
/// * A record → a host in the site's IPv4 AS;
/// * AAAA record → a host in the origin AS's IPv6 prefix, or the 6to4
///   mapping of the site's IPv4 address (RFC 3056) for `via_6to4` sites;
/// * AAAA publication week carried through for timeline-aware queries.
///
/// The zone adopts the population's `names` table, so the interned
/// [`Site::name`] ids stay valid for id-based lookups against the zone.
pub fn build_zone(topo: &Topology, sites: &[Site], names: NameTable) -> ZoneDb {
    let mut db = ZoneDb::with_names(names);
    for site in sites {
        let v4 = topo.node(site.v4_as).v4_host(site.id.0);
        let (v6, v6_from_week) = match &site.v6 {
            Some(p) => {
                let addr = if p.via_6to4 {
                    Some(to_6to4(v4))
                } else {
                    topo.node(p.dest_as).v6_host(site.id.0)
                };
                (addr, p.from_week)
            }
            None => (None, 0),
        };
        db.insert_id(site.name, ZoneEntry { v4, v6, v6_from_week, ttl: DEFAULT_TTL });
    }
    ipv6web_obs::add("web.zone_entries", db.len() as u64);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{generate, PopulationConfig};
    use ipv6web_dns::RecordType;
    use ipv6web_packet::tunnel::is_6to4;
    use ipv6web_topology::{generate as gen_topo, TopologyConfig};

    fn setup() -> (ipv6web_topology::Topology, Vec<Site>, ZoneDb) {
        let topo = gen_topo(&TopologyConfig::test_small(), 7);
        let (sites, names) = generate(&PopulationConfig::test_small(60), &topo, 7);
        let db = build_zone(&topo, &sites, names);
        (topo, sites, db)
    }

    #[test]
    fn every_site_has_an_a_record() {
        let (_, sites, db) = setup();
        assert_eq!(db.len(), sites.len());
        for s in sites.iter().take(100) {
            let name = db.name_of(s.name);
            let ans = db.query(name, RecordType::A, 0).unwrap();
            assert_eq!(ans.len(), 1, "{name}");
        }
    }

    #[test]
    fn a_record_lands_in_v4_as_prefix() {
        let (topo, sites, db) = setup();
        for s in sites.iter().take(200) {
            let name = db.name_of(s.name);
            let ans = db.query(name, RecordType::A, 0).unwrap();
            let ipv6web_dns::RecordData::V4(addr) = ans[0].data else {
                panic!("A record must carry v4 addr");
            };
            assert!(
                topo.node(s.v4_as).v4_prefix.contains(addr),
                "{name} addr {addr} outside AS prefix"
            );
        }
    }

    #[test]
    fn aaaa_only_for_dual_sites_after_their_week() {
        let (_, sites, db) = setup();
        let late_week = 10_000;
        for s in &sites {
            let name = db.name_of(s.name);
            let dual = db.is_dual_stack(name, late_week);
            assert_eq!(dual, s.v6.is_some(), "{name}");
        }
    }

    #[test]
    fn sixto4_sites_get_2002_addresses() {
        let (_, sites, db) = setup();
        let sixto4: Vec<&Site> =
            sites.iter().filter(|s| s.v6.as_ref().is_some_and(|v| v.via_6to4)).collect();
        assert!(!sixto4.is_empty(), "population must contain 6to4 sites");
        for s in sixto4 {
            let name = db.name_of(s.name);
            let ans = db.query(name, RecordType::Aaaa, 10_000).unwrap();
            let ipv6web_dns::RecordData::V6(addr) = ans[0].data else {
                panic!("AAAA must carry v6 addr");
            };
            assert!(is_6to4(addr), "{name} should be 2002::/16, got {addr}");
        }
    }

    #[test]
    fn native_v6_sites_land_in_origin_prefix() {
        let (topo, sites, db) = setup();
        let native: Vec<&Site> =
            sites.iter().filter(|s| s.v6.as_ref().is_some_and(|v| !v.via_6to4)).take(100).collect();
        assert!(!native.is_empty());
        for s in native {
            let name = db.name_of(s.name);
            let ans = db.query(name, RecordType::Aaaa, 10_000).unwrap();
            let ipv6web_dns::RecordData::V6(addr) = ans[0].data else {
                panic!("AAAA must carry v6 addr");
            };
            let origin = s.v6.as_ref().unwrap().dest_as;
            let prefix = topo.node(origin).v6.as_ref().unwrap().prefix;
            assert!(prefix.contains(addr), "{name}: {addr} outside {prefix}");
        }
    }

    #[test]
    fn site_name_ids_resolve_in_zone() {
        let (_, sites, db) = setup();
        for s in sites.iter().take(50) {
            assert_eq!(db.name_of(s.name), format!("site{}.web.example", s.id.0));
            assert!(db.entry_by_id(s.name).is_some());
        }
    }
}
