//! Server-side behaviour per site.
//!
//! The paper cannot instrument servers directly; it infers server effects
//! (factor **S** in Section 4) statistically. The simulator makes the
//! ground truth explicit: a server has a processing latency and a
//! throughput cap, and its IPv6 *service factor* scales both — 1.0 is
//! parity, lower values model the 2011 reality of IPv6 served by slower
//! paths inside the hosting stack (software routers, shims, under-tuned
//! front-ends). References \[8,9\] of the paper report IPv6 server
//! performance "at best similar" to IPv4, so factors never exceed 1.0.

use ipv6web_topology::Family;
use serde::{Deserialize, Serialize};

/// Per-site server model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerProfile {
    /// Time to produce the response, milliseconds (IPv4).
    pub think_ms: f64,
    /// Server-side throughput cap, kB/s (IPv4).
    pub rate_cap_kbps: f64,
    /// IPv6 service quality relative to IPv4 in `(0, 1]`.
    pub v6_service_factor: f64,
}

impl ServerProfile {
    /// A server with identical IPv4 and IPv6 service.
    pub fn parity(think_ms: f64, rate_cap_kbps: f64) -> Self {
        ServerProfile { think_ms, rate_cap_kbps, v6_service_factor: 1.0 }
    }

    /// A server whose IPv6 service runs at `factor` of IPv4 quality.
    ///
    /// # Panics
    /// Panics if `factor` is outside `(0, 1]`.
    pub fn with_v6_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0,1]");
        self.v6_service_factor = factor;
        self
    }

    /// Effective think time over `family`, ms.
    pub fn think_ms(&self, family: Family) -> f64 {
        match family {
            Family::V4 => self.think_ms,
            Family::V6 => self.think_ms / self.v6_service_factor,
        }
    }

    /// Effective server-side rate cap over `family`, kB/s.
    pub fn rate_cap_kbps(&self, family: Family) -> f64 {
        match family {
            Family::V4 => self.rate_cap_kbps,
            Family::V6 => self.rate_cap_kbps * self.v6_service_factor,
        }
    }

    /// True if the server serves IPv6 materially worse than IPv4 (beyond
    /// the study's 10% measurement tolerance).
    pub fn poor_v6(&self) -> bool {
        self.v6_service_factor < 0.9
    }
}

/// An injected server-side failure of one HTTP exchange.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerFault {
    /// The server stalls before responding: extra think time, then the
    /// exchange completes normally.
    Stall {
        /// Extra think time, milliseconds.
        extra_ms: f64,
    },
    /// The connection is reset before any response bytes arrive.
    Reset,
    /// The response is cut before the header terminator.
    Truncated,
}

impl ServerFault {
    /// Extra think time this fault adds to a completing exchange, ms
    /// (zero for faults that kill the exchange instead of slowing it).
    pub fn stall_ms(&self) -> f64 {
        match self {
            ServerFault::Stall { extra_ms } => *extra_ms,
            ServerFault::Reset | ServerFault::Truncated => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_server_equal_both_families() {
        let s = ServerProfile::parity(25.0, 4000.0);
        assert_eq!(s.think_ms(Family::V4), s.think_ms(Family::V6));
        assert_eq!(s.rate_cap_kbps(Family::V4), s.rate_cap_kbps(Family::V6));
        assert!(!s.poor_v6());
    }

    #[test]
    fn poor_v6_server_slower_on_v6_only() {
        let s = ServerProfile::parity(20.0, 4000.0).with_v6_factor(0.5);
        assert_eq!(s.think_ms(Family::V4), 20.0);
        assert_eq!(s.think_ms(Family::V6), 40.0);
        assert_eq!(s.rate_cap_kbps(Family::V4), 4000.0);
        assert_eq!(s.rate_cap_kbps(Family::V6), 2000.0);
        assert!(s.poor_v6());
    }

    #[test]
    fn boundary_factor_not_poor() {
        assert!(!ServerProfile::parity(1.0, 1.0).with_v6_factor(0.95).poor_v6());
        assert!(ServerProfile::parity(1.0, 1.0).with_v6_factor(0.89).poor_v6());
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn zero_factor_panics() {
        ServerProfile::parity(1.0, 1.0).with_v6_factor(0.0);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn above_one_factor_panics() {
        ServerProfile::parity(1.0, 1.0).with_v6_factor(1.2);
    }
}
