//! Monitored web sites.

use crate::server::ServerProfile;
use ipv6web_dns::NameId;
use ipv6web_topology::{AsId, Family, IdOverflow};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense site identifier (also the index into the population vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Checked conversion from a dense index; errors instead of silently
    /// truncating when the population outgrows the `u32` id space.
    pub fn from_index(i: usize) -> Result<Self, IdOverflow> {
        u32::try_from(i).map(SiteId).map_err(|_| IdOverflow::new("SiteId", i))
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// IPv6 presence of a site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteV6 {
    /// The AS the AAAA record resolves into. Usually the origin content AS;
    /// for 6to4 sites this is the relay AS (a *different location* than the
    /// IPv4 presence — one of the paper's DL mechanisms, RFC 3056).
    pub dest_as: AsId,
    /// Campaign week from which the AAAA record is published.
    pub from_week: u32,
    /// True if the IPv6 presence is via a 6to4-mapped address.
    pub via_6to4: bool,
    /// Extra one-way delay of the IPv6 access leg, milliseconds: the
    /// relay→origin tunnel of 6to4 sites, or the detour to a dedicated v6
    /// hosting platform. Zero for native same-AS IPv6.
    pub extra_v6_rtt_ms: f64,
    /// True if the site advertised World IPv6 Day participation (Table 10/12).
    pub ipv6_day_participant: bool,
    /// True if the site serves AAAA only to white-listed resolvers
    /// (Google's white-listing process, Section 1 of the paper: "allows
    /// IPv6 connectivity to Google only when its quality has been
    /// certified"). Only W-L vantage points (Table 1: UPC Broadband) see
    /// these sites as dual-stack.
    pub whitelist_only: bool,
}

/// One web site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Identity.
    pub id: SiteId,
    /// Interned DNS name (e.g. `site42.web.example`), resolvable through
    /// the population's shared name table or the zone built from it.
    pub name: NameId,
    /// Popularity rank (1 = most popular). Ties broken by id.
    pub rank: u32,
    /// Main-page size served over IPv4, bytes.
    pub page_bytes_v4: u64,
    /// Main-page size served over IPv6, bytes (normally ≈ the IPv4 size;
    /// a few sites serve materially different content and get excluded by
    /// the monitor's 6% identity check).
    pub page_bytes_v6: u64,
    /// The AS the A record resolves into (a content AS, or a CDN AS when
    /// the site is CDN-fronted — the other DL mechanism).
    pub v4_as: AsId,
    /// IPv6 presence, if the site ever publishes a AAAA record.
    pub v6: Option<SiteV6>,
    /// Week the site first appears in the ranked list (Alexa churn).
    pub first_seen_week: u32,
    /// Server behaviour.
    pub server: ServerProfile,
}

impl Site {
    /// Page size served over `family`.
    pub fn page_bytes(&self, family: Family) -> u64 {
        match family {
            Family::V4 => self.page_bytes_v4,
            Family::V6 => self.page_bytes_v6,
        }
    }

    /// Destination AS over `family`, if the site is reachable over it.
    pub fn dest_as(&self, family: Family) -> Option<AsId> {
        match family {
            Family::V4 => Some(self.v4_as),
            Family::V6 => self.v6.as_ref().map(|v| v.dest_as),
        }
    }

    /// Whether the site is dual-stack as of `week` (AAAA published).
    pub fn is_dual_stack(&self, week: u32) -> bool {
        self.v6.as_ref().is_some_and(|v| week >= v.from_week)
    }

    /// The paper's SL (same location) test: IPv6 and IPv4 presences map to
    /// the same AS. CDN-fronted and 6to4 sites are DL.
    pub fn same_location(&self) -> Option<bool> {
        self.v6.as_ref().map(|v| v.dest_as == self.v4_as)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerProfile;

    fn site(v4_as: u32, v6_as: Option<u32>) -> Site {
        Site {
            id: SiteId(7),
            name: NameId(7),
            rank: 42,
            page_bytes_v4: 50_000,
            page_bytes_v6: 50_500,
            v4_as: AsId(v4_as),
            v6: v6_as.map(|a| SiteV6 {
                dest_as: AsId(a),
                from_week: 12,
                via_6to4: false,
                extra_v6_rtt_ms: 0.0,
                ipv6_day_participant: false,
                whitelist_only: false,
            }),
            first_seen_week: 0,
            server: ServerProfile::parity(20.0, 5_000.0),
        }
    }

    #[test]
    fn page_bytes_per_family() {
        let s = site(1, Some(1));
        assert_eq!(s.page_bytes(Family::V4), 50_000);
        assert_eq!(s.page_bytes(Family::V6), 50_500);
    }

    #[test]
    fn dest_as_per_family() {
        let s = site(1, Some(2));
        assert_eq!(s.dest_as(Family::V4), Some(AsId(1)));
        assert_eq!(s.dest_as(Family::V6), Some(AsId(2)));
        let v4only = site(1, None);
        assert_eq!(v4only.dest_as(Family::V6), None);
    }

    #[test]
    fn dual_stack_gated_by_week() {
        let s = site(1, Some(1));
        assert!(!s.is_dual_stack(11));
        assert!(s.is_dual_stack(12));
        assert!(!site(1, None).is_dual_stack(99));
    }

    #[test]
    fn same_location_classification() {
        assert_eq!(site(1, Some(1)).same_location(), Some(true));
        assert_eq!(site(1, Some(9)).same_location(), Some(false));
        assert_eq!(site(1, None).same_location(), None);
    }

    #[test]
    fn display_id() {
        assert_eq!(SiteId(3).to_string(), "site3");
    }
}
