//! Site population generation.
//!
//! Reproduces the structural facts the paper's analysis rests on:
//!
//! * **Rank-dependent IPv6 adoption** (Fig 3a): the most popular sites are
//!   several times more likely to be IPv6-accessible than the long tail.
//! * **Hosting concentration**: sites cluster in hosting ASes with a
//!   Zipf-like weight, so destination ASes contain enough sites for the
//!   per-AS distribution analysis (zero-mode detection) to be meaningful.
//! * **DL mechanisms**: a share of sites is CDN-fronted in IPv4 (with IPv6,
//!   if any, at the origin), and a small share of IPv6 presences is via
//!   6to4 — both produce different IPv4/IPv6 destination ASes.
//! * **Server-side IPv6 penalties**: a fraction of dual-stack sites serve
//!   IPv6 worse than IPv4, independent of the network (what H1's zero-mode
//!   machinery detects).
//! * **Adoption timeline**: AAAA publication weeks are drawn from a
//!   cumulative adoption curve (supplied by the `ipv6web-alexa` timeline)
//!   so Fig 1's jumps appear in plain DNS data.

use crate::server::ServerProfile;
use crate::site::{Site, SiteId, SiteV6};
use ipv6web_dns::NameTable;
use ipv6web_stats::{coin, derive_rng, lognormal};
use ipv6web_topology::{AsId, IdOverflow, Tier, Topology};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Population generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of sites to generate.
    pub n_sites: usize,
    /// Global multiplier on the rank-dependent IPv6 adoption probability
    /// (1.0 ≈ the 2011 Internet's ~1.2% overall).
    pub adoption_multiplier: f64,
    /// Zipf exponent concentrating sites into hosting ASes.
    pub hosting_zipf_exponent: f64,
    /// Fraction of sites CDN-fronted over IPv4.
    pub cdn_share: f64,
    /// Fraction of IPv6 presences realized via 6to4 (RFC 3056).
    pub sixto4_share: f64,
    /// Fraction of dual-stack sites whose *origin* AS never deployed IPv6,
    /// so their IPv6 presence lives elsewhere (a v6 hosting platform or a
    /// 6to4 relay) — the paper's "not always CDN users" DL mechanism, and
    /// the reason IPv4 destination-AS counts exceed IPv6 ones (Table 2).
    pub dl_origin_share: f64,
    /// Fraction of dual-stack sites whose server serves IPv6 poorly.
    pub poor_v6_server_prob: f64,
    /// v6 service factor range for poor servers.
    pub poor_v6_factor_range: (f64, f64),
    /// Fraction of dual-stack sites serving materially different content
    /// over IPv6 (fails the monitor's 6% identity check).
    pub different_content_prob: f64,
    /// Median main-page size, bytes.
    pub page_median_bytes: f64,
    /// Log-normal sigma of page sizes.
    pub page_sigma: f64,
    /// Median server think time, ms.
    pub think_median_ms: f64,
    /// Median server rate cap, kB/s.
    pub rate_cap_median_kbps: f64,
    /// Fraction of dual-stack sites that advertised World IPv6 Day
    /// participation.
    pub ipv6_day_share: f64,
    /// Probability a top-100-ranked dual-stack site gates its AAAA behind
    /// resolver white-listing (the Google model).
    pub whitelist_share_top: f64,
    /// Campaign length in weeks (for churn and adoption sampling).
    pub total_weeks: u32,
    /// Fraction of sites present from week 0 (the rest churn in later).
    pub initial_presence: f64,
    /// Cumulative AAAA-publication curve: `(week, cumulative_fraction)`
    /// ascending. Empty = everything published from week 0.
    pub adoption_curve: Vec<(u32, f64)>,
    /// Caps each Zipf hosting pool to its first N (highest-weight) ASes.
    /// The internet tier uses this: ~2½k distinct hosting ASes bounds the
    /// destination set routing tables are built for, matching the paper's
    /// observation that a million sites concentrate in a few thousand
    /// destination ASes. `None` = every eligible AS can host.
    pub hosting_pool_cap: Option<usize>,
}

impl PopulationConfig {
    /// A small population for tests: high adoption so dual-stack analysis
    /// has data even with few sites.
    pub fn test_small(total_weeks: u32) -> Self {
        PopulationConfig {
            n_sites: 3000,
            adoption_multiplier: 10.0,
            hosting_zipf_exponent: 1.1,
            cdn_share: 0.10,
            sixto4_share: 0.03,
            dl_origin_share: 0.05,
            poor_v6_server_prob: 0.15,
            poor_v6_factor_range: (0.2, 0.6),
            different_content_prob: 0.03,
            page_median_bytes: 45_000.0,
            page_sigma: 0.9,
            think_median_ms: 25.0,
            rate_cap_median_kbps: 400.0,
            ipv6_day_share: 0.12,
            whitelist_share_top: 0.15,
            total_weeks,
            initial_presence: 0.7,
            adoption_curve: Vec::new(),
            hosting_pool_cap: None,
        }
    }

    /// Paper-scale population (hundred-thousand-site "1M-equivalent").
    pub fn paper_scale(total_weeks: u32, adoption_curve: Vec<(u32, f64)>) -> Self {
        PopulationConfig {
            n_sites: 120_000,
            adoption_multiplier: 1.6,
            ..Self::test_small(total_weeks)
        }
        .with_curve(adoption_curve)
    }

    /// Replaces the adoption curve.
    pub fn with_curve(mut self, curve: Vec<(u32, f64)>) -> Self {
        self.adoption_curve = curve;
        self
    }
}

/// The paper's Fig 3a shape: IPv6 accessibility probability as a function
/// of rank, interpolated log-linearly between per-decade anchors calibrated
/// to the figure (Top 10 ≈ 12%, Top 1M ≈ 1.2%).
pub fn v6_adoption_prob(rank: u32, n_sites: usize) -> f64 {
    debug_assert!(rank >= 1);
    // anchors at log10(rank) = 0..6
    const ANCHORS: [f64; 7] = [0.13, 0.10, 0.055, 0.033, 0.022, 0.015, 0.012];
    let lr = (rank as f64).log10().clamp(0.0, 6.0);
    let lo = lr.floor() as usize;
    let hi = (lo + 1).min(6);
    let frac = lr - lo as f64;
    let p = ANCHORS[lo] * (1.0 - frac) + ANCHORS[hi] * frac;
    let _ = n_sites;
    p
}

/// Samples a publication week from a cumulative adoption curve.
fn sample_adoption_week<R: Rng>(rng: &mut R, curve: &[(u32, f64)]) -> u32 {
    if curve.is_empty() {
        return 0;
    }
    let u: f64 = rng.gen();
    for &(week, cum) in curve {
        if u <= cum {
            return week;
        }
    }
    curve.last().expect("non-empty").0
}

/// Zipf-weighted AS pool: deterministic shuffle then weight by position.
fn zipf_pool<R: Rng>(rng: &mut R, ases: &[AsId], exponent: f64) -> Vec<(AsId, f64)> {
    let mut shuffled: Vec<AsId> = ases.to_vec();
    shuffled.shuffle(rng);
    shuffled
        .into_iter()
        .enumerate()
        .map(|(i, a)| (a, 1.0 / ((i + 1) as f64).powf(exponent)))
        .collect()
}

fn pick_zipf<R: Rng>(rng: &mut R, pool: &[(AsId, f64)], total: f64) -> AsId {
    let mut x = rng.gen_range(0.0..total);
    for &(a, w) in pool {
        if x < w {
            return a;
        }
        x -= w;
    }
    pool.last().expect("non-empty pool").0
}

/// Generates the monitored site population and the shared name table its
/// sites' interned DNS names resolve through.
///
/// # Panics
/// Panics if the topology lacks the AS kinds sites need (see
/// [`try_generate`]) or the site count overflows the id space.
pub fn generate(config: &PopulationConfig, topo: &Topology, seed: u64) -> (Vec<Site>, NameTable) {
    try_generate(config, topo, seed).expect("site id space overflow")
}

/// Generates the monitored site population, reporting id-space overflow as
/// a typed error instead of truncating site indices into `u32` ids.
///
/// # Panics
/// Panics if the topology lacks content ASes, dual-stack content ASes, CDN
/// ASes, or dual-stack transit ASes (6to4 relays).
pub fn try_generate(
    config: &PopulationConfig,
    topo: &Topology,
    seed: u64,
) -> Result<(Vec<Site>, NameTable), IdOverflow> {
    let mut rng = derive_rng(seed, "population");
    let content: Vec<AsId> =
        topo.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).collect();
    let dual_content: Vec<AsId> = topo
        .nodes()
        .iter()
        .filter(|n| n.tier == Tier::Content && n.is_dual_stack())
        .map(|n| n.id)
        .collect();
    let cdns: Vec<AsId> =
        topo.nodes().iter().filter(|n| n.tier == Tier::Cdn).map(|n| n.id).collect();
    let relays: Vec<AsId> = topo
        .nodes()
        .iter()
        .filter(|n| n.tier == Tier::Transit && n.is_dual_stack())
        .map(|n| n.id)
        .collect();
    let single_content: Vec<AsId> = topo
        .nodes()
        .iter()
        .filter(|n| n.tier == Tier::Content && !n.is_dual_stack())
        .map(|n| n.id)
        .collect();
    assert!(!content.is_empty(), "topology has no content ASes");
    assert!(!dual_content.is_empty(), "topology has no dual-stack content ASes");
    assert!(!cdns.is_empty(), "topology has no CDN ASes");
    assert!(!relays.is_empty(), "topology has no dual-stack transit ASes (6to4 relays)");

    // The cap truncates *after* the shuffle (keeping the highest positional
    // weights), so capped and uncapped configs draw the same RNG stream up
    // to this point.
    let cap = |mut pool: Vec<(AsId, f64)>| {
        if let Some(n) = config.hosting_pool_cap {
            pool.truncate(n.max(1));
        }
        pool
    };
    let all_pool = cap(zipf_pool(&mut rng, &content, config.hosting_zipf_exponent));
    let all_total: f64 = all_pool.iter().map(|(_, w)| w).sum();
    let dual_pool = cap(zipf_pool(&mut rng, &dual_content, config.hosting_zipf_exponent));
    let dual_total: f64 = dual_pool.iter().map(|(_, w)| w).sum();
    let single_pool = cap(zipf_pool(&mut rng, &single_content, config.hosting_zipf_exponent));
    let single_total: f64 = single_pool.iter().map(|(_, w)| w).sum();
    // The real 2011 Internet had a handful of public 6to4 relays and a few
    // dedicated v6 hosting platforms; fixed small pools concentrate the
    // IPv6 destination-AS set the way the paper observed.
    // relays sit at the best-connected transit providers (lowest ids are
    // generated first and accrete the most preferential-attachment edges),
    // so 6to4 destinations look close in AS hops while the tunnel leg
    // hides the true distance — Table 7's short-hop IPv6 anomaly
    let relay_pool: Vec<AsId> = relays.iter().copied().take(3).collect();
    let platform_pool: Vec<AsId> = {
        let mut p = dual_content.clone();
        p.shuffle(&mut rng);
        p.truncate(3);
        p
    };

    let mut sites = Vec::with_capacity(config.n_sites);
    let mut names = NameTable::new();
    for i in 0..config.n_sites {
        let id = SiteId::from_index(i)?;
        let rank = id.0.checked_add(1).ok_or(IdOverflow::new("SiteId", i + 1))?;
        let page_v4 = lognormal(&mut rng, config.page_median_bytes, config.page_sigma)
            .clamp(2_000.0, 800_000.0) as u64;

        let becomes_v6 =
            coin(&mut rng, v6_adoption_prob(rank, config.n_sites) * config.adoption_multiplier);

        // Hosting. Dual-stack sites mostly originate in a dual-stack AS;
        // a small share sits in a v4-only hoster and serves IPv6 from a
        // v6 platform or through 6to4 (DL).
        let origin_single =
            becomes_v6 && !single_content.is_empty() && coin(&mut rng, config.dl_origin_share);
        let origin = if origin_single {
            pick_zipf(&mut rng, &single_pool, single_total)
        } else if becomes_v6 {
            pick_zipf(&mut rng, &dual_pool, dual_total)
        } else {
            pick_zipf(&mut rng, &all_pool, all_total)
        };
        let v4_as = if coin(&mut rng, config.cdn_share) {
            *cdns.choose(&mut rng).expect("cdns non-empty")
        } else {
            origin
        };

        let v6 = becomes_v6.then(|| {
            let via_6to4 =
                coin(&mut rng, config.sixto4_share) || (origin_single && coin(&mut rng, 0.5));
            let (dest_as, extra_v6_rtt_ms) = if via_6to4 {
                // 2011's public 6to4 relays were few and far: the
                // relay→origin tunnel leg costs real latency
                (
                    *relay_pool.choose(&mut rng).expect("relay pool non-empty"),
                    rng.gen_range(60.0..160.0),
                )
            } else if origin_single {
                (
                    *platform_pool.choose(&mut rng).expect("platform pool non-empty"),
                    rng.gen_range(40.0..120.0),
                )
            } else {
                (origin, 0.0)
            };
            // World IPv6 Day participants were the big, well-run sites:
            // native IPv6, origins with redundant v6 transit. That is why
            // the paper's Table 12 looks so much better than Table 11.
            let well_connected = !via_6to4
                && extra_v6_rtt_ms == 0.0
                && topo
                    .neighbors(dest_as, ipv6web_topology::Family::V6)
                    .iter()
                    .filter(|(_, rel, _)| *rel == ipv6web_topology::Relationship::CustomerOf)
                    .count()
                    >= 2;
            let participation_p = if well_connected {
                (config.ipv6_day_share * 3.0).min(0.9)
            } else {
                config.ipv6_day_share * 0.3
            };
            // the Google model: a few top sites certify resolvers before
            // answering AAAA (Table 1's W-L column exists for them)
            let whitelist_only = rank <= 100 && coin(&mut rng, config.whitelist_share_top);
            SiteV6 {
                dest_as,
                from_week: sample_adoption_week(&mut rng, &config.adoption_curve),
                via_6to4,
                extra_v6_rtt_ms,
                ipv6_day_participant: coin(&mut rng, participation_p),
                whitelist_only,
            }
        });

        // v6 page: nearly identical normally, materially different rarely.
        let page_v6 = if v6.is_some() {
            if coin(&mut rng, config.different_content_prob) {
                let f = if coin(&mut rng, 0.5) {
                    rng.gen_range(0.3..0.8)
                } else {
                    rng.gen_range(1.3..2.5)
                };
                (page_v4 as f64 * f) as u64
            } else {
                (page_v4 as f64 * lognormal(&mut rng, 1.0, 0.01)) as u64
            }
        } else {
            page_v4
        };

        let mut server = ServerProfile::parity(
            lognormal(&mut rng, config.think_median_ms, 0.5).clamp(2.0, 400.0),
            lognormal(&mut rng, config.rate_cap_median_kbps, 0.5).clamp(60.0, 50_000.0),
        );
        if v6.is_some() && coin(&mut rng, config.poor_v6_server_prob) {
            let (lo, hi) = config.poor_v6_factor_range;
            server = server.with_v6_factor(rng.gen_range(lo..hi));
        }

        let first_seen_week = if coin(&mut rng, config.initial_presence) {
            0
        } else {
            rng.gen_range(1..config.total_weeks.max(2))
        };

        sites.push(Site {
            id,
            name: names.intern(&format!("site{i}.web.example")),
            rank,
            page_bytes_v4: page_v4,
            page_bytes_v6: page_v6,
            v4_as,
            v6,
            first_seen_week,
            server,
        });
    }
    Ok((sites, names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_topology::{generate as gen_topo, Family, TopologyConfig};

    fn world() -> (ipv6web_topology::Topology, Vec<Site>) {
        let topo = gen_topo(&TopologyConfig::test_small(), 5);
        let cfg = PopulationConfig::test_small(60);
        let (sites, _names) = generate(&cfg, &topo, 5);
        (topo, sites)
    }

    #[test]
    fn adoption_prob_declines_with_rank() {
        let n = 1_000_000;
        assert!(v6_adoption_prob(1, n) > v6_adoption_prob(100, n));
        assert!(v6_adoption_prob(100, n) > v6_adoption_prob(10_000, n));
        assert!(v6_adoption_prob(10_000, n) > v6_adoption_prob(1_000_000, n));
        // calibrated endpoints
        assert!((v6_adoption_prob(1, n) - 0.13).abs() < 1e-9);
        assert!((v6_adoption_prob(1_000_000, n) - 0.012).abs() < 1e-9);
    }

    #[test]
    fn generates_requested_count_with_dense_ids() {
        let (_, sites) = world();
        assert_eq!(sites.len(), 3000);
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.id.index(), i);
            assert_eq!(s.rank, i as u32 + 1);
        }
    }

    #[test]
    fn deterministic() {
        let topo = gen_topo(&TopologyConfig::test_small(), 5);
        let cfg = PopulationConfig::test_small(60);
        assert_eq!(generate(&cfg, &topo, 9), generate(&cfg, &topo, 9));
    }

    #[test]
    fn names_intern_in_site_order() {
        let topo = gen_topo(&TopologyConfig::test_small(), 5);
        let (sites, names) = generate(&PopulationConfig::test_small(60), &topo, 5);
        assert_eq!(names.len(), sites.len());
        for s in sites.iter().take(50) {
            assert_eq!(names.get(s.name), format!("site{}.web.example", s.id.0));
        }
    }

    #[test]
    fn hosting_pool_cap_concentrates_destinations() {
        let topo = gen_topo(&TopologyConfig::test_small(), 5);
        let mut cfg = PopulationConfig::test_small(60);
        cfg.hosting_pool_cap = Some(4);
        let (sites, _) = generate(&cfg, &topo, 5);
        use std::collections::HashSet;
        let v4_ases: HashSet<AsId> = sites
            .iter()
            .filter(|s| {
                // CDN-fronted sites pull v4 destinations outside the pools
                s.v4_as == s.v6.as_ref().map_or(s.v4_as, |v| v.dest_as) || s.v6.is_none()
            })
            .map(|s| s.v4_as)
            .collect();
        // capped pools: at most 4 per pool (all/dual/single) plus CDN fronts
        assert!(v4_ases.len() <= 12 + topo.nodes().len() / 100 + 25, "{}", v4_ases.len());
        let origin_ases: HashSet<AsId> =
            sites.iter().filter_map(|s| s.v6.as_ref()).map(|v| v.dest_as).collect();
        // v6 dests: dual pool (≤4) + 3 relays + 3 platforms
        assert!(origin_ases.len() <= 10, "{}", origin_ases.len());
    }

    #[test]
    fn v6_sites_exist_and_live_in_dual_stack_ases() {
        let (topo, sites) = world();
        let dual: Vec<&Site> = sites.iter().filter(|s| s.v6.is_some()).collect();
        assert!(dual.len() > 100, "only {} dual sites", dual.len());
        for s in &dual {
            let v6 = s.v6.as_ref().unwrap();
            assert!(
                topo.node(v6.dest_as).is_dual_stack(),
                "{} v6 dest AS must be dual-stack",
                s.id
            );
        }
    }

    #[test]
    fn top_ranks_adopt_more() {
        // With multiplier 10 the top decile should clearly beat the bottom.
        let (_, sites) = world();
        let half = sites.len() / 2;
        let top = sites[..half].iter().filter(|s| s.v6.is_some()).count() as f64 / half as f64;
        let bottom = sites[half..].iter().filter(|s| s.v6.is_some()).count() as f64 / half as f64;
        assert!(top > bottom, "top {top} !> bottom {bottom}");
    }

    #[test]
    fn dl_mechanisms_present() {
        let (_, sites) = world();
        let dual: Vec<&Site> = sites.iter().filter(|s| s.v6.is_some()).collect();
        let dl = dual.iter().filter(|s| s.same_location() == Some(false)).count();
        let sixto4 = dual.iter().filter(|s| s.v6.as_ref().unwrap().via_6to4).count();
        assert!(dl > 0, "need some DL sites");
        assert!(sixto4 > 0, "need some 6to4 sites");
        // CDN + 6to4 shares are minority
        assert!(dl * 2 < dual.len(), "DL must be a minority");
    }

    #[test]
    fn poor_v6_servers_in_range() {
        let (_, sites) = world();
        let poor: Vec<f64> = sites
            .iter()
            .filter(|s| s.v6.is_some() && s.server.poor_v6())
            .map(|s| s.server.v6_service_factor)
            .collect();
        assert!(!poor.is_empty());
        for f in poor {
            assert!((0.2..0.6).contains(&f));
        }
        // v4-only sites never carry a v6 penalty
        assert!(sites.iter().filter(|s| s.v6.is_none()).all(|s| s.server.v6_service_factor == 1.0));
    }

    #[test]
    fn page_sizes_realistic_and_mostly_identical() {
        let (_, sites) = world();
        for s in &sites {
            assert!((2_000..=800_000).contains(&s.page_bytes_v4));
        }
        let dual: Vec<&Site> = sites.iter().filter(|s| s.v6.is_some()).collect();
        let identical = dual
            .iter()
            .filter(|s| crate::http::pages_identical(s.page_bytes_v4, s.page_bytes_v6, 0.06))
            .count();
        assert!(
            identical as f64 / dual.len() as f64 > 0.9,
            "the vast majority of sites serve identical pages"
        );
        assert!(identical < dual.len(), "a few sites must differ");
    }

    #[test]
    fn adoption_curve_sampling() {
        let mut rng = derive_rng(1, "curve");
        let curve = vec![(0, 0.2), (10, 0.5), (30, 1.0)];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            match sample_adoption_week(&mut rng, &curve) {
                0 => counts[0] += 1,
                10 => counts[1] += 1,
                30 => counts[2] += 1,
                w => panic!("unexpected week {w}"),
            }
        }
        assert!((500..700).contains(&counts[0]), "{counts:?}");
        assert!((800..1000).contains(&counts[1]), "{counts:?}");
        assert!((1400..1600).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn empty_curve_publishes_at_week_zero() {
        let mut rng = derive_rng(2, "curve");
        assert_eq!(sample_adoption_week(&mut rng, &[]), 0);
    }

    #[test]
    fn churn_spreads_first_seen_weeks() {
        let (_, sites) = world();
        let initial = sites.iter().filter(|s| s.first_seen_week == 0).count();
        let later = sites.len() - initial;
        assert!(later > 0, "some churn expected");
        assert!(initial > later, "majority present initially");
        assert!(sites.iter().all(|s| s.first_seen_week < 60));
    }

    #[test]
    fn hosting_is_concentrated() {
        let (_, sites) = world();
        use std::collections::HashMap;
        let mut per_as: HashMap<ipv6web_topology::AsId, usize> = HashMap::new();
        for s in sites.iter().filter(|s| s.v6.is_some()) {
            *per_as.entry(s.v6.as_ref().unwrap().dest_as).or_default() += 1;
        }
        let max = per_as.values().max().copied().unwrap_or(0);
        assert!(max >= 10, "Zipf hosting should give some AS ≥10 dual sites, max={max}");
        let _ = Family::V6;
    }
}
