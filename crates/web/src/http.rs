//! Minimal HTTP/1.1 request/response bytes and the page-identity check.
//!
//! The monitor "downloads a copy of the site's main page over both IPv4 and
//! IPv6 … pages declared identical as long as their byte counts are within
//! 6% of each other" (Section 3). [`pages_identical`] is that rule; the
//! request/response builders keep an actual protocol exchange on the wire
//! so the transaction is more than a number.
//!
//! The same layer also serves the *real* wire: [`read_http_request`] /
//! [`build_http_response`] are the one-connection-per-request HTTP/1.1
//! substrate the `ipv6webd` study daemon runs its JSON API on. One parser
//! for both worlds keeps the simulated exchanges and the service honest
//! about speaking the same protocol.

use std::io::BufRead;
use std::time::Instant;

/// Builds the monitor's GET request for a site's main page.
pub fn build_request(host: &str) -> Vec<u8> {
    format!(
        "GET / HTTP/1.1\r\nHost: {host}\r\nUser-Agent: ipv6web-monitor/1.0\r\nAccept: text/html\r\nConnection: close\r\n\r\n"
    )
    .into_bytes()
}

/// Builds a 200 response carrying a deterministic body of `body_len` bytes.
///
/// The body is a cheap xorshift stream seeded from `(host, body_len)` so the
/// same page always has the same bytes without storing it.
pub fn build_response(host: &str, body_len: usize) -> Vec<u8> {
    let mut out = build_response_header(body_len);
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    for b in host.bytes() {
        state = state.rotate_left(7) ^ b as u64;
    }
    state ^= body_len as u64;
    out.reserve(body_len);
    for _ in 0..body_len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.push((state & 0x7f) as u8 | 0x20); // printable-ish
    }
    out
}

/// Builds only the response header of [`build_response`] — byte-identical
/// to its first `header_len` bytes, without materializing the body.
///
/// The monitoring hot path checks page identity from `Content-Length`
/// alone (the paper's 6% byte-count rule), so synthesizing the body — by
/// far the dominant cost of a simulated exchange — is wasted work there.
/// [`parse_response_len`] accepts a body-less response unchanged.
pub fn build_response_header(body_len: usize) -> Vec<u8> {
    format!(
        "HTTP/1.1 200 OK\r\nServer: ipv6web-sim\r\nContent-Type: text/html\r\nContent-Length: {body_len}\r\nConnection: close\r\n\r\n"
    )
    .into_bytes()
}

/// A response torn before the header terminator — what a connection cut
/// mid-header leaves behind. [`parse_response_len`] rejects the result,
/// which is exactly how fault injection exercises the monitor's
/// malformed-response path.
pub fn truncate_response(response: &[u8]) -> Vec<u8> {
    match response.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(sep) => response[..sep].to_vec(),
        None => response[..response.len() / 2].to_vec(),
    }
}

/// Parses the `Content-Length` and returns `(header_len, body_len)` of a
/// response, or `None` if malformed.
pub fn parse_response_len(response: &[u8]) -> Option<(usize, usize)> {
    let sep = response.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&response[..sep]).ok()?;
    if !head.starts_with("HTTP/1.1 ") {
        return None;
    }
    let body_len = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse::<usize>().ok())?;
    Some((sep, body_len))
}

/// A parsed HTTP/1.1 request as read off a live socket by [`read_http_request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target exactly as sent (`/jobs/job-000001-…/report`).
    pub target: String,
    /// Header `(name, value)` pairs in wire order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body, sized by `Content-Length` (empty when absent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Largest request body [`read_http_request`] will accept; a submitted
/// scenario is a few KB, so 4 MiB is generous without being a memory hole.
pub const MAX_REQUEST_BODY: usize = 4 << 20;

/// Reads one HTTP/1.1 request from `r`, with no read deadline.
///
/// Returns `Ok(None)` on a clean EOF before any bytes (peer closed an idle
/// connection); malformed request lines, oversized bodies, and torn reads
/// surface as `InvalidData`/`UnexpectedEof` errors.
pub fn read_http_request(r: &mut impl BufRead) -> std::io::Result<Option<HttpRequest>> {
    read_http_request_deadline(r, None)
}

/// Body bytes pulled per read while draining `Content-Length`; bounds how
/// long one successful read can keep a past-deadline connection alive.
const BODY_CHUNK: usize = 8 << 10;

/// [`read_http_request`] under a wall-clock `deadline` — the slowloris
/// guard. A peer drip-feeding one header line (or one body chunk) per
/// socket-timeout interval passes every *individual* read, so a per-read
/// timeout alone never fires; the deadline is checked between reads and
/// cuts the request off as `TimedOut` once its total wall-clock budget is
/// spent, no matter how lively the drip is.
pub fn read_http_request_deadline(
    r: &mut impl BufRead,
    deadline: Option<Instant>,
) -> std::io::Result<Option<HttpRequest>> {
    use std::io::{Error, ErrorKind};
    let check = |what: &str| -> std::io::Result<()> {
        match deadline {
            Some(d) if Instant::now() >= d => {
                Err(Error::new(ErrorKind::TimedOut, format!("read deadline exceeded in {what}")))
            }
            _ => Ok(()),
        }
    };
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    check("request line")?;
    let mut parts = line.trim_end().split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return Err(Error::new(ErrorKind::InvalidData, format!("bad request line: {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(Error::new(ErrorKind::InvalidData, format!("bad HTTP version: {version:?}")));
    }
    let request = (method.to_string(), target.to_string());
    let mut headers = Vec::new();
    loop {
        let mut hline = String::new();
        if r.read_line(&mut hline)? == 0 {
            return Err(Error::new(ErrorKind::UnexpectedEof, "EOF inside headers"));
        }
        check("headers")?;
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        let (name, value) = hline
            .split_once(':')
            .ok_or_else(|| Error::new(ErrorKind::InvalidData, format!("bad header: {hline:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let body_len = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v.parse::<usize>().map_err(|_| {
            Error::new(ErrorKind::InvalidData, format!("bad Content-Length: {v:?}"))
        })?,
    };
    if body_len > MAX_REQUEST_BODY {
        return Err(Error::new(ErrorKind::InvalidData, format!("body too large: {body_len}")));
    }
    // Drain the body in bounded chunks, re-checking the deadline between
    // them — one giant read_exact would let a slow body bypass the guard.
    let mut body = vec![0u8; body_len];
    let mut filled = 0;
    while filled < body_len {
        let end = (filled + BODY_CHUNK).min(body_len);
        r.read_exact(&mut body[filled..end])?;
        filled = end;
        check("body")?;
    }
    Ok(Some(HttpRequest { method: request.0, target: request.1, headers, body }))
}

/// Builds a complete HTTP/1.1 response for the daemon API: status line,
/// `Content-Type`/`Content-Length`/`Connection: close` headers, body.
pub fn build_http_response(status: u16, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nServer: ipv6webd\r\nContent-Type: {content_type}\r\nContent-Length: {len}\r\nConnection: close\r\n\r\n",
        reason = status_reason(status),
        len = body.len(),
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Canonical reason phrase for the status codes the daemon emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// The paper's identity rule: byte counts within `threshold` (paper: 0.06)
/// of each other, measured relative to the larger page.
pub fn pages_identical(bytes_a: u64, bytes_b: u64, threshold: f64) -> bool {
    let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
    if hi == 0 {
        return true;
    }
    (hi - lo) as f64 / hi as f64 <= threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_is_wellformed() {
        let r = build_request("site1.web.example");
        let s = std::str::from_utf8(&r).unwrap();
        assert!(s.starts_with("GET / HTTP/1.1\r\n"));
        assert!(s.contains("Host: site1.web.example\r\n"));
        assert!(s.ends_with("\r\n\r\n"));
    }

    #[test]
    fn response_roundtrip() {
        let resp = build_response("x.example", 1234);
        let (head, body) = parse_response_len(&resp).unwrap();
        assert_eq!(body, 1234);
        assert_eq!(resp.len(), head + body);
    }

    #[test]
    fn response_body_deterministic() {
        assert_eq!(build_response("a.example", 500), build_response("a.example", 500));
        assert_ne!(build_response("a.example", 500), build_response("b.example", 500));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_response_len(b"not http"), None);
        assert_eq!(parse_response_len(b"HTTP/1.1 200 OK\r\nNo-Length: 1\r\n\r\n"), None);
        assert_eq!(parse_response_len(b"FTP/1.1 200\r\nContent-Length: 5\r\n\r\nxxxxx"), None);
    }

    #[test]
    fn identity_rule_examples() {
        // 6% threshold, relative to larger page
        assert!(pages_identical(100_000, 100_000, 0.06));
        assert!(pages_identical(100_000, 94_000, 0.06));
        assert!(!pages_identical(100_000, 93_999, 0.06));
        assert!(pages_identical(0, 0, 0.06));
        assert!(!pages_identical(0, 10, 0.06));
    }

    #[test]
    fn read_request_roundtrip() {
        let wire = b"POST /jobs HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let req = read_http_request(&mut &wire[..]).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/jobs");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn read_request_without_body() {
        let wire = b"GET /metrics HTTP/1.1\r\n\r\n";
        let req = read_http_request(&mut &wire[..]).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn read_request_clean_eof_is_none() {
        assert!(read_http_request(&mut &b""[..]).unwrap().is_none());
    }

    #[test]
    fn read_request_rejects_malformed() {
        for wire in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
        ] {
            assert!(read_http_request(&mut &wire[..]).is_err(), "accepted {wire:?}");
        }
        // torn body: Content-Length promises more than arrives
        let torn = b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_http_request(&mut &torn[..]).is_err());
    }

    /// A peer that drips `chunk` bytes per read, sleeping first — the
    /// slowloris shape: every individual read succeeds promptly enough,
    /// but the request as a whole never finishes.
    struct Drip<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
        delay: std::time::Duration,
    }

    impl std::io::Read for Drip<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let avail = self.fill_buf()?;
            let n = avail.len().min(buf.len());
            buf[..n].copy_from_slice(&avail[..n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl BufRead for Drip<'_> {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            std::thread::sleep(self.delay);
            let end = (self.pos + self.chunk).min(self.data.len());
            Ok(&self.data[self.pos..end])
        }
        fn consume(&mut self, n: usize) {
            self.pos += n;
        }
    }

    #[test]
    fn read_deadline_cuts_off_a_dripped_half_request() {
        // half-sent request: the header section never terminates, and the
        // peer drips one byte per 2ms — each read succeeds, so only the
        // wall-clock deadline can end this
        let wire = b"POST /jobs HTTP/1.1\r\nHost: localhost\r\nContent-Le";
        let mut drip =
            Drip { data: wire, pos: 0, chunk: 1, delay: std::time::Duration::from_millis(2) };
        let deadline = Some(Instant::now() + std::time::Duration::from_millis(20));
        let err = read_http_request_deadline(&mut drip, deadline).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
        assert!(drip.pos < wire.len(), "deadline must fire before the drip completes");
    }

    #[test]
    fn read_deadline_cuts_off_a_dripped_body() {
        // headers arrive instantly; the promised body drips forever
        let mut wire = b"POST /jobs HTTP/1.1\r\nContent-Length: 100000\r\n\r\n".to_vec();
        wire.extend(std::iter::repeat(b'x').take(100_000));
        let mut drip =
            Drip { data: &wire, pos: 0, chunk: 64, delay: std::time::Duration::from_millis(1) };
        let deadline = Some(Instant::now() + std::time::Duration::from_millis(15));
        let err = read_http_request_deadline(&mut drip, deadline).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
    }

    #[test]
    fn well_behaved_requests_pass_a_generous_deadline() {
        let wire = b"POST /jobs HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let deadline = Some(Instant::now() + std::time::Duration::from_secs(10));
        let req = read_http_request_deadline(&mut &wire[..], deadline).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn http_response_parses_with_sim_parser() {
        // the daemon's responses must satisfy the same parser the
        // simulated monitor uses — one protocol, both worlds
        let resp = build_http_response(200, "application/json", b"{\"ok\":true}");
        let (head, body) = parse_response_len(&resp).unwrap();
        assert_eq!(body, 11);
        assert_eq!(resp.len(), head + body);
        assert_eq!(&resp[head..], b"{\"ok\":true}");
    }

    #[test]
    fn status_reasons_cover_daemon_codes() {
        assert_eq!(status_reason(200), "OK");
        assert_eq!(status_reason(404), "Not Found");
        assert_eq!(status_reason(408), "Request Timeout");
        assert_eq!(status_reason(599), "Unknown");
    }

    #[test]
    fn identity_symmetric() {
        assert_eq!(pages_identical(50, 47, 0.06), pages_identical(47, 50, 0.06));
    }

    proptest! {
        #[test]
        fn identity_reflexive(n in any::<u64>()) {
            prop_assert!(pages_identical(n, n, 0.0));
        }

        #[test]
        fn identity_monotone_in_threshold(a in 0u64..1_000_000, b in 0u64..1_000_000, t in 0.0f64..0.5) {
            if pages_identical(a, b, t) {
                prop_assert!(pages_identical(a, b, t + 0.1));
            }
        }

        #[test]
        fn response_always_parses(len in 0usize..5000) {
            let resp = build_response("p.example", len);
            let (h, b) = parse_response_len(&resp).unwrap();
            prop_assert_eq!(b, len);
            prop_assert_eq!(resp.len(), h + b);
        }
    }
}
