//! The web content layer: sites, servers, CDNs, HTTP.
//!
//! This crate answers "what is at the other end of the measurement?" for
//! every monitored site:
//!
//! * [`site`] — identity, Alexa-style rank, page sizes per family, where
//!   the site's IPv4 and IPv6 presences live (same AS, a CDN for IPv4 with
//!   the origin serving IPv6, or a 6to4-mapped IPv6 address landing in a
//!   relay AS — the three mechanisms behind the paper's SL/DL split);
//! * [`server`] — per-site server behaviour, including the IPv6 *service*
//!   penalty some servers had in 2011 (the paper's explanation for ASes
//!   whose aggregate IPv6 deficit shows a per-site zero-mode);
//! * [`population`] — the generator: Zipf-ish page sizes, rank-dependent
//!   IPv6 adoption (Fig 3a), CDN fronting, adoption-timeline sampling;
//! * [`http`] — minimal HTTP/1.1 request/response bytes and the paper's 6%
//!   page-identity comparison;
//! * [`zone_build`] — projects the population into the DNS [`ZoneDb`].
//!
//! [`ZoneDb`]: ipv6web_dns::ZoneDb

pub mod http;
pub mod population;
pub mod server;
pub mod site;
pub mod zone_build;

pub use http::{
    build_http_response, build_request, build_response, build_response_header, pages_identical,
    parse_response_len, read_http_request, read_http_request_deadline, status_reason,
    truncate_response, HttpRequest, MAX_REQUEST_BODY,
};
pub use population::{v6_adoption_prob, PopulationConfig};
pub use server::{ServerFault, ServerProfile};
pub use site::{Site, SiteId, SiteV6};
pub use zone_build::build_zone;
