//! The paper as a value: every table and figure, plus renderers.

use crate::world::World;
use ipv6web_analysis::figures::{fig1_series, fig3a_series, fig3b_series, Fig1Point};
use ipv6web_analysis::tables::{
    HopTable, Table11, Table13, Table2, Table3, Table4, Table5, Table6, Table8,
};
use ipv6web_analysis::{
    better_v6_profile, h1_verdict, h2_verdict, BetterV6Profile, HypothesisVerdict, RemovalCause,
    VantageAnalysis,
};
use ipv6web_monitor::{MonitorDb, VantagePoint};
use ipv6web_web::SiteId;
use ipv6web_xlat::ClientStack;
use serde::{Deserialize, Serialize, Value};

/// Every artifact of the paper's evaluation section.
///
/// Serialization is hand-written: the `xlat` section is emitted only when
/// the scenario ran a translation plane, so reports from classic
/// (zero-gateway) scenarios stay byte-identical to those written before
/// the transition tier existed.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct Report {
    /// Table 1 metadata (vantage points).
    pub vantages: Vec<VantagePoint>,
    /// Start-date labels matching Table 1's second column.
    pub vantage_start_labels: Vec<String>,
    /// Table 2: monitoring profiles.
    pub table2: Table2,
    /// Table 3: confidence-failure causes.
    pub table3: Table3,
    /// Table 4: site classification.
    pub table4: Table4,
    /// Table 5: removed-site bias check.
    pub table5: Table5,
    /// Table 6: DL sites.
    pub table6: Table6,
    /// Table 7: DL+DP by hop count.
    pub table7: HopTable,
    /// Table 8: SP destination ASes (H1).
    pub table8: Table8,
    /// Table 9: SP by hop count.
    pub table9: HopTable,
    /// Table 10: World IPv6 Day, SP.
    pub table10: Table8,
    /// Table 11: DP destination ASes (H2).
    pub table11: Table11,
    /// Table 12: World IPv6 Day, DP.
    pub table12: Table11,
    /// Table 13: good-AS coverage of DP paths.
    pub table13: Table13,
    /// Fig 1: IPv6 reachability timeline.
    pub fig1: Vec<Fig1Point>,
    /// Fig 3a: reachability by rank bucket.
    pub fig3a: Vec<(String, f64)>,
    /// Fig 3b: (% IPv6 faster, ranked list) vs (…, full population).
    pub fig3b: (f64, f64),
    /// H1 verdict.
    pub h1: HypothesisVerdict,
    /// H2 verdict.
    pub h2: HypothesisVerdict,
    /// Section 5.5's trait investigation (the paper's negative finding).
    pub better_v6: BetterV6Profile,
    /// Per vantage point: `(name, transition removals, of which the site's
    /// IPv6 route actually changed at the epoch)` — the paper's footnoted
    /// attribution ("64 out of 283 for Penn ... the result of a path
    /// change"). Empty when the scenario schedules no route change.
    pub transition_path_changes: Vec<(String, usize, usize)>,
    /// Translated-path comparison, present only when the scenario placed
    /// NAT64 gateways.
    pub xlat: Option<XlatReport>,
    /// Cross-vantage disagreement, present only when the scenario generated
    /// a vantage population (spec-less runs stay byte-identical).
    pub panel: Option<ipv6web_analysis::PanelReport>,
}

impl Serialize for Report {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("vantages".to_string(), self.vantages.to_value()),
            ("vantage_start_labels".to_string(), self.vantage_start_labels.to_value()),
            ("table2".to_string(), self.table2.to_value()),
            ("table3".to_string(), self.table3.to_value()),
            ("table4".to_string(), self.table4.to_value()),
            ("table5".to_string(), self.table5.to_value()),
            ("table6".to_string(), self.table6.to_value()),
            ("table7".to_string(), self.table7.to_value()),
            ("table8".to_string(), self.table8.to_value()),
            ("table9".to_string(), self.table9.to_value()),
            ("table10".to_string(), self.table10.to_value()),
            ("table11".to_string(), self.table11.to_value()),
            ("table12".to_string(), self.table12.to_value()),
            ("table13".to_string(), self.table13.to_value()),
            ("fig1".to_string(), self.fig1.to_value()),
            ("fig3a".to_string(), self.fig3a.to_value()),
            ("fig3b".to_string(), self.fig3b.to_value()),
            ("h1".to_string(), self.h1.to_value()),
            ("h2".to_string(), self.h2.to_value()),
            ("better_v6".to_string(), self.better_v6.to_value()),
            ("transition_path_changes".to_string(), self.transition_path_changes.to_value()),
        ];
        if let Some(x) = &self.xlat {
            fields.push(("xlat".to_string(), x.to_value()));
        }
        if let Some(p) = &self.panel {
            fields.push(("panel".to_string(), p.to_value()));
        }
        Value::Obj(fields)
    }
}

/// One vantage point's translated-path summary: for a v6-only host the
/// "v4 slot" samples in its database traveled v6-to-the-gateway then
/// v4-onward through the stateful translator (plus the on-host CLAT for
/// 464XLAT clients), so comparing them against the native-v6 samples — and
/// against the dual-stack vantages' rows — is the transition-technology
/// counterpart of the paper's v4-vs-v6 question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XlatVantageRow {
    /// Vantage point name.
    pub vantage: String,
    /// Client stack ("dual-stack", "v6-only", "v6-only-clat").
    pub stack: String,
    /// Sites ever monitored.
    pub monitored: usize,
    /// Sites observed dual-stack (native AAAA; translator-only sites are
    /// classified v4-only and never reach here).
    pub dual_sites: usize,
    /// Same-week (v4 slot, v6) sample pairs.
    pub paired_samples: usize,
    /// Mean speed over all v4-slot samples (native v4, or the translated
    /// path on a v6-only host).
    pub mean_v4_slot_kbps: f64,
    /// Mean speed over all native-v6 samples.
    pub mean_v6_kbps: f64,
    /// Share of same-week pairs where the v6 download was faster.
    pub v6_faster_share: f64,
    /// Rounds lost to injected faults (NAT64 outages included).
    pub faulted_rounds: u64,
}

/// The report's transition-technology section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XlatReport {
    /// NAT64 gateways the world placed.
    pub gateways: usize,
    /// One row per vantage point, in Table 1 order.
    pub per_vantage: Vec<XlatVantageRow>,
    /// H1 re-run per client stack over that stack's `AS_PATH` vantages.
    pub h1_by_stack: Vec<(String, HypothesisVerdict)>,
    /// H2 re-run per client stack over that stack's `AS_PATH` vantages.
    pub h2_by_stack: Vec<(String, HypothesisVerdict)>,
}

/// Builds the transition-technology section; `None` without gateways.
fn xlat_report(
    world: &World,
    dbs: &[MonitorDb],
    analyses: &[VantageAnalysis],
) -> Option<XlatReport> {
    let x = world.xlat.as_ref()?;
    let per_vantage = world
        .vantages
        .iter()
        .zip(dbs)
        .map(|(v, db)| {
            let mut dual_sites = 0usize;
            let mut paired = 0usize;
            let mut v6_faster = 0usize;
            let (mut sum4, mut n4, mut sum6, mut n6) = (0.0f64, 0usize, 0.0f64, 0usize);
            let mut faulted_rounds = 0u64;
            for (_, rec) in db.iter() {
                if rec.dual_since.is_some() {
                    dual_sites += 1;
                }
                faulted_rounds += u64::from(rec.faulted_rounds);
                sum4 += rec.samples_v4.iter().map(|s| s.speed_kbps).sum::<f64>();
                n4 += rec.samples_v4.len();
                sum6 += rec.samples_v6.iter().map(|s| s.speed_kbps).sum::<f64>();
                n6 += rec.samples_v6.len();
                // same-week pairs, first sample of each family per week
                for s4 in &rec.samples_v4 {
                    let Some(s6) = rec.samples_v6.iter().find(|s| s.week == s4.week) else {
                        continue;
                    };
                    paired += 1;
                    if s6.speed_kbps > s4.speed_kbps {
                        v6_faster += 1;
                    }
                }
            }
            let mean = |sum: f64, n: usize| if n == 0 { 0.0 } else { sum / n as f64 };
            XlatVantageRow {
                vantage: v.name.clone(),
                stack: v.stack.name().to_string(),
                monitored: db.len(),
                dual_sites,
                paired_samples: paired,
                mean_v4_slot_kbps: mean(sum4, n4),
                mean_v6_kbps: mean(sum6, n6),
                v6_faster_share: mean(v6_faster as f64, paired),
                faulted_rounds,
            }
        })
        .collect();
    let by_stack = |verdict: fn(&[VantageAnalysis]) -> HypothesisVerdict| {
        let mut out = Vec::new();
        for stack in [ClientStack::DualStack, ClientStack::V6Only, ClientStack::V6OnlyClat] {
            let group: Vec<VantageAnalysis> = analyses
                .iter()
                .filter(|a| world.vantages.iter().any(|v| v.name == a.vantage && v.stack == stack))
                .cloned()
                .collect();
            if !group.is_empty() {
                out.push((stack.name().to_string(), verdict(&group)));
            }
        }
        out
    };
    Some(XlatReport {
        gateways: x.wiring.gateways.len(),
        per_vantage,
        h1_by_stack: by_stack(h1_verdict),
        h2_by_stack: by_stack(h2_verdict),
    })
}

/// Clones the subset of `db` covering ranked-list sites only (Fig 1 tracks
/// the top-1M list, not Penn's DNS-cache tail).
fn list_only_db(db: &MonitorDb, n_list: usize) -> MonitorDb {
    let mut out = MonitorDb::new(db.vantage.clone());
    for (site, rec) in db.iter() {
        if site.index() < n_list {
            *out.record_mut(site, rec.added_week) = rec.clone();
        }
    }
    out
}

impl Report {
    /// Assembles the report from campaign databases and analyses.
    ///
    /// `dbs` is in `world.vantages` order; `analyses` covers the `AS_PATH`
    /// vantage points; `day_analyses` the World IPv6 Day subset.
    pub fn build(
        world: &World,
        dbs: &[MonitorDb],
        analyses: &[VantageAnalysis],
        day_analyses: &[VantageAnalysis],
    ) -> Report {
        let n_list = world.scenario.population.n_sites;
        // Fig 1 and 3a use the longest-running vantage (Penn).
        let penn_idx = world.vantages.iter().position(|v| v.name == "Penn").unwrap_or(0);
        let penn_list_db = list_only_db(&dbs[penn_idx], n_list);
        let fig1 =
            fig1_series(&penn_list_db, &world.scenario.timeline, world.scenario.fig1_from_week);
        let last_week = world.scenario.campaign.total_weeks - 1;
        let sites = &world.sites;
        let fig3a = fig3a_series(
            &penn_list_db,
            |s: SiteId| (s.index() < n_list).then(|| sites[s.index()].rank),
            last_week,
        );
        // Fig 3b compares the ranked list against list+tail, from the
        // vantage with external inputs (Penn).
        let penn_analysis = analyses.iter().find(|a| a.vantage == "Penn").unwrap_or(&analyses[0]);
        let fig3b = fig3b_series(&penn_analysis.kept, |s| s.index() < n_list);

        // transition removals attributable to real route changes
        let mut transition_path_changes = Vec::new();
        if let Some((_, late_tables)) = &world.v6_epoch {
            for a in analyses {
                let vantage_idx = world
                    .vantages
                    .iter()
                    .position(|v| v.name == a.vantage)
                    .expect("analysis names a vantage");
                let early = &world.tables[vantage_idx].1;
                let late = &late_tables[vantage_idx];
                let mut transitions = 0usize;
                let mut changed = 0usize;
                for r in &a.removed {
                    if !matches!(r.cause, RemovalCause::TransitionUp | RemovalCause::TransitionDown)
                    {
                        continue;
                    }
                    transitions += 1;
                    let Some(dest) = world.sites[r.site.index()].v6.as_ref().map(|v| v.dest_as)
                    else {
                        continue;
                    };
                    let path_changed = match (early.as_path(dest), late.as_path(dest)) {
                        (Some(p1), Some(p2)) => !p1.same_route(p2),
                        (a, b) => a.is_some() != b.is_some(),
                    };
                    if path_changed {
                        changed += 1;
                    }
                }
                transition_path_changes.push((a.vantage.clone(), transitions, changed));
            }
        }

        Report {
            vantages: world.vantages.clone(),
            vantage_start_labels: world
                .vantages
                .iter()
                .map(|v| world.scenario.timeline.date_label(v.start_week))
                .collect(),
            table2: Table2::build(analyses),
            table3: Table3::build(analyses),
            table4: Table4::build(analyses),
            table5: Table5::build(analyses),
            table6: Table6::build(analyses),
            table7: HopTable::table7(analyses),
            table8: Table8::build(analyses),
            table9: HopTable::table9(analyses),
            table10: Table8::build_ipv6_day(day_analyses),
            table11: Table11::build(analyses),
            table12: Table11::build_ipv6_day(day_analyses),
            table13: Table13::build(analyses),
            fig1,
            fig3a,
            fig3b,
            h1: h1_verdict(analyses),
            h2: h2_verdict(analyses),
            better_v6: better_v6_profile(&world.topo, analyses),
            transition_path_changes,
            xlat: xlat_report(world, dbs, analyses),
            panel: world
                .scenario
                .vantage_population
                .as_ref()
                .map(|_| ipv6web_analysis::panel_report(analyses, world.vantages.len())),
        }
    }

    /// Renders the cross-vantage disagreement section; empty without a
    /// generated vantage population.
    pub fn render_panel(&self) -> String {
        let Some(p) = &self.panel else { return String::new() };
        let mut out = format!(
            "Cross-vantage disagreement: {} vantage points, {} with AS_PATH feeds.\n",
            p.vantages, p.analyzed
        );
        out.push_str(&format!(
            "{:<4} {:<8} {:>6}/{:<11} {:>18} {:>6}\n",
            "", "pooled", "holds", "evidential", "solo agreement", "flips"
        ));
        for s in [&p.h1, &p.h2] {
            out.push_str(&format!(
                "{:<4} {:<8} {:>6}/{:<11} {:>10.3} ±{:>5.3} {:>6}\n",
                s.hypothesis,
                if s.pooled_holds { "HOLDS" } else { "REJECTED" },
                s.holds,
                s.evidential,
                s.agreement.mean,
                s.agreement.half_width,
                if s.flips { "yes" } else { "no" },
            ));
        }
        for s in [&p.h1, &p.h2] {
            if s.dissenters.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "{} dissenters ({} of {} solo verdicts contradict the pooled one):",
                s.hypothesis,
                s.dissenters.len(),
                s.evidential
            ));
            for name in s.dissenters.iter().take(12) {
                out.push_str(&format!(" {name}"));
            }
            if s.dissenters.len() > 12 {
                out.push_str(&format!(" … ({} more)", s.dissenters.len() - 12));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the transition-technology section; empty without gateways.
    pub fn render_xlat(&self) -> String {
        let Some(x) = &self.xlat else { return String::new() };
        let mut out = format!(
            "Transition technologies: {} NAT64 gateway(s), DNS64 + 464XLAT clients.\n",
            x.gateways
        );
        out.push_str(&format!(
            "{:<16} {:<13} {:>6} {:>6} {:>7} {:>12} {:>9} {:>10}\n",
            "Vantage Point",
            "Stack",
            "Sites",
            "Dual",
            "Paired",
            "v4-slot kbps",
            "v6 kbps",
            "v6 faster"
        ));
        out.push_str(&"-".repeat(86));
        out.push('\n');
        for r in &x.per_vantage {
            out.push_str(&format!(
                "{:<16} {:<13} {:>6} {:>6} {:>7} {:>12.1} {:>9.1} {:>9.1}%\n",
                r.vantage,
                r.stack,
                r.monitored,
                r.dual_sites,
                r.paired_samples,
                r.mean_v4_slot_kbps,
                r.mean_v6_kbps,
                100.0 * r.v6_faster_share,
            ));
        }
        for (title, verdicts) in [("H1", &x.h1_by_stack), ("H2", &x.h2_by_stack)] {
            out.push_str(&format!("{title} by client stack:\n"));
            for (stack, v) in verdicts {
                out.push_str(&format!("  {stack}: {}\n", v.summary));
            }
        }
        out
    }

    /// Renders Table 1.
    pub fn render_table1(&self) -> String {
        let mut out = String::from("Table 1: Monitoring vantage-points.\n");
        out.push_str(&format!(
            "{:<16} {:<10} {:<8} {:<4} {:<7}\n",
            "Vantage Point", "Date", "AS PATH", "W-L", "Type"
        ));
        out.push_str(&"-".repeat(50));
        out.push('\n');
        for (v, label) in self.vantages.iter().zip(&self.vantage_start_labels) {
            out.push_str(&format!(
                "{:<16} {:<10} {:<8} {:<4} {:<7}\n",
                v.name,
                label,
                if v.has_as_path { "Y" } else { "N" },
                if v.white_listed { "Y" } else { "N" },
                v.kind.to_string(),
            ));
        }
        out
    }

    /// Renders Fig 1 as a text sparkline table.
    pub fn render_fig1(&self) -> String {
        let mut out = String::from("Figure 1: IPv6 Reachability (Top 1M Websites).\n");
        let max = self.fig1.iter().map(|p| p.reachable_pct).fold(0.0, f64::max);
        for p in &self.fig1 {
            let bar_len = if max > 0.0 { (40.0 * p.reachable_pct / max) as usize } else { 0 };
            out.push_str(&format!(
                "{} {:>6.2}% {}\n",
                p.label,
                p.reachable_pct,
                "#".repeat(bar_len)
            ));
        }
        out
    }

    /// Renders Fig 3a.
    pub fn render_fig3a(&self) -> String {
        let mut out = String::from("Figure 3a: IPv6 reachability by rank.\n");
        for (label, pct) in &self.fig3a {
            out.push_str(&format!("{label:<10} {pct:>6.2}%\n"));
        }
        out
    }

    /// Renders Fig 3b.
    pub fn render_fig3b(&self) -> String {
        format!(
            "Figure 3b: How often is IPv6 download faster.\nTop list  {:>6.2}%\nAll sites {:>6.2}%\n",
            self.fig3b.0, self.fig3b.1
        )
    }

    /// Renders the full report: all figures, all tables, both verdicts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("=== Assessing IPv6 Through Web Access — reproduction report ===\n\n");
        out.push_str(&self.render_fig1());
        out.push('\n');
        out.push_str(&self.render_fig3a());
        out.push('\n');
        out.push_str(&self.render_fig3b());
        out.push('\n');
        out.push_str(&self.render_table1());
        out.push('\n');
        for table in [
            self.table2.to_string(),
            self.table3.to_string(),
            self.table4.to_string(),
            self.table5.to_string(),
            self.table6.to_string(),
            self.table7.to_string(),
            self.table8.to_string(),
            self.table9.to_string(),
            self.table10.to_string(),
            self.table11.to_string(),
            self.table12.to_string(),
            self.table13.to_string(),
        ] {
            out.push_str(&table);
            out.push('\n');
        }
        if !self.transition_path_changes.is_empty() {
            out.push_str("Transition removals attributable to IPv6 route changes:\n");
            for (v, transitions, changed) in &self.transition_path_changes {
                out.push_str(&format!("  {v}: {changed} of {transitions}\n"));
            }
            out.push('\n');
        }
        if self.xlat.is_some() {
            out.push_str(&self.render_xlat());
            out.push('\n');
        }
        if self.panel.is_some() {
            out.push_str(&self.render_panel());
            out.push('\n');
        }
        out.push_str(&self.better_v6.to_string());
        out.push('\n');
        out.push_str(&format!("{}\n{}\n", self.h1.summary, self.h2.summary));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Report::build is exercised end-to-end in study.rs tests and the
    // integration suite; here we cover the standalone helpers.

    #[test]
    fn list_only_db_filters() {
        let mut db = MonitorDb::new("Penn");
        db.record_mut(SiteId(1), 0).has_a = true;
        db.record_mut(SiteId(99), 0).has_a = true;
        let filtered = list_only_db(&db, 50);
        assert!(filtered.record(SiteId(1)).is_some());
        assert!(filtered.record(SiteId(99)).is_none());
        assert_eq!(filtered.vantage, "Penn");
    }
}
