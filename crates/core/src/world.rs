//! World construction: topology, population, DNS, vantage points, tables.

use crate::scenario::Scenario;
use ipv6web_alexa::TopList;
use ipv6web_bgp::{BgpTable, RouteStore};
use ipv6web_faults::FaultInjector;
use ipv6web_monitor::{
    Disturbances, PopulationError, ProbeContext, ProbeFaults, ProbeXlat, VantageCountError,
    VantagePoint,
};
use ipv6web_stats::derive_rng;
use ipv6web_topology::{
    generate as generate_topology, AsId, EdgeId, Family, Region, Tier, Topology,
};
use ipv6web_web::{build_zone, population, Site};
use rand::seq::SliceRandom;

/// A fully built simulated world, ready for monitoring.
pub struct World {
    /// The scenario it was built from.
    pub scenario: Scenario,
    /// The dual-stack AS topology.
    pub topo: Topology,
    /// All sites: ranked-list sites first (`0..n_sites`), then the
    /// DNS-cache tail.
    pub sites: Vec<Site>,
    /// Authoritative DNS for every site.
    pub zone: ipv6web_dns::ZoneDb,
    /// The ranked list (list sites only; the tail enters through Penn's
    /// external inputs).
    pub list: TopList,
    /// Site ids of the tail.
    pub tail_ids: Vec<u32>,
    /// The six vantage points of Table 1.
    pub vantages: Vec<VantagePoint>,
    /// Per-vantage `(IPv4, IPv6)` BGP tables, in `vantages` order.
    pub tables: Vec<(BgpTable, BgpTable)>,
    /// Post-epoch IPv6 tables (same order), when the scenario schedules a
    /// mid-campaign route change, plus the epoch week.
    pub v6_epoch: Option<(u32, Vec<BgpTable>)>,
    /// The post-epoch topology (for diagnostics and path-change
    /// attribution), when scheduled.
    pub topo_late: Option<Topology>,
    /// Injected performance disturbances.
    pub disturbances: Disturbances,
    /// The fault injector, when the scenario's plan is non-empty.
    pub injector: Option<FaultInjector>,
    /// Cumulative v6 routing epochs `(week, per-vantage tables)` sorted by
    /// week, covering the scenario's scheduled route change *and* injected
    /// BGP session flaps — the chain probes walk when faults are active.
    /// Empty when the plan is empty (then `v6_epoch` alone carries the
    /// scenario epoch, exactly as before fault injection existed).
    pub fault_epochs: Vec<(u32, Vec<BgpTable>)>,
    /// The NAT64 translation plane, when the scenario places gateways.
    pub xlat: Option<XlatWorld>,
}

/// The built NAT64/DNS64 plane: where the translators sit, what each one
/// costs, their onward v4 tables, and every vantage point's gateway
/// preference order.
pub struct XlatWorld {
    /// Gateway placement, per-gateway cost model, and per-gateway IPv4
    /// route tables toward every site.
    pub wiring: ipv6web_xlat::XlatWiring,
    /// Per-vantage gateway indices, nearest (shortest week-0 IPv6
    /// `AS_PATH`) first — the order a v6-only host fails over in.
    pub pref: Vec<Vec<usize>>,
}

/// Typed error from [`World::try_build`]: everything that can go wrong
/// between a validated scenario and a built world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldError {
    /// The scenario failed [`Scenario::validate`].
    InvalidScenario(String),
    /// The topology has fewer eligible (dual-stack access) ASes than the
    /// vantage population needs — `found` of the `needed` monitors could
    /// be placed.
    InsufficientVantageAses {
        /// How many vantage ASes the scenario asks for.
        needed: usize,
        /// How many eligible ASes the topology has.
        found: usize,
    },
    /// Table 1 wiring received the wrong number of access ASes.
    VantageTable(VantageCountError),
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            WorldError::InsufficientVantageAses { needed, found } => write!(
                f,
                "not enough dual-stack access ASes for {needed} vantage points \
                 (topology has {found}); grow the topology or shrink the population"
            ),
            WorldError::VantageTable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WorldError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorldError::VantageTable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VantageCountError> for WorldError {
    fn from(e: VantageCountError) -> Self {
        WorldError::VantageTable(e)
    }
}

impl From<PopulationError> for WorldError {
    fn from(e: PopulationError) -> Self {
        match e {
            PopulationError::InsufficientAses { needed, found } => {
                WorldError::InsufficientVantageAses { needed, found }
            }
        }
    }
}

/// Picks six dual-stack access ASes for the vantage points, preferring the
/// paper's regional spread (Table 1: two North America, three Europe, one
/// Asia) and falling back to any dual-stack access AS when a region runs
/// dry.
fn pick_vantage_ases(topo: &Topology) -> Result<[AsId; 6], WorldError> {
    let wanted = [
        Region::NorthAmerica, // Comcast
        Region::Europe,       // Go6 (Slovenia)
        Region::Europe,       // Loughborough
        Region::NorthAmerica, // Penn
        Region::Asia,         // Tsinghua
        Region::Europe,       // UPC Broadband
    ];
    // Section 4 of the paper: the monitors "had high quality native IPv6
    // (and IPv4) connectivity" — so vantage points live in dual-stack
    // access ASes whose v6 uplink is native (not a 6in4 tunnel).
    let native_v6 = |id: AsId| {
        topo.neighbors(id, ipv6web_topology::Family::V6).iter().any(|&(_, rel, eid)| {
            rel == ipv6web_topology::Relationship::CustomerOf && topo.edge(eid).tunnel.is_none()
        })
    };
    let eligible =
        topo.nodes().iter().filter(|n| n.tier == Tier::Access && n.is_dual_stack()).count();
    if eligible < wanted.len() {
        return Err(WorldError::InsufficientVantageAses { needed: wanted.len(), found: eligible });
    }
    let mut picked: Vec<AsId> = Vec::with_capacity(6);
    for want in wanted {
        let candidate = |region_bound: bool| {
            topo.nodes().iter().find(|n| {
                n.tier == Tier::Access
                    && n.is_dual_stack()
                    && (!region_bound || n.region == want)
                    && native_v6(n.id)
                    && !picked.contains(&n.id)
            })
        };
        let found = candidate(true)
            .or_else(|| candidate(false))
            .or_else(|| {
                // last resort: any dual-stack access AS, tunneled or not
                topo.nodes().iter().find(|n| {
                    n.tier == Tier::Access && n.is_dual_stack() && !picked.contains(&n.id)
                })
            })
            .ok_or(WorldError::InsufficientVantageAses { needed: 6, found: eligible })?;
        picked.push(found.id);
    }
    Ok(picked.try_into().expect("exactly six"))
}

impl World {
    /// Builds a world from a scenario.
    ///
    /// Each build phase runs under an [`ipv6web_obs::span`]; collect them
    /// with [`ipv6web_obs::take_spans_since`] (as [`crate::run_study`]
    /// does) for the wall-clock breakdown.
    ///
    /// # Panics
    /// Panics when the scenario fails validation or the topology cannot
    /// host the vantage population; production callers should use
    /// [`World::try_build`].
    pub fn build(scenario: &Scenario) -> World {
        World::try_build(scenario).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`World::build`]: returns a typed [`WorldError`] instead
    /// of panicking — in particular
    /// [`WorldError::InsufficientVantageAses`] when the topology is too
    /// small for the (fixed six or generated) vantage population.
    pub fn try_build(scenario: &Scenario) -> Result<World, WorldError> {
        scenario.validate().map_err(WorldError::InvalidScenario)?;
        let topo = {
            let _s = ipv6web_obs::span("world: topology");
            generate_topology(&scenario.topology, scenario.seed)
        };

        let mut pop_cfg = scenario.population.clone();
        pop_cfg.n_sites = scenario.total_sites();
        pop_cfg.adoption_curve = scenario.timeline.curve();
        let (sites, names) = {
            let _s = ipv6web_obs::span("world: population");
            population::generate(&pop_cfg, &topo, scenario.seed)
        };
        let zone = {
            let _s = ipv6web_obs::span("world: dns zone");
            build_zone(&topo, &sites, names)
        };

        let n_list = scenario.population.n_sites;
        let list = TopList::from_parts(
            sites[..n_list].iter().map(|s| (s.id.0, s.rank, s.first_seen_week)),
        );
        let tail_ids: Vec<u32> = (n_list as u32..scenario.total_sites() as u32).collect();

        let vantages: Vec<VantagePoint> = match &scenario.vantage_population {
            // generated population: sampled straight from the topology,
            // stacks from the spec's mix (validation rejects named
            // xlat.stacks alongside a population)
            Some(pop) => {
                let _s = ipv6web_obs::span("world: vantage population");
                pop.generate(&topo, scenario.seed, scenario.campaign.total_weeks)?
            }
            // the paper's Table 1 six. Start weeks in Table 1 are
            // calibrated to a 52-week campaign; rescale for shorter
            // scenarios.
            None => {
                let vantage_ases = pick_vantage_ases(&topo)?;
                VantagePoint::try_paper_table1(&vantage_ases)?
                    .into_iter()
                    .map(|mut v| {
                        v.start_week = v.start_week * scenario.campaign.total_weeks / 52;
                        v.stack = scenario.xlat.stack_of(&v.name);
                        v
                    })
                    .collect()
            }
        };

        let xlat_gateways = if scenario.xlat.gateways > 0 {
            ipv6web_xlat::place_gateways(&topo, scenario.seed, scenario.xlat.gateways)
        } else {
            Vec::new()
        };

        let mut dests: Vec<AsId> = sites.iter().map(|s| s.v4_as).collect();
        dests.extend(sites.iter().filter_map(|s| s.v6.as_ref().map(|v| v.dest_as)));
        // the v6 tables must also reach the translators (the v6 leg of a
        // translated path); with zero gateways this adds nothing and the
        // destination set — hence every table — is exactly the classic one
        dests.extend(xlat_gateways.iter().copied());
        dests.sort();
        dests.dedup();
        // Per-destination route computations are shared: one RouteStore per
        // family serves all six vantage points, and the v6 store survives to
        // seed the post-route-change rebuild below.
        let vantage_ids: Vec<AsId> = vantages.iter().map(|v| v.as_id).collect();
        // Streaming mode (internet tier) never retains a RouteStore: the
        // per-destination computations are extracted and dropped on the
        // fly, so `store_v6` is `None` and epoch rebuilds stream from the
        // flipped topology instead of the memoized store.
        let (t4, store_v6) = if scenario.stream_routes.0 {
            let t4 = {
                let _s = ipv6web_obs::span("world: route tables (v4)");
                RouteStore::stream_tables(&topo, Family::V4, &dests, &vantage_ids)
            };
            (t4, None)
        } else {
            let t4 = {
                let _s = ipv6web_obs::span("world: route tables (v4)");
                RouteStore::build(&topo, Family::V4, &dests).tables_for(&vantage_ids)
            };
            let store_v6 = {
                let _s = ipv6web_obs::span("world: route tables (v6)");
                RouteStore::build(&topo, Family::V6, &dests)
            };
            (t4, Some(store_v6))
        };
        let t6 = match &store_v6 {
            Some(store) => store.tables_for(&vantage_ids),
            None => {
                let _s = ipv6web_obs::span("world: route tables (v6)");
                RouteStore::stream_tables(&topo, Family::V6, &dests, &vantage_ids)
            }
        };
        let tables: Vec<(BgpTable, BgpTable)> = t4.into_iter().zip(t6).collect();

        // The scenario's scheduled route-change edge sample. The RNG
        // stream and candidate filters are the same whether or not fault
        // injection is active, so the scenario epoch is identical in both
        // modes.
        let scenario_event = scenario.route_change.map(|(week, gain_frac, loss_frac)| {
            let mut rng = derive_rng(scenario.seed, "route-change");
            let mut gain_candidates: Vec<EdgeId> = topo
                .edges()
                .iter()
                .filter(|e| {
                    e.v4 && !e.v6
                        && topo.node(e.a).is_dual_stack()
                        && topo.node(e.b).is_dual_stack()
                })
                .map(|e| e.id)
                .collect();
            let mut loss_candidates: Vec<EdgeId> = topo
                .edges()
                .iter()
                .filter(|e| e.v6 && e.v4 && e.tunnel.is_none())
                .map(|e| e.id)
                .collect();
            gain_candidates.shuffle(&mut rng);
            loss_candidates.shuffle(&mut rng);
            let n_gain = (gain_candidates.len() as f64 * gain_frac).round() as usize;
            let n_loss = (loss_candidates.len() as f64 * loss_frac).round() as usize;
            gain_candidates.truncate(n_gain);
            loss_candidates.truncate(n_loss);
            (week, gain_candidates, loss_candidates)
        });

        // Mid-campaign IPv6 route changes: flip a slice of edges and
        // recompute the IPv6 tables for the second epoch. IPv4 stays put —
        // the paper's transitions were an IPv6-deployment phenomenon.
        let (v6_epoch, topo_late, injector, fault_epochs) = if scenario.faults.is_empty() {
            // fault-free: the single scheduled epoch, exactly as before
            let (v6_epoch, topo_late) = match scenario_event {
                None => (None, None),
                Some((week, gains, losses)) => {
                    let _s = ipv6web_obs::span("world: route tables (v6 epoch)");
                    let late = topo.with_v6_flips(&gains, &losses);
                    let t6_late = match &store_v6 {
                        // memoized rebuild: only destinations the flipped
                        // edges can affect are recomputed; the rest reuse
                        // the early store
                        Some(store) => {
                            let (late_store, _recomputed) =
                                store.rebuild_with_flips(&late, &gains, &losses);
                            late_store.tables_for(&vantage_ids)
                        }
                        // streaming mode: from-scratch streamed build on
                        // the flipped topology
                        None => RouteStore::stream_tables(&late, Family::V6, &dests, &vantage_ids),
                    };
                    (Some((week, t6_late)), Some(late))
                }
            };
            (v6_epoch, topo_late, None, Vec::new())
        } else {
            // fault injection: BGP session flaps add extra routing epochs;
            // all epochs (scenario event included) chain cumulatively
            // through the memoized store
            let _s = ipv6web_obs::span("world: route tables (v6 epochs, faulted)");
            let injector = FaultInjector::new(scenario.faults.clone(), scenario.seed);
            let mut events: Vec<(u32, Vec<EdgeId>, Vec<EdgeId>, bool)> = injector
                .bgp_events(&topo)
                .into_iter()
                .map(|(week, gains, losses)| (week, gains, losses, false))
                .collect();
            if let Some((week, gains, losses)) = scenario_event {
                events.push((week, gains, losses, true));
            }
            // stable order: by week, the scenario event first on ties
            events.sort_by_key(|&(week, _, _, is_scenario)| (week, !is_scenario));
            let flips: Vec<(Vec<EdgeId>, Vec<EdgeId>)> =
                events.iter().map(|(_, g, l, _)| (g.clone(), l.clone())).collect();
            // per-event cumulative `(topology, per-vantage tables)`
            let chain: Vec<(Topology, Vec<BgpTable>)> = match &store_v6 {
                Some(store) => store
                    .rebuild_sequence(&topo, &flips)
                    .into_iter()
                    .map(|(late_topo, late_store, _n)| {
                        let tables = late_store.tables_for(&vantage_ids);
                        (late_topo, tables)
                    })
                    .collect(),
                // streaming mode: apply flips cumulatively and stream each
                // epoch's tables from scratch
                None => {
                    let mut cur = topo.clone();
                    flips
                        .iter()
                        .map(|(gains, losses)| {
                            cur = cur.with_v6_flips(gains, losses);
                            let tables =
                                RouteStore::stream_tables(&cur, Family::V6, &dests, &vantage_ids);
                            (cur.clone(), tables)
                        })
                        .collect()
                }
            };
            let mut v6_epoch = None;
            let mut topo_late = None;
            let mut fault_epochs = Vec::with_capacity(chain.len());
            for ((week, _, _, is_scenario), (late_topo, tables)) in events.iter().zip(chain) {
                if *is_scenario {
                    v6_epoch = Some((*week, tables.clone()));
                    topo_late = Some(late_topo);
                }
                fault_epochs.push((*week, tables));
            }
            (v6_epoch, topo_late, Some(injector), fault_epochs)
        };

        // The translation plane: per-gateway cost draws, each gateway's
        // onward v4 table, and every vantage point's failover order
        // (nearest gateway by week-0 IPv6 AS_PATH length first).
        let xlat = if xlat_gateways.is_empty() {
            None
        } else {
            let _s = ipv6web_obs::span("world: xlat wiring");
            let costs =
                ipv6web_xlat::gateway_costs(&scenario.xlat, scenario.seed, xlat_gateways.len());
            let gw_tables: Vec<BgpTable> = xlat_gateways
                .iter()
                .map(|&g| BgpTable::build(&topo, g, Family::V4, &dests))
                .collect();
            let pref: Vec<Vec<usize>> = tables
                .iter()
                .map(|(_, t6)| {
                    let mut order: Vec<usize> = (0..xlat_gateways.len()).collect();
                    order.sort_by_key(|&i| {
                        (t6.route(xlat_gateways[i]).map_or(usize::MAX, |r| r.as_path.hops()), i)
                    });
                    order
                })
                .collect();
            Some(XlatWorld {
                wiring: ipv6web_xlat::XlatWiring {
                    gateways: xlat_gateways,
                    costs,
                    tables: gw_tables,
                },
                pref,
            })
        };

        let disturbances = Disturbances::generate(
            &scenario.disturbances,
            sites.len(),
            scenario.campaign.total_weeks,
            scenario.seed,
        );

        Ok(World {
            scenario: scenario.clone(),
            topo,
            sites,
            zone,
            list,
            tail_ids,
            vantages,
            tables,
            v6_epoch,
            topo_late,
            disturbances,
            injector,
            fault_epochs,
            xlat,
        })
    }

    /// Sites participating in World IPv6 Day that are dual-stack and
    /// present by the event week.
    pub fn ipv6_day_participants(&self) -> Vec<ipv6web_web::SiteId> {
        let day = self.scenario.timeline.ipv6_day_week;
        self.sites
            .iter()
            .filter(|s| {
                s.first_seen_week <= day
                    && s.v6.as_ref().is_some_and(|v| v.ipv6_day_participant && v.from_week <= day)
            })
            .map(|s| s.id)
            .collect()
    }

    /// The probe context for vantage point `vantage_idx`: everything one
    /// campaign's probes read, borrowed from this world. `faults` is the
    /// matching [`World::probe_faults`] wiring (or `None` for the
    /// fault-free pipeline). Public so tests can drive
    /// [`ipv6web_monitor::run_campaign_resumable`] for a single vantage
    /// point — e.g. to stage partial checkpoints before a resumed study.
    pub fn probe_ctx<'a>(
        &'a self,
        vantage_idx: usize,
        faults: Option<&'a ProbeFaults<'a>>,
    ) -> ProbeContext<'a> {
        let s = &self.scenario;
        ProbeContext {
            topo: &self.topo,
            sites: &self.sites,
            zone: &self.zone,
            table_v4: &self.tables[vantage_idx].0,
            table_v6: &self.tables[vantage_idx].1,
            disturbances: &self.disturbances,
            tcp: s.tcp,
            ci_rule: s.ci_rule,
            identity_threshold: s.identity_threshold,
            round_noise_sigma: s.round_noise_sigma,
            seed: s.seed,
            vantage_name: &self.vantages[vantage_idx].name,
            white_listed: self.vantages[vantage_idx].white_listed,
            v6_epoch: self.v6_epoch.as_ref().map(|(week, tables)| (*week, &tables[vantage_idx])),
            faults,
            stack: self.vantages[vantage_idx].stack,
            xlat: self.xlat.as_ref().map(|x| ProbeXlat {
                wiring: &x.wiring,
                pref: &x.pref[vantage_idx],
                clat_ms: s.xlat.clat_ms,
            }),
        }
    }

    /// The per-vantage fault wiring: the injector plus this vantage
    /// point's slice of the cumulative v6 epoch chain. `None` when the
    /// plan is empty, so the fault-free pipeline stays bit-identical.
    pub fn probe_faults(&self, vantage_idx: usize) -> Option<ProbeFaults<'_>> {
        self.injector.as_ref().map(|injector| ProbeFaults {
            injector,
            retry: self.scenario.faults.retry,
            v6_epochs: self
                .fault_epochs
                .iter()
                .map(|(week, tables)| (*week, &tables[vantage_idx]))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| World::build(&Scenario::quick(11)))
    }

    #[test]
    fn world_has_expected_shape() {
        let w = world();
        assert_eq!(w.sites.len(), w.scenario.total_sites());
        assert_eq!(w.list.len(), w.scenario.population.n_sites);
        assert_eq!(w.tail_ids.len(), w.scenario.tail_sites);
        assert_eq!(w.vantages.len(), 6);
        assert_eq!(w.tables.len(), 6);
        assert_eq!(w.zone.len(), w.sites.len());
    }

    #[test]
    fn vantage_ases_distinct_dual_access() {
        let w = world();
        let mut seen = std::collections::BTreeSet::new();
        for v in &w.vantages {
            assert!(seen.insert(v.as_id), "vantage ASes must be distinct");
            let node = w.topo.node(v.as_id);
            assert_eq!(node.tier, Tier::Access);
            assert!(node.is_dual_stack(), "vantage needs native v6");
        }
    }

    #[test]
    fn start_weeks_rescaled_into_campaign() {
        let w = world();
        for v in &w.vantages {
            assert!(v.start_week < w.scenario.campaign.total_weeks);
        }
        // Penn still starts at 0
        assert_eq!(w.vantages[3].start_week, 0);
    }

    #[test]
    fn tables_indexed_like_vantages() {
        let w = world();
        for (v, (t4, t6)) in w.vantages.iter().zip(&w.tables) {
            assert_eq!(t4.vantage_as, v.as_id);
            assert_eq!(t6.vantage_as, v.as_id);
            assert!(t4.len() >= t6.len(), "v6 table cannot exceed v4");
            assert!(!t4.is_empty());
        }
    }

    #[test]
    fn participants_subset_of_dual_sites() {
        let w = world();
        let parts = w.ipv6_day_participants();
        assert!(!parts.is_empty(), "some participants expected");
        let day = w.scenario.timeline.ipv6_day_week;
        for p in parts {
            let s = &w.sites[p.index()];
            assert!(s.is_dual_stack(day));
            assert!(s.v6.as_ref().unwrap().ipv6_day_participant);
        }
    }

    #[test]
    fn deterministic_build() {
        let a = World::build(&Scenario::quick(5));
        let b = World::build(&Scenario::quick(5));
        assert_eq!(a.sites, b.sites);
        assert_eq!(a.vantages, b.vantages);
    }

    #[test]
    fn too_small_topology_is_a_typed_error() {
        // classic six: no dual-stack access ASes at all
        let mut s = Scenario::quick(3);
        s.topology.dual.access_adoption = 0.0;
        match World::try_build(&s) {
            Err(WorldError::InsufficientVantageAses { needed: 6, found }) => {
                assert_eq!(found, 0)
            }
            other => panic!("expected InsufficientVantageAses, got {:?}", other.err()),
        }
        // generated population bigger than the whole access tier
        let mut s = Scenario::quick(3);
        s.vantage_population =
            Some(ipv6web_monitor::VantagePopulation { count: 500, ..Default::default() });
        match World::try_build(&s) {
            Err(WorldError::InsufficientVantageAses { needed: 500, found }) => {
                assert!(found < 500, "quick topology cannot host 500 monitors")
            }
            other => panic!("expected InsufficientVantageAses, got {:?}", other.err()),
        }
    }

    #[test]
    fn population_world_builds_generated_vantages() {
        let mut s = Scenario::quick(11);
        s.topology = ipv6web_topology::TopologyConfig::scaled(700);
        s.topology.dual.access_adoption = 0.6;
        s.population.n_sites = 400;
        s.tail_sites = 100;
        s.vantage_population =
            Some(ipv6web_monitor::VantagePopulation { count: 50, ..Default::default() });
        let w = World::build(&s);
        assert_eq!(w.vantages.len(), 50);
        assert_eq!(w.tables.len(), 50, "one table pair per vantage");
        let mut seen = std::collections::BTreeSet::new();
        for (v, (t4, t6)) in w.vantages.iter().zip(&w.tables) {
            assert!(seen.insert(v.as_id), "vantage ASes must be distinct");
            assert_eq!(t4.vantage_as, v.as_id);
            assert_eq!(t6.vantage_as, v.as_id);
            assert!(v.start_week < s.campaign.total_weeks);
        }
        // the anchor plays the Penn role
        assert_eq!(w.vantages[0].start_week, 0);
        assert!(w.vantages[0].external_inputs);
    }

    #[test]
    fn quick_world_has_no_xlat_plane() {
        let w = world();
        assert!(w.xlat.is_none());
        assert!(w.vantages.iter().all(|v| v.stack == ipv6web_xlat::ClientStack::DualStack));
    }

    #[test]
    fn nat64_world_wires_gateways_and_stacks() {
        let w = World::build(&Scenario::nat64(11));
        let x = w.xlat.as_ref().expect("nat64 scenario builds a translation plane");
        assert_eq!(x.wiring.gateways.len(), 3);
        assert_eq!(x.wiring.costs.len(), 3);
        assert_eq!(x.wiring.tables.len(), 3);
        assert_eq!(x.pref.len(), 6, "one preference order per vantage");
        for (vi, pref) in x.pref.iter().enumerate() {
            let mut sorted = pref.clone();
            sorted.sort();
            assert_eq!(sorted, vec![0, 1, 2], "vantage {vi} must rank every gateway once");
            // every vantage's v6 table reaches its first-choice gateway
            let t6 = &w.tables[vi].1;
            assert!(t6.route(x.wiring.gateways[pref[0]]).is_some());
        }
        // gateways sit in the provider core and are dual-stack
        for &g in &x.wiring.gateways {
            let node = w.topo.node(g);
            assert!(matches!(node.tier, Tier::Tier1 | Tier::Transit), "{:?}", node.tier);
            assert!(node.is_dual_stack());
        }
        // the stack axis landed on the right vantage points
        let stacks: Vec<_> = w.vantages.iter().map(|v| (v.name.as_str(), v.stack)).collect();
        use ipv6web_xlat::ClientStack::*;
        assert_eq!(
            stacks,
            vec![
                ("Comcast", DualStack),
                ("Go6-Slovenia", V6Only),
                ("Loughborough U.", V6Only),
                ("Penn", DualStack),
                ("Tsinghua U.", V6OnlyClat),
                ("UPC Broadband", V6OnlyClat),
            ]
        );
    }
}
