//! Study orchestration: build a world, run the campaign, produce the paper.
//!
//! This crate ties every substrate together in the order the paper's
//! methodology implies:
//!
//! 1. [`Scenario`] fixes every knob (topology, population, timeline,
//!    campaign, thresholds) plus a single seed — one scenario, one world,
//!    bit-identical results.
//! 2. [`World::build`] generates the AS graph, the site population, the
//!    DNS zone, the six vantage points of Table 1, and each vantage
//!    point's BGP tables.
//! 3. [`run_study`] executes the weekly campaign from every vantage point,
//!    the World IPv6 Day side experiment, and the full analysis pipeline.
//! 4. [`Report`] holds every table and figure of the paper and renders the
//!    whole set as text (or JSON via serde).
//!
//! ```no_run
//! use ipv6web_core::{run_study, Scenario};
//!
//! let study = run_study(&Scenario::quick(42)).expect("valid scenario");
//! println!("{}", study.report.render());
//! assert!(study.report.h1.holds && study.report.h2.holds);
//! ```

pub mod report;
pub mod scenario;
pub mod study;
pub mod world;

pub use ipv6web_obs::{SpanRecord, Timings};
pub use report::Report;
pub use scenario::{Scenario, StreamRoutes};
pub use study::{
    run_study, run_study_mode, run_study_on_world, ExecutionMode, StudyError, StudyResult,
};
pub use world::{World, WorldError};
