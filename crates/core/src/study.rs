//! Full study execution.

use crate::report::Report;
use crate::scenario::Scenario;
use crate::world::World;
use ipv6web_analysis::{analyze_vantage_faulted, AnalysisConfig, VantageAnalysis};
use ipv6web_monitor::{
    checkpoint_path, run_campaign_resumable, run_ipv6_day_rounds, validate_checkpoint_dir,
    CampaignError, MonitorDb,
};
use std::path::Path;
use std::sync::Arc;

/// Why a study run could not complete.
#[derive(Debug)]
pub enum StudyError {
    /// The scenario failed [`Scenario::validate`].
    InvalidScenario(String),
    /// A campaign aborted (bad config, or a checkpoint write/read failed).
    Campaign(CampaignError),
    /// The world could not be built (e.g. the topology is too small for
    /// the vantage population).
    World(crate::world::WorldError),
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StudyError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            StudyError::Campaign(e) => write!(f, "{e}"),
            StudyError::World(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StudyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StudyError::InvalidScenario(_) => None,
            StudyError::Campaign(e) => Some(e),
            StudyError::World(e) => Some(e),
        }
    }
}

impl From<CampaignError> for StudyError {
    fn from(e: CampaignError) -> Self {
        StudyError::Campaign(e)
    }
}

impl From<crate::world::WorldError> for StudyError {
    fn from(e: crate::world::WorldError) -> Self {
        StudyError::World(e)
    }
}

/// Everything a study run produces.
pub struct StudyResult {
    /// The world it ran in. Shared (`Arc`) so a long-running service can
    /// run several concurrent studies against one built world — including
    /// its memoized route tables — without rebuilding or copying it.
    pub world: Arc<World>,
    /// Per-vantage campaign databases, in `world.vantages` order.
    pub dbs: Vec<MonitorDb>,
    /// World IPv6 Day databases for the day-experiment vantage points
    /// (Penn, Loughborough, UPCB), as `(vantage index, db)`.
    pub day_dbs: Vec<(usize, MonitorDb)>,
    /// Analyses for the vantage points with `AS_PATH` data.
    pub analyses: Vec<VantageAnalysis>,
    /// World IPv6 Day analyses (same vantage subset as `day_dbs`, minus
    /// any without `AS_PATH`).
    pub day_analyses: Vec<VantageAnalysis>,
    /// The paper: every table and figure.
    pub report: Report,
    /// Wall-clock breakdown of the run (world build, campaigns, analysis,
    /// report), collected from the obs span log of the calling thread.
    /// Not part of [`Report`] — timings never reproduce bit-for-bit.
    pub timings: ipv6web_obs::Timings,
}

/// How the study schedules its per-vantage work. Both modes produce
/// byte-identical reports and databases — the paper ran its six monitors
/// concurrently, and every probe derives its randomness from
/// `(seed, vantage, week, site)`, never from scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One vantage point after another — the reference pipeline, kept for
    /// byte-comparison in CI and tests.
    Sequential,
    /// Campaigns, IPv6-day rounds, and analyses fan out over the vantage
    /// points via `ipv6web_par`, under the global `IPV6WEB_THREADS`
    /// budget (each campaign's probe pool borrows its share, so the
    /// two-level fan-out never oversubscribes).
    #[default]
    VantageParallel,
}

/// Runs `task(i)` for every index, sequentially or fanned out over the
/// vantage points, returning results in index order either way.
fn for_each_vantage<R: Send>(
    mode: ExecutionMode,
    idxs: &[usize],
    task: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    match mode {
        ExecutionMode::Sequential => idxs.iter().map(|&i| task(i)).collect(),
        ExecutionMode::VantageParallel => ipv6web_par::par_map(idxs, |_, &i| task(i)),
    }
}

/// Loads a previous partial run from the checkpoint directory, if one was
/// left behind for this vantage point.
fn load_resume(dir: Option<&Path>, vantage: &str) -> Result<Option<MonitorDb>, CampaignError> {
    let Some(dir) = dir else { return Ok(None) };
    let path = checkpoint_path(dir, vantage);
    if !path.exists() {
        return Ok(None);
    }
    MonitorDb::load_json(&path)
        .map(Some)
        .map_err(|source| CampaignError::Checkpoint { path, source })
}

/// Runs the complete study: weekly campaigns from all six vantage points,
/// the World IPv6 Day experiment, analysis, and report assembly.
///
/// When the scenario carries a checkpoint directory, each vantage point's
/// database is snapshotted after every round and a rerun resumes from the
/// last completed round instead of re-probing. A non-empty
/// [`Scenario::faults`] plan drives deterministic fault injection
/// throughout; an empty plan reproduces the fault-free pipeline
/// bit-identically.
pub fn run_study(scenario: &Scenario) -> Result<StudyResult, StudyError> {
    run_study_mode(scenario, ExecutionMode::default())
}

/// [`run_study`] with an explicit [`ExecutionMode`]. The mode is an
/// execution detail, not part of the scenario: it must never change a
/// single byte of the result, which is exactly what the determinism suite
/// asserts by running both modes against each other.
pub fn run_study_mode(scenario: &Scenario, mode: ExecutionMode) -> Result<StudyResult, StudyError> {
    scenario.validate().map_err(StudyError::InvalidScenario)?;
    // Checkpoint-dir problems (a typo'd parent, a file in the way) surface
    // *before* the world build, not minutes later at the first atomic
    // temp+rename checkpoint write.
    let ckpt_dir = scenario.checkpoint_dir.as_deref().map(Path::new);
    if let Some(dir) = ckpt_dir {
        validate_checkpoint_dir(dir).map_err(CampaignError::Config)?;
    }
    // Mark before the world build so the "world: *" spans land in this
    // study's phase breakdown (a service reusing a cached world goes
    // through `run_study_on_world` and deliberately omits them).
    let mark = ipv6web_obs::span_mark();
    let world = Arc::new(World::try_build(scenario)?);
    run_study_from_mark(&world, mode, ckpt_dir, mark)
}

/// Runs the measurement pipeline — campaigns, IPv6-day rounds, analysis,
/// report — against an already-built (possibly shared) world.
///
/// This is the entry point for services that keep worlds alive across
/// studies: concurrent jobs on the same world seed pass clones of one
/// `Arc<World>`, sharing its memoized route tables instead of rebuilding
/// destinations × ASes of next-hop state per job. `checkpoint_dir`
/// overrides `world.scenario.checkpoint_dir` so the *same* world can back
/// jobs with different checkpoint locations; the produced report is
/// byte-identical to [`run_study_mode`] on the equivalent scenario either
/// way.
pub fn run_study_on_world(
    world: &Arc<World>,
    mode: ExecutionMode,
    checkpoint_dir: Option<&Path>,
) -> Result<StudyResult, StudyError> {
    // Collect only the spans this run produces, so back-to-back studies on
    // one thread (e.g. test suites) keep independent phase breakdowns.
    let mark = ipv6web_obs::span_mark();
    run_study_from_mark(world, mode, checkpoint_dir, mark)
}

fn run_study_from_mark(
    world: &Arc<World>,
    mode: ExecutionMode,
    checkpoint_dir: Option<&Path>,
    mark: usize,
) -> Result<StudyResult, StudyError> {
    let scenario = &world.scenario;
    let ckpt_dir = checkpoint_dir;
    if let Some(dir) = ckpt_dir {
        validate_checkpoint_dir(dir).map_err(CampaignError::Config)?;
        std::fs::create_dir_all(dir).map_err(|source| {
            StudyError::Campaign(CampaignError::Checkpoint { path: dir.to_path_buf(), source })
        })?;
        // Refuse to resume a directory stamped by a different vantage
        // population — per-vantage checkpoints are keyed by name slug
        // only, so a mismatched resume would misattribute rounds.
        ipv6web_monitor::check_population_stamp(dir, &world.vantages)
            .map_err(StudyError::Campaign)?;
    }

    // --- weekly campaigns ---------------------------------------------------
    // One task per vantage point, run sequentially or fanned out under the
    // shared worker budget. Each task captures its own span subtree on the
    // thread it ran on; the subtrees are attached back here in
    // `world.vantages` order, so the phase breakdown is identical no
    // matter where (or in what order) the campaigns actually ran.
    let all_idxs: Vec<usize> = (0..world.vantages.len()).collect();
    let campaign_task =
        |i: usize| -> Result<(MonitorDb, Vec<ipv6web_obs::SpanRecord>), CampaignError> {
            let vantage = &world.vantages[i];
            let faults = world.probe_faults(i);
            let ctx = world.probe_ctx(i, faults.as_ref());
            let sites = &world.sites;
            let mark = ipv6web_obs::span_mark();
            let db = {
                let _s = ipv6web_obs::span(format!("campaign: {}", vantage.name));
                let resume = load_resume(ckpt_dir, &vantage.name)?;
                run_campaign_resumable(
                    &ctx,
                    vantage,
                    &world.list,
                    &world.tail_ids,
                    |id| sites[id as usize].first_seen_week,
                    &scenario.campaign,
                    resume,
                    ckpt_dir,
                )?
            };
            Ok((db, ipv6web_obs::take_spans_since(mark)))
        };
    let mut dbs = Vec::with_capacity(world.vantages.len());
    for result in for_each_vantage(mode, &all_idxs, campaign_task) {
        // the first failure in vantage order wins, same as the serial loop
        let (db, spans) = result?;
        ipv6web_obs::attach_spans(spans);
        dbs.push(db);
    }

    // --- World IPv6 Day (paper: all Table 8 vantage points except Comcast) --
    let participants = world.ipv6_day_participants();
    let day_idxs: Vec<usize> = world
        .vantages
        .iter()
        .enumerate()
        .filter(|(_, v)| v.has_as_path && v.name != "Comcast")
        .map(|(i, _)| i)
        .collect();
    let day_results = {
        let _s = ipv6web_obs::span("ipv6 day rounds");
        for_each_vantage(mode, &day_idxs, |i| {
            let faults = world.probe_faults(i);
            let ctx = world.probe_ctx(i, faults.as_ref());
            run_ipv6_day_rounds(
                &ctx,
                &world.vantages[i],
                &participants,
                scenario.timeline.ipv6_day_week,
                &scenario.campaign,
            )
        })
    };
    let mut day_dbs = Vec::with_capacity(day_idxs.len());
    for (&i, result) in day_idxs.iter().zip(day_results) {
        day_dbs.push((i, result?));
    }

    // --- analysis ------------------------------------------------------------
    let fault_windows = scenario.faults.disruption_windows();
    let ana_idxs: Vec<usize> =
        world.vantages.iter().enumerate().filter(|(_, v)| v.has_as_path).map(|(i, _)| i).collect();
    let analyses: Vec<VantageAnalysis> = {
        let _s = ipv6web_obs::span("analysis");
        for_each_vantage(mode, &ana_idxs, |i| {
            analyze_vantage_faulted(
                &scenario.analysis,
                &world.sites,
                &dbs[i],
                &world.tables[i].0,
                &world.tables[i].1,
                &fault_windows,
            )
        })
    };
    let day_cfg = AnalysisConfig::ipv6_day();
    let day_analyses: Vec<VantageAnalysis> = {
        let _s = ipv6web_obs::span("analysis: ipv6 day");
        let day_ana_idxs: Vec<usize> = (0..day_dbs.len()).collect();
        for_each_vantage(mode, &day_ana_idxs, |k| {
            let (i, db) = &day_dbs[k];
            analyze_vantage_faulted(
                &day_cfg,
                &world.sites,
                db,
                &world.tables[*i].0,
                &world.tables[*i].1,
                &fault_windows,
            )
        })
    };

    let report = {
        let _s = ipv6web_obs::span("report assembly");
        Report::build(world, &dbs, &analyses, &day_analyses)
    };
    let timings = ipv6web_obs::Timings { phases: ipv6web_obs::take_spans_since(mark) };
    Ok(StudyResult { world: world.clone(), dbs, day_dbs, analyses, day_analyses, report, timings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn study() -> &'static StudyResult {
        static S: OnceLock<StudyResult> = OnceLock::new();
        S.get_or_init(|| run_study(&Scenario::quick(2)).expect("quick study runs"))
    }

    #[test]
    fn six_campaigns_run() {
        let s = study();
        assert_eq!(s.dbs.len(), 6);
        for db in &s.dbs {
            assert!(!db.is_empty(), "{} produced nothing", db.vantage);
        }
    }

    #[test]
    fn day_experiment_excludes_comcast_and_no_as_path() {
        let s = study();
        assert_eq!(s.day_dbs.len(), 3, "Penn, LU, UPCB");
        for (i, _) in &s.day_dbs {
            let v = &s.world.vantages[*i];
            assert!(v.has_as_path);
            assert_ne!(v.name, "Comcast");
        }
    }

    #[test]
    fn analyses_cover_as_path_vantages() {
        let s = study();
        assert_eq!(s.analyses.len(), 4);
        let names: Vec<&str> = s.analyses.iter().map(|a| a.vantage.as_str()).collect();
        assert!(names.contains(&"Penn"));
        assert!(names.contains(&"Comcast"));
        for a in &s.analyses {
            assert!(a.sites_total > 0, "{} analyzed nothing", a.vantage);
        }
    }

    #[test]
    fn report_attached_and_renders() {
        let s = study();
        let text = s.report.render();
        for needle in [
            "Table 1",
            "Table 2",
            "Table 3",
            "Table 4",
            "Table 5",
            "Table 6",
            "Table 7",
            "Table 8",
            "Table 9",
            "Table 10",
            "Table 11",
            "Table 12",
            "Table 13",
            "Figure 1",
            "Figure 3a",
            "Figure 3b",
            "H1",
            "H2",
        ] {
            assert!(text.contains(needle), "report missing {needle}");
        }
    }

    #[test]
    fn headline_findings_hold_in_quick_world() {
        let s = study();
        assert!(s.report.h1.holds, "{}", s.report.h1.summary);
        assert!(s.report.h2.holds, "{}", s.report.h2.summary);
    }

    #[test]
    fn classic_report_has_no_xlat_bytes() {
        let s = study();
        assert!(s.report.xlat.is_none());
        let json = serde_json::to_string(&s.report).unwrap();
        assert!(!json.contains("\"xlat\""), "classic reports must not grow an xlat key");
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s.report);
    }

    #[test]
    fn nat64_study_reports_translated_paths() {
        let mut sc = Scenario::nat64(3);
        sc.population.n_sites = 400;
        sc.tail_sites = 60;
        let s = run_study(&sc).expect("nat64 study runs");
        let x = s.report.xlat.as_ref().expect("nat64 study must carry an xlat section");
        assert_eq!(x.gateways, 3);
        assert_eq!(x.per_vantage.len(), 6);
        let go6 = x.per_vantage.iter().find(|r| r.vantage == "Go6-Slovenia").unwrap();
        assert_eq!(go6.stack, "v6-only");
        assert!(go6.paired_samples > 0, "translated v4-slot samples must pair with native v6");
        let comcast = x.per_vantage.iter().find(|r| r.vantage == "Comcast").unwrap();
        assert_eq!(comcast.stack, "dual-stack");
        assert!(!x.h1_by_stack.is_empty(), "per-stack H1 verdicts");
        assert!(!x.h2_by_stack.is_empty(), "per-stack H2 verdicts");
        let text = s.report.render();
        assert!(text.contains("Transition technologies"), "render carries the section");
        // serde roundtrip with the optional section present
        let json = serde_json::to_string(&s.report).unwrap();
        assert!(json.contains("\"xlat\""));
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s.report);
    }

    #[test]
    fn invalid_scenario_is_a_typed_error() {
        let mut s = Scenario::quick(1);
        s.campaign.workers = 0;
        match run_study(&s) {
            Err(StudyError::InvalidScenario(msg)) => {
                assert!(msg.contains("workers"), "unexpected message: {msg}")
            }
            other => panic!("expected InvalidScenario, got {:?}", other.err()),
        }
    }
}
