//! Full study execution.

use crate::report::Report;
use crate::scenario::Scenario;
use crate::world::World;
use ipv6web_analysis::{analyze_vantage, AnalysisConfig, VantageAnalysis};
use ipv6web_monitor::{run_campaign, run_ipv6_day_rounds, MonitorDb, ProbeContext};

/// Everything a study run produces.
pub struct StudyResult {
    /// The world it ran in.
    pub world: World,
    /// Per-vantage campaign databases, in `world.vantages` order.
    pub dbs: Vec<MonitorDb>,
    /// World IPv6 Day databases for the day-experiment vantage points
    /// (Penn, Loughborough, UPCB), as `(vantage index, db)`.
    pub day_dbs: Vec<(usize, MonitorDb)>,
    /// Analyses for the vantage points with `AS_PATH` data.
    pub analyses: Vec<VantageAnalysis>,
    /// World IPv6 Day analyses (same vantage subset as `day_dbs`, minus
    /// any without `AS_PATH`).
    pub day_analyses: Vec<VantageAnalysis>,
    /// The paper: every table and figure.
    pub report: Report,
    /// Wall-clock breakdown of the run (world build, campaigns, analysis,
    /// report), collected from the obs span log of the calling thread.
    /// Not part of [`Report`] — timings never reproduce bit-for-bit.
    pub timings: ipv6web_obs::Timings,
}

fn probe_ctx<'a>(world: &'a World, vantage_idx: usize) -> ProbeContext<'a> {
    let s = &world.scenario;
    ProbeContext {
        topo: &world.topo,
        sites: &world.sites,
        zone: &world.zone,
        table_v4: &world.tables[vantage_idx].0,
        table_v6: &world.tables[vantage_idx].1,
        disturbances: &world.disturbances,
        tcp: s.tcp,
        ci_rule: s.ci_rule,
        identity_threshold: s.identity_threshold,
        round_noise_sigma: s.round_noise_sigma,
        seed: s.seed,
        vantage_name: &world.vantages[vantage_idx].name,
        white_listed: world.vantages[vantage_idx].white_listed,
        v6_epoch: world.v6_epoch.as_ref().map(|(week, tables)| (*week, &tables[vantage_idx])),
    }
}

/// Runs the complete study: weekly campaigns from all six vantage points,
/// the World IPv6 Day experiment, analysis, and report assembly.
pub fn run_study(scenario: &Scenario) -> StudyResult {
    // Collect only the spans this run produces, so back-to-back studies on
    // one thread (e.g. test suites) keep independent phase breakdowns.
    let mark = ipv6web_obs::span_mark();
    let world = World::build(scenario);

    // --- weekly campaigns ---------------------------------------------------
    let mut dbs = Vec::with_capacity(world.vantages.len());
    for (i, vantage) in world.vantages.iter().enumerate() {
        let ctx = probe_ctx(&world, i);
        let sites = &world.sites;
        let db = {
            let _s = ipv6web_obs::span(format!("campaign: {}", vantage.name));
            run_campaign(
                &ctx,
                vantage,
                &world.list,
                &world.tail_ids,
                |id| sites[id as usize].first_seen_week,
                &scenario.campaign,
            )
        };
        dbs.push(db);
    }

    // --- World IPv6 Day (paper: all Table 8 vantage points except Comcast) --
    let participants = world.ipv6_day_participants();
    let mut day_dbs = Vec::new();
    {
        let _s = ipv6web_obs::span("ipv6 day rounds");
        for (i, vantage) in world.vantages.iter().enumerate() {
            if !vantage.has_as_path || vantage.name == "Comcast" {
                continue;
            }
            let ctx = probe_ctx(&world, i);
            let db = run_ipv6_day_rounds(
                &ctx,
                vantage,
                &participants,
                scenario.timeline.ipv6_day_week,
                &scenario.campaign,
            );
            day_dbs.push((i, db));
        }
    }

    // --- analysis ------------------------------------------------------------
    let analyses: Vec<VantageAnalysis> = {
        let _s = ipv6web_obs::span("analysis");
        world
            .vantages
            .iter()
            .enumerate()
            .filter(|(_, v)| v.has_as_path)
            .map(|(i, _)| {
                analyze_vantage(
                    &scenario.analysis,
                    &world.sites,
                    &dbs[i],
                    &world.tables[i].0,
                    &world.tables[i].1,
                )
            })
            .collect()
    };
    let day_cfg = AnalysisConfig::ipv6_day();
    let day_analyses: Vec<VantageAnalysis> = {
        let _s = ipv6web_obs::span("analysis: ipv6 day");
        day_dbs
            .iter()
            .map(|(i, db)| {
                analyze_vantage(
                    &day_cfg,
                    &world.sites,
                    db,
                    &world.tables[*i].0,
                    &world.tables[*i].1,
                )
            })
            .collect()
    };

    let report = {
        let _s = ipv6web_obs::span("report assembly");
        Report::build(&world, &dbs, &analyses, &day_analyses)
    };
    let timings = ipv6web_obs::Timings { phases: ipv6web_obs::take_spans_since(mark) };
    StudyResult { world, dbs, day_dbs, analyses, day_analyses, report, timings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn study() -> &'static StudyResult {
        static S: OnceLock<StudyResult> = OnceLock::new();
        S.get_or_init(|| run_study(&Scenario::quick(2)))
    }

    #[test]
    fn six_campaigns_run() {
        let s = study();
        assert_eq!(s.dbs.len(), 6);
        for db in &s.dbs {
            assert!(!db.is_empty(), "{} produced nothing", db.vantage);
        }
    }

    #[test]
    fn day_experiment_excludes_comcast_and_no_as_path() {
        let s = study();
        assert_eq!(s.day_dbs.len(), 3, "Penn, LU, UPCB");
        for (i, _) in &s.day_dbs {
            let v = &s.world.vantages[*i];
            assert!(v.has_as_path);
            assert_ne!(v.name, "Comcast");
        }
    }

    #[test]
    fn analyses_cover_as_path_vantages() {
        let s = study();
        assert_eq!(s.analyses.len(), 4);
        let names: Vec<&str> = s.analyses.iter().map(|a| a.vantage.as_str()).collect();
        assert!(names.contains(&"Penn"));
        assert!(names.contains(&"Comcast"));
        for a in &s.analyses {
            assert!(a.sites_total > 0, "{} analyzed nothing", a.vantage);
        }
    }

    #[test]
    fn report_attached_and_renders() {
        let s = study();
        let text = s.report.render();
        for needle in [
            "Table 1",
            "Table 2",
            "Table 3",
            "Table 4",
            "Table 5",
            "Table 6",
            "Table 7",
            "Table 8",
            "Table 9",
            "Table 10",
            "Table 11",
            "Table 12",
            "Table 13",
            "Figure 1",
            "Figure 3a",
            "Figure 3b",
            "H1",
            "H2",
        ] {
            assert!(text.contains(needle), "report missing {needle}");
        }
    }

    #[test]
    fn headline_findings_hold_in_quick_world() {
        let s = study();
        assert!(s.report.h1.holds, "{}", s.report.h1.summary);
        assert!(s.report.h2.holds, "{}", s.report.h2.summary);
    }
}
