//! Scenario configuration: every knob of the study in one place.

use ipv6web_alexa::AdoptionTimeline;
use ipv6web_analysis::AnalysisConfig;
use ipv6web_faults::FaultPlan;
use ipv6web_monitor::{CampaignConfig, DisturbanceConfig, VantagePopulation};
use ipv6web_netsim::TcpConfig;
use ipv6web_stats::RelativeCiRule;
use ipv6web_topology::TopologyConfig;
use ipv6web_web::PopulationConfig;
use ipv6web_xlat::{ClientStack, XlatConfig};
use serde::{Deserialize, Serialize};

/// Whether BGP tables are built by streaming per-destination route
/// computations instead of retaining a memoized
/// [`ipv6web_bgp::RouteStore`].
///
/// A transparent `bool`: `StreamRoutes(true)` bounds table-building
/// memory at internet scale (the store would hold destinations × ASes
/// worth of next-hop columns), at the cost of from-scratch epoch
/// rebuilds. Absent in a scenario file — every file written before the
/// internet tier existed — it deserializes to `false`, the store-backed
/// pipeline those scenarios always ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamRoutes(pub bool);

impl serde::Serialize for StreamRoutes {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl serde::Deserialize for StreamRoutes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        bool::from_value(v).map(StreamRoutes)
    }

    fn missing_field(_name: &str) -> Result<Self, serde::DeError> {
        Ok(StreamRoutes(false))
    }
}

/// A complete, reproducible study configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Master seed; every component derives its own stream from it.
    pub seed: u64,
    /// AS-level topology parameters.
    pub topology: TopologyConfig,
    /// Site population parameters (its adoption curve is overwritten from
    /// `timeline` at build time).
    pub population: PopulationConfig,
    /// Number of extra "DNS-cache tail" sites appended beyond the ranked
    /// list (Penn's external inputs, Fig 3b's 5M-sites series).
    pub tail_sites: usize,
    /// The adoption calendar (Fig 1's jumps).
    pub timeline: AdoptionTimeline,
    /// Campaign execution parameters.
    pub campaign: CampaignConfig,
    /// Injected performance messiness (Table 3's causes).
    pub disturbances: DisturbanceConfig,
    /// TCP model.
    pub tcp: TcpConfig,
    /// The monitor's repeat-until-confident rule.
    pub ci_rule: RelativeCiRule,
    /// Page identity threshold (paper: 0.06).
    pub identity_threshold: f64,
    /// Cross-round congestion noise (log-normal σ).
    pub round_noise_sigma: f64,
    /// Analysis thresholds.
    pub analysis: AnalysisConfig,
    /// Campaign week Fig 1's plot starts at (Dec 2010 in the paper).
    pub fig1_from_week: u32,
    /// Mid-campaign IPv6 route changes: `(epoch week, gain fraction, loss
    /// fraction)`. At the epoch week, that fraction of eligible v4-only
    /// edges starts carrying IPv6 and that fraction of native v6 edges
    /// stops — the real path changes behind part of Table 3's transitions.
    pub route_change: Option<(u32, f64, f64)>,
    /// Deterministic fault injection: link flaps, loss bursts, BGP session
    /// flaps, DNS and HTTP disruptions, vantage outages. An empty plan
    /// (the default) runs the fault-free pipeline bit-identically.
    pub faults: FaultPlan,
    /// Directory for per-round campaign checkpoints; `None` disables
    /// checkpointing. A later run with the same directory resumes each
    /// vantage point from its last completed round.
    pub checkpoint_dir: Option<String>,
    /// Stream route tables instead of retaining a `RouteStore` (see
    /// [`StreamRoutes`]). On only in the internet tier.
    pub stream_routes: StreamRoutes,
    /// The NAT64/DNS64/464XLAT transition plane: gateway placement, the
    /// stateful-translation cost model, and the per-vantage client-stack
    /// assignment. The default (zero gateways, all vantages dual-stack)
    /// runs the classic pipeline bit-identically; scenario files written
    /// before the transition tier carry no `xlat` key and deserialize to
    /// that default.
    pub xlat: XlatConfig,
    /// Generated vantage population: count, region mix, access-type
    /// split, white-list fraction, client-stack mix. `None` (the default,
    /// and what scenario files written before this field deserialize to)
    /// keeps the paper's Table 1 six, byte-identically.
    pub vantage_population: Option<VantagePopulation>,
}

impl Scenario {
    /// The full paper-scale scenario: ≈4000 ASes, 120k ranked sites plus a
    /// 30k tail, 52 weekly rounds from six vantage points. Takes minutes;
    /// use [`Scenario::quick`] for tests and examples.
    pub fn paper(seed: u64) -> Self {
        let timeline = AdoptionTimeline::paper();
        let population = PopulationConfig::paper_scale(timeline.total_weeks, timeline.curve());
        Scenario {
            seed,
            topology: TopologyConfig::paper_scale(),
            population,
            tail_sites: 30_000,
            timeline,
            campaign: CampaignConfig::paper(),
            disturbances: DisturbanceConfig::paper(),
            tcp: TcpConfig::paper(),
            ci_rule: RelativeCiRule::paper(),
            identity_threshold: 0.06,
            round_noise_sigma: 0.08,
            analysis: AnalysisConfig::paper(),
            fig1_from_week: 17, // 2010-12-09
            route_change: Some((26, 0.03, 0.01)),
            faults: FaultPlan::default(),
            checkpoint_dir: None,
            stream_routes: StreamRoutes(false),
            xlat: XlatConfig::default(),
            vantage_population: None,
        }
    }

    /// A laptop-seconds scenario preserving every mechanism at small scale
    /// (elevated adoption so dual-stack analysis still has data).
    pub fn quick(seed: u64) -> Self {
        let mut timeline = AdoptionTimeline::paper();
        timeline.total_weeks = 26;
        timeline.iana_week = 8;
        timeline.ipv6_day_week = 20;
        let mut population =
            PopulationConfig::test_small(timeline.total_weeks).with_curve(timeline.curve());
        population.n_sites = 2_500;
        let mut campaign = CampaignConfig::paper();
        campaign.total_weeks = timeline.total_weeks;
        campaign.workers = 8;
        campaign.ipv6_day_rounds = 6;
        let mut analysis = AnalysisConfig::paper();
        analysis.min_paired_samples = 6;
        Scenario {
            seed,
            topology: TopologyConfig::test_small(),
            population,
            tail_sites: 600,
            timeline,
            campaign: CampaignConfig { ..campaign },
            disturbances: DisturbanceConfig::paper(),
            tcp: TcpConfig::paper(),
            ci_rule: RelativeCiRule::paper(),
            identity_threshold: 0.06,
            round_noise_sigma: 0.08,
            analysis,
            fig1_from_week: 4,
            route_change: Some((13, 0.03, 0.01)),
            faults: FaultPlan::default(),
            checkpoint_dir: None,
            stream_routes: StreamRoutes(false),
            xlat: XlatConfig::default(),
            vantage_population: None,
        }
    }

    /// The paper-magnitude "whole internet" tier: ~37k ASes (the
    /// internet's size in 2011), one million ranked sites plus a 100k
    /// DNS-cache tail, 26 weekly rounds. Site names are interned, tables
    /// are columnar, and route tables are **streamed**
    /// ([`StreamRoutes`]) — the memoized store would not fit in memory at
    /// this scale. Hosting concentrates into a 2,500-AS pool, matching
    /// the paper's observation that the top sites cluster into a few
    /// thousand hosting/CDN ASes and keeping the destination set (and
    /// with it route-computation time) bounded.
    pub fn internet(seed: u64) -> Self {
        let mut timeline = AdoptionTimeline::paper();
        timeline.total_weeks = 26;
        timeline.iana_week = 8;
        timeline.ipv6_day_week = 20;
        let mut population = PopulationConfig::paper_scale(timeline.total_weeks, timeline.curve());
        population.n_sites = 1_000_000;
        population.hosting_pool_cap = Some(2_500);
        let mut campaign = CampaignConfig::paper();
        campaign.total_weeks = timeline.total_weeks;
        Scenario {
            seed,
            topology: TopologyConfig::internet_scale(),
            population,
            tail_sites: 100_000,
            timeline,
            campaign,
            disturbances: DisturbanceConfig::paper(),
            tcp: TcpConfig::paper(),
            ci_rule: RelativeCiRule::paper(),
            identity_threshold: 0.06,
            round_noise_sigma: 0.08,
            analysis: AnalysisConfig::paper(),
            fig1_from_week: 8,
            route_change: Some((13, 0.03, 0.01)),
            faults: FaultPlan::default(),
            checkpoint_dir: None,
            stream_routes: StreamRoutes(true),
            xlat: XlatConfig::default(),
            vantage_population: None,
        }
    }

    /// A downsized internet tier (~5k ASes, 50k sites) exercising the
    /// same streamed, interned, columnar pipeline as
    /// [`Scenario::internet`] at CI-smoke cost. Used by the determinism
    /// tests and the `internet-smoke` CI job.
    pub fn internet_smoke(seed: u64) -> Self {
        let mut s = Scenario::internet(seed);
        s.topology = TopologyConfig::scaled(5_000);
        s.population.n_sites = 50_000;
        s.population.hosting_pool_cap = Some(600);
        s.tail_sites = 5_000;
        s
    }

    /// [`Scenario::quick`] with the demo fault plan active: the `repro
    /// faults` chaos scenario.
    pub fn faults(seed: u64) -> Self {
        let mut s = Scenario::quick(seed);
        s.faults = FaultPlan::demo(s.timeline.total_weeks);
        s
    }

    /// [`Scenario::quick`] with the NAT64/DNS64/464XLAT transition plane
    /// active: three translator gateways in the provider core, two
    /// vantage points re-homed as v6-only hosts behind DNS64 (Go6 and
    /// Loughborough — early v6-only deployers in practice) and two as
    /// 464XLAT clients with an on-host CLAT (Tsinghua and UPC Broadband).
    /// Comcast and Penn stay dual-stack, anchoring the native baseline the
    /// translated paths are compared against in the report's xlat section.
    pub fn nat64(seed: u64) -> Self {
        let mut s = Scenario::quick(seed);
        s.xlat = XlatConfig {
            gateways: 3,
            stacks: vec![
                ("Go6-Slovenia".into(), ClientStack::V6Only),
                ("Loughborough U.".into(), ClientStack::V6Only),
                ("Tsinghua U.".into(), ClientStack::V6OnlyClat),
                ("UPC Broadband".into(), ClientStack::V6OnlyClat),
            ],
            ..XlatConfig::default()
        };
        s
    }

    /// The vantage-panel tier: 200 generated vantage points (instead of
    /// Table 1's six) drawn from a ~2000-AS topology with elevated access
    /// adoption so the panel fits, monitoring a reduced site list at
    /// quick-world cost per campaign. The report gains a cross-vantage
    /// disagreement section: per-vantage H1/H2 verdicts, agreement rates
    /// with 95% CIs, and which conclusions flip with placement.
    pub fn panel(seed: u64) -> Self {
        let mut s = Scenario::quick(seed);
        s.topology = TopologyConfig::scaled(2_000);
        // the quick tier's elevated adoption, and enough dual-stack
        // access ASes to host hundreds of monitors
        s.topology.dual.access_adoption = 0.6;
        s.population.n_sites = 800;
        s.tail_sites = 200;
        // 200 vantages × participants makes per-vantage day rounds the
        // dominant cost; two rounds keep the event analyzable
        s.campaign.ipv6_day_rounds = 2;
        s.vantage_population = Some(VantagePopulation { count: 200, ..Default::default() });
        s
    }

    /// This scenario re-seeded. The sweep axes are built from these
    /// `with_*` combinators: each returns a fresh scenario differing in
    /// exactly one knob, so a sweep's study matrix is a pure function of
    /// its base scenario and axis lists.
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// This scenario with the IPv6 peer-peer parity probability — the
    /// paper's headline knob — set to `parity`.
    pub fn with_peering_parity(mut self, parity: f64) -> Scenario {
        self.topology.dual.peering_parity = parity;
        self
    }

    /// This scenario under a different adoption timeline, re-syncing every
    /// knob [`Scenario::validate`] ties to the calendar: the campaign
    /// length follows the timeline, and `fig1_from_week` / the
    /// route-change epoch are clamped back inside a shortened campaign
    /// (preserving their week when it still fits).
    pub fn with_timeline(mut self, timeline: AdoptionTimeline) -> Scenario {
        self.campaign.total_weeks = timeline.total_weeks;
        self.fig1_from_week = self.fig1_from_week.min(timeline.total_weeks.saturating_sub(1));
        if let Some((week, gain, loss)) = self.route_change {
            let clamped = week.clamp(1, timeline.total_weeks.saturating_sub(1).max(1));
            self.route_change = Some((clamped, gain, loss));
        }
        self.timeline = timeline;
        self
    }

    /// Validates cross-component consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        if self.campaign.total_weeks != self.timeline.total_weeks {
            return Err(format!(
                "campaign weeks ({}) must match timeline weeks ({})",
                self.campaign.total_weeks, self.timeline.total_weeks
            ));
        }
        if self.timeline.ipv6_day_week >= self.timeline.total_weeks {
            return Err("IPv6 day must fall inside the campaign".into());
        }
        if self.fig1_from_week >= self.timeline.total_weeks {
            return Err("fig1_from_week beyond campaign end".into());
        }
        if !(0.0..1.0).contains(&self.identity_threshold) {
            return Err("identity threshold outside [0,1)".into());
        }
        if let Some((week, gain, loss)) = self.route_change {
            if week == 0 || week >= self.timeline.total_weeks {
                return Err("route-change epoch must fall inside the campaign".into());
            }
            if !(0.0..=1.0).contains(&gain) || !(0.0..=1.0).contains(&loss) {
                return Err("route-change fractions outside [0,1]".into());
            }
        }
        self.campaign.validate().map_err(|e| format!("campaign: {e}"))?;
        self.faults.validate(self.timeline.total_weeks).map_err(|e| format!("fault plan: {e}"))?;
        self.xlat.validate().map_err(|e| format!("xlat: {e}"))?;
        match &self.vantage_population {
            None => {
                const VANTAGES: [&str; 6] = [
                    "Comcast",
                    "Go6-Slovenia",
                    "Loughborough U.",
                    "Penn",
                    "Tsinghua U.",
                    "UPC Broadband",
                ];
                for (name, _) in &self.xlat.stacks {
                    if !VANTAGES.contains(&name.as_str()) {
                        return Err(format!(
                            "xlat: unknown vantage point {name:?} in stack assignment"
                        ));
                    }
                }
            }
            Some(pop) => {
                pop.validate().map_err(|e| format!("vantage_population: {e}"))?;
                if !self.xlat.stacks.is_empty() {
                    return Err("vantage_population and xlat.stacks are mutually exclusive; \
                                put the client-stack mix on the population spec"
                        .into());
                }
                if pop.has_translating_stacks() && self.xlat.gateways == 0 {
                    return Err("vantage_population stack mix assigns translating stacks \
                                but xlat.gateways is 0"
                        .into());
                }
            }
        }
        Ok(())
    }

    /// Total site count including the tail.
    pub fn total_sites(&self) -> usize {
        self.population.n_sites + self.tail_sites
    }

    /// This scenario with its checkpoint directory cleared — the
    /// *report-identity* configuration. Two scenarios with equal identity
    /// configurations produce byte-identical reports (where checkpoints
    /// land never changes a result, only where a crashed run resumes
    /// from), so this is what world caches and job stores key on.
    pub fn identity_scenario(&self) -> Scenario {
        let mut s = self.clone();
        s.checkpoint_dir = None;
        s
    }

    /// FNV-1a 64-bit hash of the identity scenario's canonical JSON.
    ///
    /// The vendored serde serializes struct fields in declaration order,
    /// so the JSON — and with it this hash — is deterministic across runs
    /// and processes. Used as the config-hash component of daemon job ids
    /// and as the world-cache key: equal hashes ⇒ same built world and a
    /// byte-identical report.
    pub fn config_hash(&self) -> u64 {
        let json =
            serde_json::to_string(&self.identity_scenario()).expect("scenario always serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert_eq!(Scenario::paper(1).validate(), Ok(()));
        assert_eq!(Scenario::quick(1).validate(), Ok(()));
        assert_eq!(Scenario::internet(1).validate(), Ok(()));
        assert_eq!(Scenario::internet_smoke(1).validate(), Ok(()));
    }

    #[test]
    fn internet_tiers_stream_routes_and_older_json_does_not() {
        assert!(Scenario::internet(1).stream_routes.0);
        assert!(Scenario::internet_smoke(1).stream_routes.0);
        // scenario files that predate the internet tier carry no
        // `stream_routes` key; they must keep the store-backed pipeline
        let mut v = serde_json::to_value(&Scenario::quick(7)).unwrap();
        if let serde_json::Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "stream_routes");
        }
        let back: Scenario = serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert!(!back.stream_routes.0);
        assert_eq!(back, Scenario::quick(7));
    }

    #[test]
    fn quick_is_smaller_than_paper() {
        let q = Scenario::quick(1);
        let p = Scenario::paper(1);
        assert!(q.total_sites() < p.total_sites() / 10);
        assert!(q.campaign.total_weeks < p.campaign.total_weeks);
    }

    #[test]
    fn mismatched_weeks_rejected() {
        let mut s = Scenario::quick(1);
        s.campaign.total_weeks += 1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn ipv6_day_must_be_inside_campaign() {
        let mut s = Scenario::quick(1);
        s.timeline.ipv6_day_week = s.timeline.total_weeks + 5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let s = Scenario::quick(7);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn config_hash_is_stable_and_ignores_checkpoint_dir() {
        let a = Scenario::quick(7);
        let mut b = Scenario::quick(7);
        assert_eq!(a.config_hash(), b.config_hash(), "same config, same hash");
        b.checkpoint_dir = Some("/tmp/elsewhere".into());
        assert_eq!(
            a.config_hash(),
            b.config_hash(),
            "checkpoint location never changes a result, so it never changes the hash"
        );
        assert_eq!(b.identity_scenario().checkpoint_dir, None);
        // anything that *can* change a result changes the hash
        assert_ne!(Scenario::quick(7).config_hash(), Scenario::quick(8).config_hash());
        assert_ne!(Scenario::quick(7).config_hash(), Scenario::faults(7).config_hash());
        let mut c = Scenario::quick(7);
        c.identity_threshold = 0.07;
        assert_ne!(a.config_hash(), c.config_hash());
    }

    #[test]
    fn variant_combinators_change_exactly_the_knob() {
        let base = Scenario::quick(1);
        let s = base.clone().with_seed(9);
        assert_eq!(s.seed, 9);
        assert_eq!(s.with_seed(1), base, "seed was the only difference");

        let p = base.clone().with_peering_parity(0.9);
        assert_eq!(p.topology.dual.peering_parity, 0.9);
        assert_ne!(p.config_hash(), base.config_hash(), "parity is part of the identity");
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn with_timeline_resyncs_campaign_and_clamps_weeks() {
        let base = Scenario::quick(1);
        // lengthen: campaign follows, nothing needs clamping
        let mut longer = base.timeline.clone();
        longer.total_weeks += 10;
        let s = base.clone().with_timeline(longer.clone());
        assert_eq!(s.campaign.total_weeks, longer.total_weeks);
        assert_eq!(s.validate(), Ok(()));

        // shorten below fig1_from_week and the route-change epoch: both
        // are clamped back inside the campaign
        let mut shorter = base.timeline.clone();
        shorter.total_weeks = 10; // below quick's route-change epoch (13)
        shorter.iana_week = 3;
        shorter.ipv6_day_week = 8;
        let s = base.clone().with_timeline(shorter);
        assert_eq!(s.campaign.total_weeks, 10);
        assert!(s.fig1_from_week < 10);
        assert_eq!(s.route_change.map(|(w, _, _)| w), Some(9), "epoch clamped inside campaign");
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn faults_preset_validates_and_is_nonempty() {
        let s = Scenario::faults(1);
        assert_eq!(s.validate(), Ok(()));
        assert!(!s.faults.is_empty());
    }

    #[test]
    fn nat64_preset_validates_and_hashes_apart() {
        let s = Scenario::nat64(1);
        assert_eq!(s.validate(), Ok(()));
        assert!(s.xlat.is_active());
        assert_eq!(s.xlat.gateways, 3);
        assert_ne!(s.config_hash(), Scenario::quick(1).config_hash());
        // two dual-stack anchors remain for the native baseline
        assert_eq!(s.xlat.stack_of("Comcast"), ClientStack::DualStack);
        assert_eq!(s.xlat.stack_of("Penn"), ClientStack::DualStack);
        assert_eq!(s.xlat.stack_of("Go6-Slovenia"), ClientStack::V6Only);
        assert_eq!(s.xlat.stack_of("Tsinghua U."), ClientStack::V6OnlyClat);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn xlat_misconfiguration_rejected() {
        let mut s = Scenario::nat64(1);
        s.xlat.stacks.push(("Hogwarts".into(), ClientStack::V6Only));
        assert!(s.validate().unwrap_err().contains("Hogwarts"));
        let mut s = Scenario::quick(1);
        s.xlat.stacks.push(("Penn".into(), ClientStack::V6Only));
        assert!(
            s.validate().unwrap_err().contains("gateway"),
            "a v6-only vantage without gateways cannot reach the v4 web"
        );
    }

    #[test]
    fn pre_xlat_scenario_json_still_deserializes() {
        let mut v = serde_json::to_value(&Scenario::quick(7)).unwrap();
        if let serde_json::Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "xlat");
        }
        let back: Scenario = serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(back, Scenario::quick(7), "omitted xlat defaults to the classic pipeline");
    }

    #[test]
    fn pre_fault_scenario_json_still_deserializes() {
        // scenario files written before this crate knew about fault
        // injection carry neither `faults` nor `checkpoint_dir`
        let mut v = serde_json::to_value(&Scenario::quick(7)).unwrap();
        if let serde_json::Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "faults" && k != "checkpoint_dir");
        }
        let json = serde_json::to_string(&v).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Scenario::quick(7), "omitted fields default to the no-fault pipeline");
    }

    #[test]
    fn pre_panel_scenario_json_still_deserializes() {
        // scenario files written before vantage populations carry no
        // `vantage_population` key
        let mut v = serde_json::to_value(&Scenario::quick(7)).unwrap();
        if let serde_json::Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "vantage_population");
        }
        let back: Scenario = serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(back, Scenario::quick(7), "omitted population keeps the Table 1 six");
    }

    #[test]
    fn panel_scenario_validates() {
        let s = Scenario::panel(5);
        s.validate().unwrap();
        assert_eq!(s.vantage_population.as_ref().unwrap().count, 200);

        // population + named xlat stacks is a contradiction
        let mut bad = Scenario::panel(5);
        bad.xlat.stacks = vec![("Penn".into(), ipv6web_xlat::ClientStack::V6Only)];
        bad.xlat.gateways = 1;
        assert!(bad.validate().unwrap_err().contains("mutually exclusive"));

        // translating stacks in the mix need gateways
        let mut bad = Scenario::panel(5);
        bad.vantage_population.as_mut().unwrap().stacks =
            vec![(ipv6web_xlat::ClientStack::V6Only, 1.0)];
        assert!(bad.validate().unwrap_err().contains("gateways"));

        // a broken spec is caught at validation, not at build
        let mut bad = Scenario::panel(5);
        bad.vantage_population.as_mut().unwrap().count = 0;
        assert!(bad.validate().unwrap_err().contains("vantage_population"));
    }
}
