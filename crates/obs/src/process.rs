//! Process-level gauges: peak memory.

/// Peak resident set size of the current process in kilobytes, read from
/// `/proc/self/status` (`VmHWM`). `None` off Linux or when procfs is
/// unavailable.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// Records [`peak_rss_kb`] into the `process.peak_rss_kb` gauge (a
/// high-water mark, so repeated calls keep the maximum). Returns the
/// value recorded, if the platform exposes one. `repro --metrics` calls
/// this right before snapshotting so `BENCH.json` carries the run's
/// memory footprint — the internet-smoke CI job gates on it.
pub fn record_peak_rss() -> Option<u64> {
    let kb = peak_rss_kb()?;
    crate::gauge_max("process.peak_rss_kb", kb);
    Some(kb)
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: no test drives record_peak_rss() through the global registry —
    // the registry is process-global and its own tests serialize on a
    // private lock this module can't share; recording from here would race
    // their reset() calls.
    #[test]
    fn peak_rss_positive_on_linux() {
        if cfg!(target_os = "linux") {
            let kb = peak_rss_kb().expect("procfs available");
            assert!(kb > 0, "a running process has resident memory");
        }
    }
}
