//! A serializable view of the merged metric state.

use crate::hist::HistogramSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Merged counters, gauges, and histograms at one point in time. Keys are
/// sorted (`BTreeMap`), so serialization is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// High-water-mark gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Log-scale histograms (sparse buckets).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Value of a counter, 0 when never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, 0 when never raised.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// `hits / (hits + misses)` for a counter pair, `None` when neither
    /// fired (avoids 0/0 in derived rates).
    pub fn hit_rate(&self, hits: &str, misses: &str) -> Option<f64> {
        let h = self.counter(hits);
        let m = self.counter(misses);
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_default_to_zero() {
        let s = Snapshot::default();
        assert_eq!(s.counter("x"), 0);
        assert_eq!(s.gauge("x"), 0);
        assert_eq!(s.hit_rate("h", "m"), None);
    }

    #[test]
    fn hit_rate_computes() {
        let mut s = Snapshot::default();
        s.counters.insert("h".into(), 3);
        s.counters.insert("m".into(), 1);
        assert_eq!(s.hit_rate("h", "m"), Some(0.75));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut s = Snapshot::default();
        s.counters.insert("a".into(), 7);
        s.gauges.insert("g".into(), 2);
        let mut h = crate::Histogram::new();
        h.observe(5);
        h.observe(0);
        s.histograms.insert("h".into(), h.snapshot());
        let json = serde_json::to_string(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
