//! Log-scale histograms with an associative, commutative merge.
//!
//! Buckets are powers of two: bucket 0 holds the value `0`, bucket `i`
//! (for `i >= 1`) holds values in `[2^(i-1), 2^i)`. Values are unsigned
//! integers on purpose — every statistic the study observes (download
//! repeats, route hops, byte counts) is a count, and integer sums make
//! [`Histogram::merge`] exactly associative and commutative, so per-worker
//! shards can land in any order without changing the merged result.

use serde::{Deserialize, Serialize};

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const N_BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Lower bound (inclusive) of a bucket's value range.
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        _ => 1u64 << (i - 1),
    }
}

/// Upper bound (inclusive) of a bucket's value range.
pub fn bucket_hi(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A fixed-size log₂ histogram over `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    buckets: [u64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; N_BUCKETS] }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Folds `other` into `self`. Associative and commutative: merging any
    /// number of shards in any order or grouping yields the same result.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; N_BUCKETS] {
        &self.buckets
    }

    /// Serializable view with only the non-empty buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| BucketCount { lo: bucket_lo(i), hi: bucket_hi(i), n })
                .collect(),
        }
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`]: `n` observations in
/// the inclusive value range `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Inclusive upper bound of the bucket.
    pub hi: u64,
    /// Observations that landed in the bucket.
    pub n: u64,
}

/// JSON-friendly snapshot of a [`Histogram`] (sparse buckets).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty buckets, ascending by range.
    pub buckets: Vec<BucketCount>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..N_BUCKETS {
            assert!(bucket_lo(i) <= bucket_hi(i), "bucket {i}");
            assert_eq!(bucket_of(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_of(bucket_hi(i)), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn observe_tracks_stats() {
        let mut h = Histogram::new();
        for v in [3, 0, 9, 9, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1021);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.iter().map(|b| b.n).sum::<u64>(), 5);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        // Three shards with arbitrary observations; every grouping and
        // ordering of merges must agree exactly.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in [1u64, 5, 17, 0] {
            a.observe(v);
        }
        for v in [2u64, 2, 1 << 40] {
            b.observe(v);
        }
        for v in [u64::MAX, 7] {
            c.observe(v);
        }

        // (a ⊕ b) ⊕ c
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "associativity");

        // c ⊕ b ⊕ a
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(ab_c, cba, "commutativity");

        // identity
        let mut with_empty = ab_c.clone();
        with_empty.merge(&Histogram::new());
        assert_eq!(ab_c, with_empty, "empty histogram is the identity");
    }

    #[test]
    fn empty_snapshot_is_clean() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
    }
}
