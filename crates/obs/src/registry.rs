//! The process-wide metrics registry: counters, gauges, and histograms,
//! collected in per-thread shards.
//!
//! Every mutation lands in a thread-local [`Shard`]; shards merge into the
//! global accumulator when a worker calls [`flush_thread`] (the fork/join
//! helpers do this at join) or when the thread exits (the shard's `Drop`).
//! All merge operators — addition for counters, maximum for gauges,
//! element-wise addition for histograms — are associative and commutative,
//! so the merged totals are independent of scheduling and worker count:
//! `IPV6WEB_THREADS=1` and `=N` produce identical counter values.
//!
//! Collection is off by default. Every recording call starts with one
//! relaxed atomic load and returns immediately when disabled, so the
//! instrumented hot paths pay near zero when nobody is measuring.

use crate::hist::Histogram;
use crate::snapshot::Snapshot;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when metric collection is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric collection on (counters, gauges, histograms).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns metric collection off. Already-collected values stay until
/// [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

#[derive(Default)]
struct Shard {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl Shard {
    fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }
}

/// Wrapper whose `Drop` flushes whatever the thread never flushed
/// explicitly — worker threads merge on exit even without cooperation.
#[derive(Default)]
struct ShardCell(RefCell<Shard>);

impl Drop for ShardCell {
    fn drop(&mut self) {
        merge_into_global(std::mem::take(&mut *self.0.borrow_mut()));
    }
}

thread_local! {
    static SHARD: ShardCell = ShardCell::default();
}

static GLOBAL: Mutex<Shard> = Mutex::new(Shard {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    hists: BTreeMap::new(),
});

fn merge_into_global(local: Shard) {
    if local.is_empty() {
        return;
    }
    let mut g = match GLOBAL.lock() {
        Ok(g) => g,
        // a panicking worker still merges what it had
        Err(poisoned) => poisoned.into_inner(),
    };
    for (k, v) in local.counters {
        *g.counters.entry(k).or_insert(0) += v;
    }
    for (k, v) in local.gauges {
        let slot = g.gauges.entry(k).or_insert(0);
        *slot = (*slot).max(v);
    }
    for (k, h) in local.hists {
        g.hists.entry(k).or_default().merge(&h);
    }
}

#[inline]
fn with_shard(f: impl FnOnce(&mut Shard)) {
    // If the thread is exiting and its shard is already gone, drop the
    // update rather than panic.
    let _ = SHARD.try_with(|cell| f(&mut cell.0.borrow_mut()));
}

/// Adds `n` to the named counter.
#[inline]
pub fn add(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    with_shard(|s| *s.counters.entry(name).or_insert(0) += n);
}

/// Increments the named counter by one.
#[inline]
pub fn inc(name: &'static str) {
    add(name, 1);
}

/// Raises the named high-water-mark gauge to at least `v`. Gauges merge by
/// maximum across shards (e.g. peak worker count), which keeps them
/// order-independent like every other metric.
#[inline]
pub fn gauge_max(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with_shard(|s| {
        let slot = s.gauges.entry(name).or_insert(0);
        *slot = (*slot).max(v);
    });
}

/// Records one observation into the named log-scale histogram.
#[inline]
pub fn observe(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with_shard(|s| s.hists.entry(name).or_default().observe(v));
}

/// Merges this thread's shard into the global accumulator. Fork/join
/// helpers call this as each worker finishes; threads that skip it are
/// covered by the shard's `Drop` at thread exit.
pub fn flush_thread() {
    let local = SHARD.try_with(|cell| std::mem::take(&mut *cell.0.borrow_mut()));
    if let Ok(local) = local {
        merge_into_global(local);
    }
}

/// Clears all merged metrics *and* the calling thread's shard. Other
/// threads' unflushed shards are untouched — callers reset between runs,
/// when no workers are live (the study joins all of its pools).
pub fn reset() {
    let _ = SHARD.try_with(|cell| *cell.0.borrow_mut() = Shard::default());
    let mut g = match GLOBAL.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *g = Shard::default();
}

/// Flushes the calling thread and snapshots the merged state. Worker
/// threads spawned by the study are joined (and therefore flushed) before
/// any caller can snapshot.
pub fn snapshot() -> Snapshot {
    flush_thread();
    let g = match GLOBAL.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    Snapshot {
        counters: g.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
        gauges: g.gauges.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
        histograms: g.hists.iter().map(|(&k, h)| (k.to_string(), h.snapshot())).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The registry is process-global; tests in this module serialize on a
    // lock and reset around themselves so they never see each other's data.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn isolated() -> MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        enable();
        guard
    }

    #[test]
    fn disabled_is_a_no_op() {
        let _g = isolated();
        disable();
        inc("t.disabled");
        gauge_max("t.disabled.g", 9);
        observe("t.disabled.h", 3);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        enable();
    }

    #[test]
    fn counters_accumulate() {
        let _g = isolated();
        inc("t.c");
        add("t.c", 4);
        assert_eq!(snapshot().counter("t.c"), 5);
        assert_eq!(snapshot().counter("t.absent"), 0);
        disable();
    }

    #[test]
    fn gauges_keep_maximum() {
        let _g = isolated();
        gauge_max("t.g", 3);
        gauge_max("t.g", 11);
        gauge_max("t.g", 7);
        assert_eq!(snapshot().gauge("t.g"), 11);
        disable();
    }

    #[test]
    fn shards_merge_across_threads() {
        let _g = isolated();
        const WORKERS: u64 = 4;
        const PER_WORKER: u64 = 1000;
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                s.spawn(move || {
                    for i in 0..PER_WORKER {
                        inc("t.sharded");
                        observe("t.sharded.h", i % 7);
                    }
                    gauge_max("t.sharded.g", w + 1);
                    flush_thread();
                });
            }
        });
        let snap = snapshot();
        assert_eq!(snap.counter("t.sharded"), WORKERS * PER_WORKER);
        assert_eq!(snap.gauge("t.sharded.g"), WORKERS);
        let h = &snap.histograms["t.sharded.h"];
        assert_eq!(h.count, WORKERS * PER_WORKER);
        disable();
    }

    #[test]
    fn thread_exit_flushes_without_cooperation() {
        let _g = isolated();
        // plain spawn + join, not thread::scope: scope unblocks when the
        // closure returns, which can be before the thread's TLS destructors
        // (the shard's Drop) have run; join() waits for full termination
        std::thread::spawn(|| {
            add("t.autoflush", 42);
            // no flush_thread(): the shard's Drop must cover it
        })
        .join()
        .unwrap();
        assert_eq!(snapshot().counter("t.autoflush"), 42);
        disable();
    }

    #[test]
    fn reset_clears_everything() {
        let _g = isolated();
        inc("t.reset");
        observe("t.reset.h", 1);
        reset();
        let snap = snapshot();
        assert_eq!(snap.counter("t.reset"), 0);
        assert!(snap.histograms.is_empty());
        disable();
    }
}
