//! `ipv6web-obs` — the study's observability layer.
//!
//! A lightweight, **deterministic** metrics registry threaded through
//! every substrate of the reproduction: topology generation, BGP route
//! computation, DNS resolution, probing, and the analysis pipeline. It
//! provides four primitives:
//!
//! * **Counters** ([`inc`], [`add`]) — monotone event counts;
//! * **Gauges** ([`gauge_max`]) — high-water marks (peak worker count);
//! * **Histograms** ([`observe`]) — log₂-bucketed distributions of
//!   integer observations, with an associative merge;
//! * **Span timers** ([`span`], [`record_span`]) — scoped wall-clock
//!   phase timings, collected per thread ([`Timings`] replaces the old
//!   `ipv6web-core::StudyTimings`).
//!
//! # Determinism
//!
//! Counters, gauges, and histograms collect into per-thread shards that
//! merge under associative, commutative operators at fork/join points
//! ([`flush_thread`], called by `ipv6web-par` and the monitor's worker
//! pool, plus a `Drop` safety net at thread exit). Because the study's
//! work decomposition is itself deterministic, the merged values are
//! bit-identical whatever `IPV6WEB_THREADS` says. Wall-clock span timings
//! are the one intentionally non-deterministic output and are kept apart
//! from the bit-comparable `Report` for exactly that reason.
//!
//! # Cost
//!
//! Collection is disabled by default; every recording call is then a
//! single relaxed atomic load. `repro --metrics` (and anything else that
//! wants numbers) calls [`enable`] first and [`snapshot`] at the end.

mod hist;
mod process;
mod registry;
mod snapshot;
mod span;

pub use hist::{bucket_hi, bucket_lo, bucket_of, BucketCount, Histogram, HistogramSnapshot};
pub use process::{peak_rss_kb, record_peak_rss};
pub use registry::{
    add, disable, enable, enabled, flush_thread, gauge_max, inc, observe, reset, snapshot,
};
pub use snapshot::Snapshot;
pub use span::{
    attach_spans, record_span, set_span_sink, span, span_mark, take_spans_since, Span, SpanRecord,
    SpanSink, Timings,
};
