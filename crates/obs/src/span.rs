//! Scoped wall-clock span timers.
//!
//! A [`Span`] guard measures the wall time between its creation and drop
//! and appends a [`SpanRecord`] to a **thread-local** log. Keeping the log
//! per-thread gives two properties the study needs:
//!
//! * concurrent studies (e.g. parallel tests in one process) never
//!   interleave each other's phase lists, and
//! * the recorded order is the deterministic completion order of the
//!   calling thread, exactly like the `StudyTimings` struct this replaces.
//!
//! Spans nest: a span opened while another is active records a larger
//! `depth`. Unlike counters, spans are *not* gated by the global enable
//! flag — a study runs a few dozen of them, they cost nanoseconds, and the
//! phase breakdown has always been printed unconditionally.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::time::Instant;

/// One completed span: a named phase with its wall-clock duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Phase label, e.g. `"world: route tables (v6)"`.
    pub name: String,
    /// Nesting depth at the time the span was opened (0 = top level).
    pub depth: u32,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
}

struct SpanLog {
    depth: u32,
    records: Vec<SpanRecord>,
}

thread_local! {
    static SPAN_LOG: RefCell<SpanLog> = const { RefCell::new(SpanLog { depth: 0, records: Vec::new() }) };
    static SPAN_SINK: RefCell<Option<SpanSink>> = const { RefCell::new(None) };
}

/// A live observer of completed spans on one thread; see [`set_span_sink`].
pub type SpanSink = std::sync::Arc<dyn Fn(&SpanRecord) + Send + Sync>;

/// Installs (or clears) this thread's span sink, returning the previous
/// one. While installed, every span completed on this thread — dropped
/// guards, [`record_span`] calls, and subtrees re-homed via
/// [`attach_spans`] — is also streamed to the sink, *after* it lands in
/// the thread-local log. This is how a long-running service surfaces
/// per-phase progress of an in-flight study without waiting for the final
/// [`Timings`]: the study driver's thread streams each phase as it
/// completes. The sink runs outside the log borrow, so it may itself open
/// spans (they are recorded normally but not re-streamed re-entrantly).
pub fn set_span_sink(sink: Option<SpanSink>) -> Option<SpanSink> {
    SPAN_SINK.with(|s| std::mem::replace(&mut *s.borrow_mut(), sink))
}

/// Streams `records` to this thread's sink, if one is installed. Takes the
/// sink out for the duration so a sink that records spans of its own never
/// recurses into itself.
fn stream_to_sink(records: &[SpanRecord]) {
    if records.is_empty() {
        return;
    }
    let Some(sink) = SPAN_SINK.with(|s| s.borrow_mut().take()) else { return };
    for r in records {
        sink(r);
    }
    SPAN_SINK.with(|s| {
        let mut slot = s.borrow_mut();
        if slot.is_none() {
            *slot = Some(sink);
        }
    });
}

/// An active span. Records itself into the thread-local log on drop.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    name: String,
    depth: u32,
    start: Instant,
    // Tied to the creating thread's log: keep the guard on that thread.
    _not_send: PhantomData<*const ()>,
}

/// Opens a span; the returned guard records the elapsed wall time under
/// `name` when dropped.
pub fn span(name: impl Into<String>) -> Span {
    let depth = SPAN_LOG.with(|l| {
        let mut l = l.borrow_mut();
        let d = l.depth;
        l.depth += 1;
        d
    });
    Span { name: name.into(), depth, start: Instant::now(), _not_send: PhantomData }
}

impl Drop for Span {
    fn drop(&mut self) {
        let seconds = self.start.elapsed().as_secs_f64();
        let record = SPAN_LOG.with(|l| {
            let mut l = l.borrow_mut();
            l.depth = l.depth.saturating_sub(1);
            let depth = self.depth;
            let name = std::mem::take(&mut self.name);
            let record = SpanRecord { name, depth, seconds };
            l.records.push(record.clone());
            record
        });
        stream_to_sink(std::slice::from_ref(&record));
    }
}

/// Records an already-measured duration as a completed span at the current
/// nesting depth (for phases timed manually).
pub fn record_span(name: impl Into<String>, elapsed: std::time::Duration) {
    let record = SPAN_LOG.with(|l| {
        let mut l = l.borrow_mut();
        let depth = l.depth;
        let record = SpanRecord { name: name.into(), depth, seconds: elapsed.as_secs_f64() };
        l.records.push(record.clone());
        record
    });
    stream_to_sink(std::slice::from_ref(&record));
}

/// Splices spans that were recorded on another thread — captured there
/// with [`span_mark`] / [`take_spans_since`] — into this thread's log,
/// offsetting each record's depth by the current nesting depth. This is
/// how a fork/join caller re-homes its workers' phase breakdowns: capture
/// per task on the worker, then attach in a deterministic task order at
/// the join, so the merged span tree never depends on scheduling.
pub fn attach_spans(records: Vec<SpanRecord>) {
    if records.is_empty() {
        return;
    }
    let adopted = SPAN_LOG.with(|l| {
        let mut l = l.borrow_mut();
        let base = l.depth;
        let adopted: Vec<SpanRecord> = records
            .into_iter()
            .map(|mut r| {
                r.depth += base;
                r
            })
            .collect();
        l.records.extend(adopted.iter().cloned());
        adopted
    });
    stream_to_sink(&adopted);
}

/// Current length of this thread's span log — pass to
/// [`take_spans_since`] to collect only the spans a scope produced.
pub fn span_mark() -> usize {
    SPAN_LOG.with(|l| l.borrow().records.len())
}

/// Removes and returns every span recorded on this thread since `mark`
/// (clamped to the log length).
pub fn take_spans_since(mark: usize) -> Vec<SpanRecord> {
    SPAN_LOG.with(|l| {
        let mut l = l.borrow_mut();
        let at = mark.min(l.records.len());
        l.records.split_off(at)
    })
}

/// A collected phase breakdown: what `StudyTimings` used to be, now fed by
/// spans. Serializes to the same `{"phases": [...]}` shape (each phase
/// additionally carries its nesting `depth`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timings {
    /// Completed spans in completion order.
    pub phases: Vec<SpanRecord>,
}

impl Timings {
    /// Sum of all top-level (depth 0) phases, in seconds. Nested spans are
    /// excluded so wrapped phases are not double-counted.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().filter(|p| p.depth == 0).map(|p| p.seconds).sum()
    }

    /// Renders the aligned text block `repro` prints. Nested spans indent
    /// under their parents; a depth-0-only log renders exactly like the
    /// old `StudyTimings` output.
    pub fn render(&self) -> String {
        let width = self
            .phases
            .iter()
            .map(|p| p.name.len() + 2 * p.depth as usize)
            .max()
            .unwrap_or(0)
            .max(5);
        let mut out = String::from("Study phase timings (wall clock):\n");
        for p in &self.phases {
            let indented = format!("{}{}", "  ".repeat(p.depth as usize), p.name);
            out.push_str(&format!("  {indented:<width$}  {:>8.3}s\n", p.seconds));
        }
        out.push_str(&format!("  {:<width$}  {:>8.3}s\n", "total", self.total_seconds()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the thread-local log; run each body against its own
    // mark so parallel-but-same-thread interference cannot occur (tests on
    // different threads have independent logs by construction).

    #[test]
    fn span_records_on_drop() {
        let mark = span_mark();
        {
            let _s = span("outer-a");
        }
        let got = take_spans_since(mark);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "outer-a");
        assert_eq!(got[0].depth, 0);
        assert!(got[0].seconds >= 0.0);
    }

    #[test]
    fn nesting_depths_and_completion_order() {
        let mark = span_mark();
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _mid = span("mid");
                let _inner = span("inner");
            }
            let _sibling = span("sibling");
        }
        let got = take_spans_since(mark);
        let names: Vec<&str> = got.iter().map(|r| r.name.as_str()).collect();
        // children complete before their parents
        assert_eq!(names, ["inner", "mid", "sibling", "outer"]);
        let depth: std::collections::BTreeMap<&str, u32> =
            got.iter().map(|r| (r.name.as_str(), r.depth)).collect();
        assert_eq!(depth["outer"], 0);
        assert_eq!(depth["mid"], 1);
        assert_eq!(depth["inner"], 2);
        assert_eq!(depth["sibling"], 1, "depth restored after a subtree closes");
        // a parent's wall time covers its children
        let outer = got.iter().find(|r| r.name == "outer").unwrap();
        let inner = got.iter().find(|r| r.name == "inner").unwrap();
        assert!(
            outer.seconds >= inner.seconds,
            "outer {} < inner {}",
            outer.seconds,
            inner.seconds
        );
    }

    #[test]
    fn take_spans_is_scoped_to_mark() {
        let _before = span("stale");
        drop(_before);
        let mark = span_mark();
        drop(span("fresh"));
        let got = take_spans_since(mark);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "fresh");
        // the stale span is still in the log for earlier marks
        let rest = take_spans_since(0);
        assert!(rest.iter().any(|r| r.name == "stale"));
    }

    #[test]
    fn record_span_uses_current_depth() {
        let mark = span_mark();
        {
            let _outer = span("outer");
            record_span("manual", std::time::Duration::from_millis(3));
        }
        let got = take_spans_since(mark);
        let manual = got.iter().find(|r| r.name == "manual").unwrap();
        assert_eq!(manual.depth, 1);
        assert!((manual.seconds - 0.003).abs() < 1e-9);
    }

    #[test]
    fn timings_total_counts_top_level_only() {
        let t = Timings {
            phases: vec![
                SpanRecord { name: "child".into(), depth: 1, seconds: 5.0 },
                SpanRecord { name: "parent".into(), depth: 0, seconds: 6.0 },
                SpanRecord { name: "next".into(), depth: 0, seconds: 1.0 },
            ],
        };
        assert!((t.total_seconds() - 7.0).abs() < 1e-12);
        let rendered = t.render();
        assert!(rendered.starts_with("Study phase timings (wall clock):\n"));
        assert!(rendered.contains("  parent"));
        assert!(rendered.contains("    child"), "nested spans indent");
        assert!(rendered.contains("total"));
    }

    #[test]
    fn attach_spans_rehomes_worker_spans_under_current_depth() {
        let mark = span_mark();
        // capture a small span tree on a worker thread...
        let captured = std::thread::scope(|s| {
            s.spawn(|| {
                let m = span_mark();
                {
                    let _outer = span("task");
                    drop(span("task: step"));
                }
                take_spans_since(m)
            })
            .join()
            .unwrap()
        });
        // ...and attach it on this thread while one span is open
        {
            let _parent = span("join point");
            attach_spans(captured);
        }
        let got = take_spans_since(mark);
        let names: Vec<&str> = got.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["task: step", "task", "join point"]);
        let depth: std::collections::BTreeMap<&str, u32> =
            got.iter().map(|r| (r.name.as_str(), r.depth)).collect();
        assert_eq!(depth["join point"], 0);
        assert_eq!(depth["task"], 1, "attached subtree nests under the open span");
        assert_eq!(depth["task: step"], 2, "relative depths inside the subtree survive");
        // attaching at top level keeps depths as captured
        let m2 = span_mark();
        attach_spans(vec![SpanRecord { name: "flat".into(), depth: 0, seconds: 0.0 }]);
        assert_eq!(take_spans_since(m2)[0].depth, 0);
    }

    #[test]
    fn span_sink_streams_completed_spans() {
        use std::sync::{Arc, Mutex};
        let mark = span_mark();
        let seen: Arc<Mutex<Vec<(String, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let seen = seen.clone();
            Arc::new(move |r: &SpanRecord| seen.lock().unwrap().push((r.name.clone(), r.depth)))
        };
        let prev = set_span_sink(Some(sink));
        {
            let _outer = span("job");
            drop(span("job: phase"));
            record_span("job: manual", std::time::Duration::from_millis(1));
            attach_spans(vec![SpanRecord { name: "worker".into(), depth: 0, seconds: 0.5 }]);
        }
        set_span_sink(prev);
        drop(span("after-sink-removed"));
        let streamed = seen.lock().unwrap().clone();
        assert_eq!(
            streamed,
            vec![
                ("job: phase".to_string(), 1),
                ("job: manual".to_string(), 1),
                ("worker".to_string(), 1),
                ("job".to_string(), 0),
            ],
            "sink sees every completion in log order, attach depths re-homed"
        );
        // the log itself is unchanged by streaming
        let names: Vec<String> = take_spans_since(mark).into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["job: phase", "job: manual", "worker", "job", "after-sink-removed"]);
    }

    #[test]
    fn span_sink_may_record_spans_without_recursing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let mark = span_mark();
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let prev = set_span_sink(Some(Arc::new(|_r: &SpanRecord| {
            CALLS.fetch_add(1, Ordering::SeqCst);
            // a sink that itself measures: must not re-enter itself
            drop(span("sink-internal"));
        })));
        drop(span("observed"));
        set_span_sink(prev);
        assert_eq!(CALLS.load(Ordering::SeqCst), 1, "sink fired once, not for its own span");
        let names: Vec<String> = take_spans_since(mark).into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["observed", "sink-internal"], "sink's own span still logged");
    }

    #[test]
    fn threads_have_independent_logs() {
        let mark = span_mark();
        std::thread::scope(|s| {
            s.spawn(|| {
                let m = span_mark();
                assert_eq!(m, 0, "fresh thread starts with an empty log");
                drop(span("worker-span"));
                assert_eq!(take_spans_since(m).len(), 1);
            });
        });
        assert!(take_spans_since(mark).is_empty(), "worker spans stay on the worker");
    }
}
