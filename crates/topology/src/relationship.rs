//! Business relationships between ASes (Gao–Rexford model).

use serde::{Deserialize, Serialize};

/// Relationship of an edge *from the perspective of one endpoint*.
///
/// Stored directionally: if A buys transit from B, then A sees
/// `CustomerOf` and B sees `ProviderOf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// This AS is the customer; the neighbor is its provider.
    CustomerOf,
    /// This AS is the provider; the neighbor is its customer.
    ProviderOf,
    /// Settlement-free peering.
    Peer,
}

impl Relationship {
    /// The relationship as seen from the other endpoint.
    pub fn reverse(self) -> Relationship {
        match self {
            Relationship::CustomerOf => Relationship::ProviderOf,
            Relationship::ProviderOf => Relationship::CustomerOf,
            Relationship::Peer => Relationship::Peer,
        }
    }

    /// BGP local preference implied by the relationship of the *next hop*
    /// (routes learned from customers preferred over peers over providers).
    pub fn local_pref(self) -> u8 {
        match self {
            // route learned FROM a customer (we are its provider)
            Relationship::ProviderOf => 3,
            Relationship::Peer => 2,
            Relationship::CustomerOf => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_is_involution() {
        for r in [Relationship::CustomerOf, Relationship::ProviderOf, Relationship::Peer] {
            assert_eq!(r.reverse().reverse(), r);
        }
    }

    #[test]
    fn reverse_swaps_roles() {
        assert_eq!(Relationship::CustomerOf.reverse(), Relationship::ProviderOf);
        assert_eq!(Relationship::Peer.reverse(), Relationship::Peer);
    }

    #[test]
    fn customer_routes_most_preferred() {
        assert!(Relationship::ProviderOf.local_pref() > Relationship::Peer.local_pref());
        assert!(Relationship::Peer.local_pref() > Relationship::CustomerOf.local_pref());
    }
}
