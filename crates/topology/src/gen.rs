//! Internet-like topology generation.
//!
//! The generator grows a tiered AS graph the way the real Internet's
//! customer-provider hierarchy looks from BGP table studies: a small clique
//! of transit-free tier-1s, preferentially-attached multihomed transit
//! providers below them, and leaf ASes (access networks, content hosters,
//! CDNs) buying transit at the edge. The IPv6 overlay is then derived from
//! the IPv4 graph per [`DualStackConfig`], and stranded IPv6 islands are
//! stitched to the core with 6in4 tunnels.

use crate::asys::{AsId, AsNode, IdOverflow, Region, Tier, V6Profile};
use crate::dualstack::DualStackConfig;
use crate::graph::{Family, Topology, TunnelInfo};
use crate::link::LinkProps;
use crate::relationship::Relationship;
use ipv6web_stats::{coin, derive_rng, lognormal};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Structural parameters of the generated topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Number of tier-1 backbone ASes (fully meshed).
    pub n_tier1: usize,
    /// Number of transit ASes.
    pub n_transit: usize,
    /// Number of access (eyeball) ASes — vantage points live here.
    pub n_access: usize,
    /// Number of content-hosting ASes — web sites live here.
    pub n_content: usize,
    /// Number of CDN ASes.
    pub n_cdn: usize,
    /// Probability two same-region transit ASes peer (IPv4).
    pub transit_peer_prob: f64,
    /// Probability two cross-region transit ASes peer (IPv4).
    pub transit_peer_prob_xregion: f64,
    /// Probability a CDN peers directly with an access (eyeball) AS — the
    /// 1-hop adjacency that gives CDN-served IPv4 its speed edge (Table 6).
    pub cdn_access_peering: f64,
    /// Dual-stack overlay parameters.
    pub dual: DualStackConfig,
}

impl TopologyConfig {
    /// A small topology for unit/integration tests (≈300 ASes).
    pub fn test_small() -> Self {
        Self::scaled(300)
    }

    /// The default full-study topology (≈4000 ASes — a 1:10 scale model of
    /// the ~37k-AS 2011 Internet preserving tier proportions).
    pub fn paper_scale() -> Self {
        Self::scaled(4000)
    }

    /// A full-magnitude topology: ~37k ASes, matching the 2011 Internet the
    /// paper measured. Peering probabilities are scaled down because they
    /// multiply *pair counts*, which grow quadratically: at 6½k transit
    /// ASes the `scaled()` defaults would mesh millions of peerings where
    /// the 2011 Internet had ~110k edges total.
    pub fn internet_scale() -> Self {
        let mut cfg = Self::scaled(37_000);
        cfg.transit_peer_prob = 0.004;
        cfg.transit_peer_prob_xregion = 0.0005;
        cfg.cdn_access_peering = 0.08;
        cfg
    }

    /// Builds a config with `n` total ASes split into realistic tier shares.
    pub fn scaled(n: usize) -> Self {
        assert!(n >= 30, "need at least 30 ASes");
        let n_tier1 = 8.min(n / 20).max(3);
        let n_cdn = (n / 100).clamp(2, 25);
        let rest = n - n_tier1 - n_cdn;
        let n_transit = rest * 18 / 100;
        let n_access = rest * 30 / 100;
        let n_content = rest - n_transit - n_access;
        TopologyConfig {
            n_tier1,
            n_transit,
            n_access,
            n_content,
            n_cdn,
            transit_peer_prob: 0.3,
            transit_peer_prob_xregion: 0.04,
            cdn_access_peering: 0.5,
            dual: DualStackConfig::year2011(),
        }
    }

    /// Total AS count.
    pub fn total(&self) -> usize {
        self.n_tier1 + self.n_transit + self.n_access + self.n_content + self.n_cdn
    }

    /// Validates structural sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_tier1 < 2 {
            return Err("need at least 2 tier-1 ASes".into());
        }
        if self.n_transit < 2 {
            return Err("need at least 2 transit ASes".into());
        }
        for (name, p) in [
            ("transit_peer_prob", self.transit_peer_prob),
            ("transit_peer_prob_xregion", self.transit_peer_prob_xregion),
            ("cdn_access_peering", self.cdn_access_peering),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} outside [0,1]"));
            }
        }
        self.dual.validate()
    }
}

/// Edge under construction (mutable until the final [`Topology`] is built).
struct ProtoEdge {
    a: AsId,
    b: AsId,
    rel_a: Relationship,
    props: LinkProps,
    v4: bool,
    v6: bool,
    tunnel: Option<TunnelInfo>,
}

/// Generates a dual-stack topology from `config`, deterministically in
/// `seed`.
///
/// # Panics
/// Panics if `config.validate()` fails or the AS count overflows the id
/// space (see [`try_generate`]).
pub fn generate(config: &TopologyConfig, seed: u64) -> Topology {
    try_generate(config, seed).expect("topology id space overflow")
}

/// Generates a dual-stack topology from `config`, deterministically in
/// `seed`, reporting id-space overflow as a typed error instead of
/// truncating node indices into `u32` ids.
///
/// # Panics
/// Panics if `config.validate()` fails.
pub fn try_generate(config: &TopologyConfig, seed: u64) -> Result<Topology, IdOverflow> {
    config.validate().expect("invalid topology config");
    let mut rng = derive_rng(seed, "topology");

    // ---- nodes -----------------------------------------------------------
    let mut nodes = Vec::with_capacity(config.total());
    let push_tier = |nodes: &mut Vec<AsNode>,
                     tier: Tier,
                     count: usize,
                     rng: &mut ipv6web_stats::StudyRng|
     -> Result<(), IdOverflow> {
        for _ in 0..count {
            let id = AsId::from_index(nodes.len())?;
            let region = pick_region(rng, tier);
            let (v4_prefix, _) = AsNode::address_plan(id);
            nodes.push(AsNode { id, tier, region, v4_prefix, v6: None });
        }
        Ok(())
    };
    push_tier(&mut nodes, Tier::Tier1, config.n_tier1, &mut rng)?;
    push_tier(&mut nodes, Tier::Transit, config.n_transit, &mut rng)?;
    push_tier(&mut nodes, Tier::Access, config.n_access, &mut rng)?;
    push_tier(&mut nodes, Tier::Content, config.n_content, &mut rng)?;
    push_tier(&mut nodes, Tier::Cdn, config.n_cdn, &mut rng)?;

    // ---- IPv6 adoption ----------------------------------------------------
    let d = &config.dual;
    for node in nodes.iter_mut() {
        let p = match node.tier {
            Tier::Tier1 => d.tier1_adoption,
            Tier::Transit => d.transit_adoption,
            Tier::Access => d.access_adoption,
            Tier::Content => d.content_adoption,
            Tier::Cdn => d.cdn_adoption,
        };
        if coin(&mut rng, p) || node.id.0 == 0 {
            let (_, prefix) = AsNode::address_plan(node.id);
            let forwarding_factor = if coin(&mut rng, d.forwarding_penalty_prob) {
                rng.gen_range(d.forwarding_factor_range.0..=d.forwarding_factor_range.1)
            } else {
                1.0
            };
            node.v6 = Some(V6Profile { prefix, forwarding_factor });
        }
    }

    // ---- IPv4 edges --------------------------------------------------------
    let mut edges: Vec<ProtoEdge> = Vec::new();
    let mut degree = vec![0usize; nodes.len()];
    let add = |edges: &mut Vec<ProtoEdge>,
               degree: &mut Vec<usize>,
               a: AsId,
               b: AsId,
               rel_a: Relationship,
               props: LinkProps| {
        degree[a.index()] += 1;
        degree[b.index()] += 1;
        edges.push(ProtoEdge { a, b, rel_a, props, v4: true, v6: false, tunnel: None });
    };

    let t1_range = 0..config.n_tier1;
    // tier-1 clique
    for i in t1_range.clone() {
        for j in (i + 1)..config.n_tier1 {
            let props = link_props(&mut rng, &nodes[i], &nodes[j]);
            add(&mut edges, &mut degree, nodes[i].id, nodes[j].id, Relationship::Peer, props);
        }
    }

    // transit: providers from tier1 + earlier transit, preferential attachment
    let transit_start = config.n_tier1;
    let transit_end = transit_start + config.n_transit;
    for i in transit_start..transit_end {
        let n_providers = rng.gen_range(1..=3.min(i));
        let candidates: Vec<usize> = (0..i.min(transit_end)).collect();
        let chosen = weighted_pick(&mut rng, &candidates, n_providers, |c| {
            let w = (degree[c] + 1) as f64;
            if nodes[c].region == nodes[i].region {
                w * 3.0
            } else {
                w
            }
        });
        for p in chosen {
            let props = link_props(&mut rng, &nodes[i], &nodes[p]);
            add(&mut edges, &mut degree, nodes[i].id, nodes[p].id, Relationship::CustomerOf, props);
        }
    }
    // transit peering
    for i in transit_start..transit_end {
        for j in (i + 1)..transit_end {
            let p = if nodes[i].region == nodes[j].region {
                config.transit_peer_prob
            } else {
                config.transit_peer_prob_xregion
            };
            if coin(&mut rng, p) {
                let props = link_props(&mut rng, &nodes[i], &nodes[j]);
                add(&mut edges, &mut degree, nodes[i].id, nodes[j].id, Relationship::Peer, props);
            }
        }
    }

    // leaves: providers among transit (same region favored); CDNs multihome
    for i in transit_end..nodes.len() {
        let n_providers = match nodes[i].tier {
            // CDNs are massively multihomed — their edges sit inside many
            // transit providers, so most eyeballs reach them in two AS hops
            Tier::Cdn => rng.gen_range(5..=10.min(config.n_transit)),
            _ => rng.gen_range(1..=2.min(config.n_transit)),
        };
        let candidates: Vec<usize> = (transit_start..transit_end).collect();
        let chosen = weighted_pick(&mut rng, &candidates, n_providers, |c| {
            let w = (degree[c] + 1) as f64;
            if nodes[c].region == nodes[i].region {
                w * 4.0
            } else {
                w
            }
        });
        for p in chosen {
            let props = link_props(&mut rng, &nodes[i], &nodes[p]);
            add(&mut edges, &mut degree, nodes[i].id, nodes[p].id, Relationship::CustomerOf, props);
        }
    }

    // CDN-to-eyeball peering: CDNs put edges directly inside access
    // networks, so most vantage points reach them in one AS hop.
    for i in transit_end..nodes.len() {
        if nodes[i].tier != Tier::Cdn {
            continue;
        }
        for j in transit_end..nodes.len() {
            if nodes[j].tier != Tier::Access {
                continue;
            }
            if coin(&mut rng, config.cdn_access_peering) {
                let props = link_props(&mut rng, &nodes[i], &nodes[j]);
                add(&mut edges, &mut degree, nodes[i].id, nodes[j].id, Relationship::Peer, props);
            }
        }
    }

    // ---- IPv6 overlay ------------------------------------------------------
    for e in edges.iter_mut() {
        let (na, nb) = (&nodes[e.a.index()], &nodes[e.b.index()]);
        if !(na.is_dual_stack() && nb.is_dual_stack()) {
            continue;
        }
        let both_t1 = na.tier == Tier::Tier1 && nb.tier == Tier::Tier1;
        // an access AS that deployed IPv6 almost always got native v6
        // transit from its existing provider (how eyeballs deployed in
        // 2011), so access uplinks replicate with near certainty
        let access_uplink = matches!(e.rel_a, Relationship::CustomerOf)
            && (na.tier == Tier::Access || nb.tier == Tier::Access);
        let p = match e.rel_a {
            Relationship::Peer if both_t1 => 1.0, // v6 core stays meshed
            Relationship::Peer => d.peering_parity,
            _ if access_uplink => d.provider_parity.max(0.95),
            _ => d.provider_parity,
        };
        if coin(&mut rng, p) {
            e.v6 = true;
        }
    }

    // ---- stitch stranded v6 islands ---------------------------------------
    stitch_v6_islands(&mut rng, &nodes, &mut edges, d);

    // ---- build -------------------------------------------------------------
    let mut topo = Topology::new(nodes);
    for e in edges {
        topo.add_edge(e.a, e.b, e.rel_a, e.props, e.v4, e.v6, e.tunnel);
    }
    ipv6web_obs::gauge_max("topology.nodes", topo.num_ases() as u64);
    ipv6web_obs::gauge_max("topology.edges", topo.edges().len() as u64);
    ipv6web_obs::add("topology.generated", 1);
    Ok(topo)
}

/// Weighted sample of `k` distinct items from `candidates`.
fn weighted_pick<R: Rng>(
    rng: &mut R,
    candidates: &[usize],
    k: usize,
    weight: impl Fn(usize) -> f64,
) -> Vec<usize> {
    let mut pool: Vec<(usize, f64)> =
        candidates.iter().map(|&c| (c, weight(c).max(1e-9))).collect();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k.min(pool.len()) {
        let total: f64 = pool.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen_range(0.0..total);
        let mut idx = pool.len() - 1;
        for (i, (_, w)) in pool.iter().enumerate() {
            if x < *w {
                idx = i;
                break;
            }
            x -= w;
        }
        out.push(pool.swap_remove(idx).0);
    }
    out
}

fn pick_region<R: Rng>(rng: &mut R, tier: Tier) -> Region {
    // Tier-1s concentrate where the 2011 backbone did.
    let weights: &[(Region, f64)] = match tier {
        Tier::Tier1 => &[(Region::NorthAmerica, 0.5), (Region::Europe, 0.3), (Region::Asia, 0.2)],
        _ => &[
            (Region::NorthAmerica, 0.30),
            (Region::Europe, 0.25),
            (Region::Asia, 0.22),
            (Region::SouthAmerica, 0.09),
            (Region::Africa, 0.06),
            (Region::Oceania, 0.08),
        ],
    };
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for (r, w) in weights {
        if x < *w {
            return *r;
        }
        x -= w;
    }
    weights.last().unwrap().0
}

fn link_props<R: Rng>(rng: &mut R, a: &AsNode, b: &AsNode) -> LinkProps {
    // CDNs are distributed: their edges behave like short regional hops
    // regardless of nominal geography (anycast presence near the peer),
    // which is what gives CDN-served IPv4 its latency advantage (Table 6).
    let cdn_edge = a.tier == Tier::Cdn || b.tier == Tier::Cdn;
    let delay = if cdn_edge {
        rng.gen_range(3.0..10.0)
    } else {
        a.region.base_delay_ms(b.region) * rng.gen_range(0.8..1.4)
    };
    let bw_median = match (a.tier, b.tier) {
        (Tier::Tier1, Tier::Tier1) => 30_000.0,
        (Tier::Cdn, _) | (_, Tier::Cdn) => 20_000.0,
        (Tier::Tier1, _) | (_, Tier::Tier1) => 18_000.0,
        (Tier::Transit, Tier::Transit) => 12_000.0,
        _ => 4_000.0,
    };
    let bandwidth = lognormal(rng, bw_median, 0.4).max(200.0);
    let loss = lognormal(rng, 0.0008, 0.7).min(0.05);
    LinkProps::new(delay, bandwidth, loss)
}

/// Ensures every dual-stack AS has a v6 **up-path**: a chain of v6
/// customer→provider edges reaching the dual-stack tier-1 mesh.
///
/// This is the structural condition under which Gao–Rexford routing makes
/// every dual-stack destination reachable from every dual-stack source:
/// the destination's announcement climbs its up-path to a tier-1, crosses
/// the (meshed) tier-1s via at most one peer edge, and descends the
/// source's up-path in reverse — a valley-free route.
///
/// A stranded AS is fixed either *natively* — upgrading one of its existing
/// IPv4 provider edges (toward a dual-stack, already-uplinked provider) to
/// carry IPv6 — or with a **6in4 tunnel** to a random dual-stack tier-1
/// "tunnel broker", with `tunnel_prob` deciding between the two. Tunnels
/// carry the hidden-hop and extra-delay metadata that drives Table 7.
fn stitch_v6_islands<R: Rng>(
    rng: &mut R,
    nodes: &[AsNode],
    edges: &mut Vec<ProtoEdge>,
    d: &DualStackConfig,
) {
    let relays: Vec<usize> = nodes
        .iter()
        .filter(|n| n.tier == Tier::Tier1 && n.is_dual_stack())
        .map(|n| n.id.index())
        .collect();
    if relays.is_empty() {
        return; // no dual tier-1 => degenerate world, nothing to anchor to
    }

    // uplinked = can reach a dual tier-1 via v6 CustomerOf chain.
    let compute_uplinked = |edges: &Vec<ProtoEdge>| -> Vec<bool> {
        let mut uplinked = vec![false; nodes.len()];
        for &r in &relays {
            uplinked[r] = true;
        }
        // Providers have strictly lower indices by construction, so a single
        // ascending-order fixpoint loop converges quickly.
        loop {
            let mut changed = false;
            for e in edges.iter() {
                if !e.v6 {
                    continue;
                }
                // e.rel_a is from a's perspective.
                let (cust, prov) = match e.rel_a {
                    Relationship::CustomerOf => (e.a.index(), e.b.index()),
                    Relationship::ProviderOf => (e.b.index(), e.a.index()),
                    Relationship::Peer => continue,
                };
                if uplinked[prov] && !uplinked[cust] {
                    uplinked[cust] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        uplinked
    };

    loop {
        let uplinked = compute_uplinked(edges);
        // Lowest-index stranded dual AS first: its dual providers are all
        // lower-index, hence already uplinked — every fix makes progress.
        let Some(u) = (0..nodes.len()).find(|&u| nodes[u].is_dual_stack() && !uplinked[u]) else {
            break;
        };

        let mut fixed = false;
        if !coin(rng, d.tunnel_prob) {
            // Native upgrade: one of u's v4 provider edges toward a
            // dual-stack uplinked provider starts carrying IPv6.
            let mut candidates: Vec<usize> = Vec::new();
            for (i, e) in edges.iter().enumerate() {
                if !e.v4 || e.v6 {
                    continue;
                }
                let (cust, prov) = match e.rel_a {
                    Relationship::CustomerOf => (e.a.index(), e.b.index()),
                    Relationship::ProviderOf => (e.b.index(), e.a.index()),
                    Relationship::Peer => continue,
                };
                if cust == u && nodes[prov].is_dual_stack() && uplinked[prov] {
                    candidates.push(i);
                }
            }
            if let Some(&i) = candidates.choose(rng) {
                edges[i].v6 = true;
                fixed = true;
            }
        }
        if !fixed {
            // 6in4 tunnel to a broker. Real 2011 tunnel brokers (Hurricane
            // Electric and friends) sat at a handful of very well-connected
            // transit providers, which is what makes tunneled IPv6 paths
            // *look* short in AS hops (Table 7): prefer the earliest
            // (highest-degree) uplinked dual-stack transit ASes, fall back
            // to a dual tier-1.
            let broker_pool: Vec<usize> = (0..nodes.len())
                .filter(|&i| {
                    i != u
                        && nodes[i].tier == Tier::Transit
                        && nodes[i].is_dual_stack()
                        && uplinked[i]
                })
                .take(4)
                .collect();
            let relay = broker_pool
                .choose(rng)
                .copied()
                .unwrap_or_else(|| *relays.choose(rng).expect("non-empty"));
            let props = link_props(rng, &nodes[u], &nodes[relay]);
            edges.push(ProtoEdge {
                a: nodes[u].id,
                b: nodes[relay].id,
                rel_a: Relationship::CustomerOf,
                props,
                v4: false,
                v6: true,
                tunnel: Some(TunnelInfo {
                    hidden_hops: rng.gen_range(2..=4),
                    extra_delay_ms: rng.gen_range(20.0..80.0),
                }),
            });
        }
    }
    let _ = Family::V6; // family used by callers; silence unused-import lint paths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Topology {
        generate(&TopologyConfig::test_small(), 42)
    }

    #[test]
    fn generates_requested_counts() {
        let cfg = TopologyConfig::test_small();
        let t = small();
        assert_eq!(t.num_ases(), cfg.total());
        let count = |tier: Tier| t.nodes().iter().filter(|n| n.tier == tier).count();
        assert_eq!(count(Tier::Tier1), cfg.n_tier1);
        assert_eq!(count(Tier::Transit), cfg.n_transit);
        assert_eq!(count(Tier::Access), cfg.n_access);
        assert_eq!(count(Tier::Content), cfg.n_content);
        assert_eq!(count(Tier::Cdn), cfg.n_cdn);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&TopologyConfig::test_small(), 7);
        let b = generate(&TopologyConfig::test_small(), 7);
        assert_eq!(a.num_ases(), b.num_ases());
        assert_eq!(a.edges().len(), b.edges().len());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TopologyConfig::test_small(), 1);
        let b = generate(&TopologyConfig::test_small(), 2);
        let same_edges = a.edges().len() == b.edges().len()
            && a.edges().iter().zip(b.edges()).all(|(x, y)| x == y);
        assert!(!same_edges);
    }

    #[test]
    fn v4_fully_connected() {
        assert!(small().is_connected(Family::V4));
    }

    #[test]
    fn v6_subgraph_connected() {
        assert!(small().is_connected(Family::V6));
    }

    #[test]
    fn v6_is_sparser_than_v4() {
        let t = small();
        assert!(t.edge_count(Family::V6) < t.edge_count(Family::V4));
        assert!(t.dual_stack_count() < t.num_ases());
        assert!(t.dual_stack_count() > 0);
    }

    #[test]
    fn tier1_clique_in_v4() {
        let cfg = TopologyConfig::test_small();
        let t = small();
        for i in 0..cfg.n_tier1 {
            for j in (i + 1)..cfg.n_tier1 {
                assert!(
                    t.edge_between(AsId(i as u32), AsId(j as u32), Family::V4).is_some(),
                    "tier1 {i} and {j} must peer"
                );
            }
        }
    }

    #[test]
    fn dual_tier1s_meshed_in_v6() {
        let cfg = TopologyConfig::test_small();
        let t = small();
        let dual_t1: Vec<u32> =
            (0..cfg.n_tier1 as u32).filter(|&i| t.node(AsId(i)).is_dual_stack()).collect();
        for (x, &i) in dual_t1.iter().enumerate() {
            for &j in &dual_t1[x + 1..] {
                assert!(
                    t.edge_between(AsId(i), AsId(j), Family::V6).is_some(),
                    "dual tier1 {i} and {j} must peer in v6"
                );
            }
        }
    }

    #[test]
    fn every_non_tier1_has_a_provider() {
        let t = small();
        for n in t.nodes() {
            if n.tier == Tier::Tier1 {
                continue;
            }
            let has_provider = t
                .neighbors(n.id, Family::V4)
                .iter()
                .any(|(_, rel, _)| *rel == Relationship::CustomerOf);
            assert!(has_provider, "{} ({:?}) must buy transit", n.id, n.tier);
        }
    }

    #[test]
    fn tunnels_are_v6_only_with_metadata() {
        let t = small();
        for e in t.edges() {
            if let Some(info) = e.tunnel {
                assert!(e.v6 && !e.v4);
                assert!((2..=4).contains(&info.hidden_hops));
                assert!(info.extra_delay_ms >= 20.0 && info.extra_delay_ms < 80.0);
            }
        }
    }

    #[test]
    fn full_parity_config_gives_equal_graphs() {
        let mut cfg = TopologyConfig::test_small();
        cfg.dual = DualStackConfig::full_parity();
        let t = generate(&cfg, 9);
        assert_eq!(t.dual_stack_count(), t.num_ases());
        assert_eq!(t.edge_count(Family::V4), t.edge_count(Family::V6));
        assert!(t.edges().iter().all(|e| e.tunnel.is_none()));
    }

    #[test]
    fn forwarding_factors_valid() {
        let t = small();
        for n in t.nodes() {
            if let Some(p) = &n.v6 {
                assert!(p.forwarding_factor > 0.0 && p.forwarding_factor <= 1.0);
            }
        }
    }

    #[test]
    fn link_props_sane() {
        let t = small();
        for e in t.edges() {
            assert!(e.props.delay_ms > 0.0 && e.props.delay_ms < 200.0);
            assert!(e.props.bandwidth_kbps >= 200.0);
            assert!((0.0..=0.05).contains(&e.props.loss));
        }
    }

    #[test]
    fn scaled_config_proportions() {
        let cfg = TopologyConfig::scaled(1000);
        assert_eq!(cfg.total(), 1000);
        assert!(cfg.n_content > cfg.n_transit, "content-heavy edge");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "at least 30")]
    fn tiny_scale_panics() {
        TopologyConfig::scaled(10);
    }

    #[test]
    fn validate_rejects_bad_probs() {
        let mut cfg = TopologyConfig::test_small();
        cfg.transit_peer_prob = 2.0;
        assert!(cfg.validate().is_err());
    }
}
