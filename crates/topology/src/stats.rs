//! Structural statistics of a generated topology.
//!
//! The generator promises an Internet-like graph with a tunable dual-stack
//! overlay; this module *measures* what actually came out — degree
//! distributions, per-tier counts, realized peering/provider parity,
//! tunnel prevalence — so tests (and users) can validate a world against
//! its configuration instead of trusting it.

use crate::asys::Tier;
use crate::graph::{Family, Topology};
use crate::relationship::Relationship;
use serde::{Deserialize, Serialize};

/// Measured structural summary of one topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Total ASes.
    pub n_ases: usize,
    /// Dual-stack ASes.
    pub n_dual: usize,
    /// Edges present in IPv4 / IPv6.
    pub edges_v4: usize,
    /// Edges present in IPv6.
    pub edges_v6: usize,
    /// 6in4 tunnel edges.
    pub tunnels: usize,
    /// Realized provider-edge parity: share of IPv4 customer-provider
    /// edges between dual-stack endpoints that also carry IPv6.
    pub provider_parity: f64,
    /// Realized peering parity (same, for peer edges, tier-1 mesh
    /// excluded since it is pinned at 1.0).
    pub peering_parity: f64,
    /// Maximum IPv4 degree (the preferential-attachment hubs).
    pub max_degree_v4: usize,
    /// Mean IPv4 degree.
    pub mean_degree_v4: f64,
}

/// Measures `topo`.
pub fn measure(topo: &Topology) -> TopologyStats {
    let mut provider_eligible = 0usize;
    let mut provider_replicated = 0usize;
    let mut peer_eligible = 0usize;
    let mut peer_replicated = 0usize;
    let mut tunnels = 0usize;
    for e in topo.edges() {
        if e.tunnel.is_some() {
            tunnels += 1;
            continue;
        }
        if !e.v4 {
            continue;
        }
        let dual_endpoints = topo.node(e.a).is_dual_stack() && topo.node(e.b).is_dual_stack();
        if !dual_endpoints {
            continue;
        }
        let both_t1 = topo.node(e.a).tier == Tier::Tier1 && topo.node(e.b).tier == Tier::Tier1;
        match e.rel_a {
            Relationship::Peer if !both_t1 => {
                peer_eligible += 1;
                peer_replicated += usize::from(e.v6);
            }
            Relationship::Peer => {}
            _ => {
                provider_eligible += 1;
                provider_replicated += usize::from(e.v6);
            }
        }
    }
    let degree_v4: Vec<usize> =
        topo.nodes().iter().map(|n| topo.neighbors(n.id, Family::V4).len()).collect();
    TopologyStats {
        n_ases: topo.num_ases(),
        n_dual: topo.dual_stack_count(),
        edges_v4: topo.edge_count(Family::V4),
        edges_v6: topo.edge_count(Family::V6),
        tunnels,
        provider_parity: ratio(provider_replicated, provider_eligible),
        peering_parity: ratio(peer_replicated, peer_eligible),
        max_degree_v4: degree_v4.iter().copied().max().unwrap_or(0),
        mean_degree_v4: degree_v4.iter().sum::<usize>() as f64 / degree_v4.len().max(1) as f64,
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        f64::NAN
    } else {
        num as f64 / den as f64
    }
}

impl std::fmt::Display for TopologyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} ASes ({} dual-stack), {} v4 / {} v6 edges, {} tunnels",
            self.n_ases, self.n_dual, self.edges_v4, self.edges_v6, self.tunnels
        )?;
        writeln!(
            f,
            "realized parity: provider {:.2}, peering {:.2}; v4 degree mean {:.1} max {}",
            self.provider_parity, self.peering_parity, self.mean_degree_v4, self.max_degree_v4
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dualstack::DualStackConfig;
    use crate::gen::{generate, TopologyConfig};

    #[test]
    fn realized_parity_tracks_configuration() {
        let cfg = TopologyConfig::scaled(1200);
        let t = generate(&cfg, 17);
        let s = measure(&t);
        // provider parity: configured 0.85 but native upgrades during
        // island stitching and near-certain access uplinks push it up
        assert!(
            (cfg.dual.provider_parity - 0.1..=1.0).contains(&s.provider_parity),
            "provider parity {:.2} vs configured {:.2}",
            s.provider_parity,
            cfg.dual.provider_parity
        );
        // peering parity: tier-1 mesh excluded, so the realized value sits
        // near the configured probability
        assert!(
            (s.peering_parity - cfg.dual.peering_parity).abs() < 0.1,
            "peering parity {:.2} vs configured {:.2}",
            s.peering_parity,
            cfg.dual.peering_parity
        );
    }

    #[test]
    fn full_parity_measures_as_one() {
        let mut cfg = TopologyConfig::scaled(400);
        cfg.dual = DualStackConfig::full_parity();
        let s = measure(&generate(&cfg, 5));
        assert_eq!(s.n_dual, s.n_ases);
        assert_eq!(s.tunnels, 0);
        assert!((s.provider_parity - 1.0).abs() < 1e-9);
        assert!((s.peering_parity - 1.0).abs() < 1e-9);
        assert_eq!(s.edges_v4, s.edges_v6);
    }

    #[test]
    fn hubs_exist_under_preferential_attachment() {
        let s = measure(&generate(&TopologyConfig::scaled(1000), 23));
        assert!(
            s.max_degree_v4 as f64 > 5.0 * s.mean_degree_v4,
            "hubs: max {} vs mean {:.1}",
            s.max_degree_v4,
            s.mean_degree_v4
        );
    }

    #[test]
    fn display_summarizes() {
        let s = measure(&generate(&TopologyConfig::test_small(), 1));
        let text = s.to_string();
        assert!(text.contains("dual-stack") && text.contains("parity"));
    }
}
