//! AS-level Internet topology with a dual-stack overlay.
//!
//! The paper's findings are fundamentally *topological*: whether a site's
//! IPv6 and IPv4 AS paths coincide (SP) or diverge (DP) is determined by
//! which ASes deployed IPv6 and which peering/transit edges exist in each
//! family. This crate generates Internet-like AS graphs that expose exactly
//! those degrees of freedom:
//!
//! * a **tiered hierarchy** — a tier-1 clique, multihomed transit ASes, and
//!   stub ASes (eyeball access networks, content hosters, CDNs) — with
//!   customer-provider and peer-peer business relationships (Gao–Rexford);
//! * a **dual-stack overlay**: each AS may or may not have deployed IPv6,
//!   and each IPv4 edge may or may not be replicated in IPv6. The fraction
//!   of IPv4 *peering* edges replicated in IPv6 is the paper's headline
//!   knob, **peering parity**;
//! * **6in4 tunnels** bridging v6 islands across v4-only transit, carrying a
//!   `hidden_hops` count (the underlying IPv4 AS hops a tunneled edge
//!   collapses) that drives the Table 7 hop-count artifacts;
//! * per-link **delay / bandwidth / loss** derived from geography and tier,
//!   consumed by the `ipv6web-netsim` data plane.

pub mod asys;
pub mod dualstack;
pub mod gen;
pub mod graph;
pub mod link;
pub mod relationship;
pub mod stats;

pub use asys::{AsId, AsNode, IdOverflow, Region, Tier};
pub use dualstack::DualStackConfig;
pub use gen::{generate, try_generate, TopologyConfig};
pub use graph::{Edge, EdgeId, Family, Topology};
pub use link::LinkProps;
pub use relationship::Relationship;
pub use stats::{measure, TopologyStats};
