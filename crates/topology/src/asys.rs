//! Autonomous systems: identity, tier, geography, addressing.

use ipv6web_packet::{Ipv4Cidr, Ipv6Cidr};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// An identifier-space overflow: a dense index did not fit the `u32` id
/// type it was being converted into. Raised by the world-generation path
/// instead of silently truncating with `as u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdOverflow {
    /// The id type that overflowed (`"AsId"`, `"EdgeId"`, `"SiteId"`, …).
    pub kind: &'static str,
    /// The index that did not fit.
    pub value: usize,
}

impl IdOverflow {
    /// Builds an overflow error for id type `kind` at index `value`.
    pub fn new(kind: &'static str, value: usize) -> Self {
        IdOverflow { kind, value }
    }
}

impl fmt::Display for IdOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} overflow: index {} does not fit in u32", self.kind, self.value)
    }
}

impl std::error::Error for IdOverflow {}

/// An AS number. Dense indices starting at 0; display adds a realistic
/// offset so logs read like AS numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl AsId {
    /// Dense index for vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Checked conversion from a dense index; errors instead of silently
    /// truncating when a generated world outgrows the `u32` id space.
    pub fn from_index(i: usize) -> Result<Self, IdOverflow> {
        u32::try_from(i).map(AsId).map_err(|_| IdOverflow::new("AsId", i))
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", 1000 + self.0)
    }
}

/// Business role of an AS in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Global transit-free backbone; fully meshed with other tier-1s.
    Tier1,
    /// Regional/national transit provider.
    Transit,
    /// Eyeball/access network (where vantage points live).
    Access,
    /// Content hosting AS (where web sites live).
    Content,
    /// Content delivery network (the paper's DL sites have their IPv4
    /// presence here while IPv6 stays at the origin).
    Cdn,
}

impl Tier {
    /// All tiers, for iteration in tests and generators.
    pub const ALL: [Tier; 5] = [Tier::Tier1, Tier::Transit, Tier::Access, Tier::Content, Tier::Cdn];
}

/// Coarse geography, used for link delays and the paper's vantage-point
/// spread (Table 1 covers North America, Europe and Asia).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    NorthAmerica,
    SouthAmerica,
    Europe,
    Asia,
    Africa,
    Oceania,
}

impl Region {
    /// All regions.
    pub const ALL: [Region; 6] = [
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Europe,
        Region::Asia,
        Region::Africa,
        Region::Oceania,
    ];

    /// Rough one-way propagation delay in milliseconds between two regions
    /// (same-region handled by link-level jitter on top of this base).
    pub fn base_delay_ms(self, other: Region) -> f64 {
        if self == other {
            return 8.0;
        }
        use Region::*;
        match (self.min_pair(other), self.max_pair(other)) {
            (NorthAmerica, Europe) | (Europe, NorthAmerica) => 45.0,
            (NorthAmerica, Asia) | (Asia, NorthAmerica) => 70.0,
            (Europe, Asia) | (Asia, Europe) => 60.0,
            (NorthAmerica, SouthAmerica) | (SouthAmerica, NorthAmerica) => 55.0,
            (Europe, Africa) | (Africa, Europe) => 50.0,
            (Asia, Oceania) | (Oceania, Asia) => 55.0,
            _ => 85.0,
        }
    }

    fn rank(self) -> u8 {
        use Region::*;
        match self {
            NorthAmerica => 0,
            SouthAmerica => 1,
            Europe => 2,
            Asia => 3,
            Africa => 4,
            Oceania => 5,
        }
    }

    fn min_pair(self, other: Region) -> Region {
        if self.rank() <= other.rank() {
            self
        } else {
            other
        }
    }

    fn max_pair(self, other: Region) -> Region {
        if self.rank() <= other.rank() {
            other
        } else {
            self
        }
    }
}

/// IPv6 deployment profile of an AS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct V6Profile {
    /// The AS's IPv6 prefix.
    pub prefix: Ipv6Cidr,
    /// Relative IPv6 forwarding efficiency of this AS's data plane, as a
    /// multiplier on achievable throughput (1.0 = parity with IPv4 — the H1
    /// regime; <1.0 models legacy software-forwarding pockets).
    pub forwarding_factor: f64,
}

/// One autonomous system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsNode {
    /// Identity (dense index).
    pub id: AsId,
    /// Hierarchy role.
    pub tier: Tier,
    /// Geography.
    pub region: Region,
    /// IPv4 prefix owned by the AS.
    pub v4_prefix: Ipv4Cidr,
    /// IPv6 deployment, if the AS is dual-stack.
    pub v6: Option<V6Profile>,
}

impl AsNode {
    /// Allocates the deterministic address plan for AS `id`:
    /// IPv4 `N.N.0.0/16`-style carved from `16.0.0.0/4`-equivalent space,
    /// IPv6 `2400+k:i::/32`-style sequential allocations.
    pub fn address_plan(id: AsId) -> (Ipv4Cidr, Ipv6Cidr) {
        let i = id.0;
        // 16.0.0.0 + i * 2^16 => unique /16 per AS, staying clear of 0/8 and 10/8.
        let v4_base = (16u32 << 24) + (i << 16);
        let v4 = Ipv4Cidr::new(Ipv4Addr::from(v4_base), 16);
        // 2400::/12 style: embed the AS index in segments 1-2.
        let v6_addr =
            Ipv6Addr::new(0x2400 + (i >> 16) as u16, (i & 0xffff) as u16, 0, 0, 0, 0, 0, 0);
        let v6 = Ipv6Cidr::new(v6_addr, 32);
        (v4, v6)
    }

    /// Whether the AS has deployed IPv6.
    pub fn is_dual_stack(&self) -> bool {
        self.v6.is_some()
    }

    /// The `i`-th IPv4 host address in this AS.
    pub fn v4_host(&self, i: u32) -> Ipv4Addr {
        self.v4_prefix.host(i.max(1))
    }

    /// The `i`-th IPv6 host address, if dual-stack.
    pub fn v6_host(&self, i: u32) -> Option<Ipv6Addr> {
        self.v6.as_ref().map(|p| p.prefix.host(i.max(1) as u128))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_offsets_as_number() {
        assert_eq!(AsId(0).to_string(), "AS1000");
        assert_eq!(AsId(42).to_string(), "AS1042");
    }

    #[test]
    fn address_plan_unique_and_disjoint() {
        let (a4, a6) = AsNode::address_plan(AsId(1));
        let (b4, b6) = AsNode::address_plan(AsId(2));
        assert_ne!(a4, b4);
        assert_ne!(a6, b6);
        assert!(!a4.contains(b4.network()));
        assert!(!a6.contains(b6.network()));
    }

    #[test]
    fn address_plan_deterministic() {
        assert_eq!(AsNode::address_plan(AsId(7)), AsNode::address_plan(AsId(7)));
    }

    #[test]
    fn address_plan_survives_large_index() {
        let (v4, v6) = AsNode::address_plan(AsId(70_000));
        // v4 wraps within u32 arithmetic but must still be a /16
        assert_eq!(v4.len(), 16);
        assert_eq!(v6.len(), 32);
    }

    #[test]
    fn hosts_inside_prefix() {
        let (v4, v6) = AsNode::address_plan(AsId(3));
        let node = AsNode {
            id: AsId(3),
            tier: Tier::Content,
            region: Region::Europe,
            v4_prefix: v4,
            v6: Some(V6Profile { prefix: v6, forwarding_factor: 1.0 }),
        };
        assert!(v4.contains(node.v4_host(99)));
        assert!(v6.contains(node.v6_host(99).unwrap()));
        // host index 0 is bumped to 1 (network address never handed out)
        assert_ne!(node.v4_host(0), v4.network());
    }

    #[test]
    fn v6_host_none_when_single_stack() {
        let (v4, _) = AsNode::address_plan(AsId(5));
        let node = AsNode {
            id: AsId(5),
            tier: Tier::Access,
            region: Region::Asia,
            v4_prefix: v4,
            v6: None,
        };
        assert!(!node.is_dual_stack());
        assert_eq!(node.v6_host(1), None);
    }

    #[test]
    fn region_delay_symmetric() {
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(a.base_delay_ms(b), b.base_delay_ms(a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn same_region_is_fastest() {
        for a in Region::ALL {
            for b in Region::ALL {
                if a != b {
                    assert!(a.base_delay_ms(a) < a.base_delay_ms(b));
                }
            }
        }
    }
}
