//! Physical properties of inter-AS links.

use serde::{Deserialize, Serialize};

/// Data-plane properties of one inter-AS link, consumed by the netsim crate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProps {
    /// One-way propagation + processing delay in milliseconds.
    pub delay_ms: f64,
    /// Bottleneck capacity available to a single monitored flow, in
    /// kilobytes per second (the paper reports download speeds in kB/s).
    pub bandwidth_kbps: f64,
    /// Stationary packet loss probability on the link.
    pub loss: f64,
}

impl LinkProps {
    /// Creates validated link properties.
    ///
    /// # Panics
    /// Panics on non-positive delay/bandwidth or loss outside `[0, 1)` —
    /// generator bugs should fail loudly.
    pub fn new(delay_ms: f64, bandwidth_kbps: f64, loss: f64) -> Self {
        assert!(delay_ms > 0.0, "delay must be positive");
        assert!(bandwidth_kbps > 0.0, "bandwidth must be positive");
        assert!((0.0..1.0).contains(&loss), "loss must be in [0,1)");
        LinkProps { delay_ms, bandwidth_kbps, loss }
    }

    /// A link that is this link with `extra_ms` added delay (tunnel detours).
    pub fn with_extra_delay(self, extra_ms: f64) -> Self {
        LinkProps { delay_ms: self.delay_ms + extra_ms, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_construction() {
        let l = LinkProps::new(10.0, 5000.0, 0.001);
        assert_eq!(l.delay_ms, 10.0);
        assert_eq!(l.bandwidth_kbps, 5000.0);
        assert_eq!(l.loss, 0.001);
    }

    #[test]
    #[should_panic(expected = "delay")]
    fn zero_delay_panics() {
        LinkProps::new(0.0, 100.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        LinkProps::new(1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "loss")]
    fn full_loss_panics() {
        LinkProps::new(1.0, 1.0, 1.0);
    }

    #[test]
    fn extra_delay_only_touches_delay() {
        let l = LinkProps::new(10.0, 500.0, 0.01).with_extra_delay(25.0);
        assert_eq!(l.delay_ms, 35.0);
        assert_eq!(l.bandwidth_kbps, 500.0);
        assert_eq!(l.loss, 0.01);
    }
}
