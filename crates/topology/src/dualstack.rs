//! Dual-stack overlay configuration.
//!
//! These knobs encode the study's causal structure:
//!
//! * `peering_parity` — the probability that an IPv4 *peering* edge is also
//!   present in IPv6. The paper's conclusion is that raising this toward 1.0
//!   ("peering parity") is the single most effective step toward equal IPv6
//!   and IPv4 performance; the ablation benches sweep it.
//! * `forwarding_penalty_prob` / `forwarding_factor_range` — pockets of poor
//!   IPv6 *data-plane* forwarding. Hypothesis H1 says these are now rare;
//!   the default keeps them near zero, and an ablation turns them up to show
//!   what a failing H1 would have looked like.
//! * `tunnel_prob`-related settings — 6in4 tunnels that stitch stranded IPv6
//!   islands to the core, hiding hops and adding delay (Table 7).

use serde::{Deserialize, Serialize};

/// IPv6 deployment knobs for topology generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DualStackConfig {
    /// Probability a tier-1 AS has deployed IPv6.
    pub tier1_adoption: f64,
    /// Probability a transit AS has deployed IPv6.
    pub transit_adoption: f64,
    /// Probability an access AS has deployed IPv6.
    pub access_adoption: f64,
    /// Probability a content-hosting AS has deployed IPv6.
    pub content_adoption: f64,
    /// Probability a CDN AS offers production IPv6 (the paper observed most
    /// did not, which is what creates the DL category).
    pub cdn_adoption: f64,
    /// Probability a customer-provider IPv4 edge is replicated in IPv6 when
    /// both endpoints are dual-stack.
    pub provider_parity: f64,
    /// Probability a peer-peer IPv4 edge is replicated in IPv6 when both
    /// endpoints are dual-stack. **The paper's headline knob.**
    pub peering_parity: f64,
    /// Probability a dual-stack AS left stranded by missing v6 edges reaches
    /// the core through a 6in4 tunnel instead of being reconnected natively.
    pub tunnel_prob: f64,
    /// Probability a dual-stack AS has a degraded IPv6 forwarding plane.
    pub forwarding_penalty_prob: f64,
    /// Range of the forwarding factor for degraded ASes (fraction of IPv4
    /// throughput achievable over IPv6 through that AS).
    pub forwarding_factor_range: (f64, f64),
}

impl DualStackConfig {
    /// Deployment state calibrated to mid-2011 (the paper's measurement
    /// window): minority adoption everywhere, sparse IPv6 peering, CDNs
    /// effectively IPv4-only, near-parity forwarding (H1 holds).
    pub fn year2011() -> Self {
        DualStackConfig {
            tier1_adoption: 0.9,
            transit_adoption: 0.5,
            access_adoption: 0.35,
            content_adoption: 0.4,
            cdn_adoption: 0.1,
            provider_parity: 0.85,
            peering_parity: 0.25,
            tunnel_prob: 0.6,
            forwarding_penalty_prob: 0.04,
            forwarding_factor_range: (0.55, 0.9),
        }
    }

    /// A hypothetical full-parity deployment: every AS dual-stack, every
    /// edge replicated, no tunnels, no forwarding penalty. The ablation
    /// benches compare against this.
    pub fn full_parity() -> Self {
        DualStackConfig {
            tier1_adoption: 1.0,
            transit_adoption: 1.0,
            access_adoption: 1.0,
            content_adoption: 1.0,
            cdn_adoption: 1.0,
            provider_parity: 1.0,
            peering_parity: 1.0,
            tunnel_prob: 0.0,
            forwarding_penalty_prob: 0.0,
            forwarding_factor_range: (1.0, 1.0),
        }
    }

    /// Returns a copy with a different peering parity (ablation sweeps).
    pub fn with_peering_parity(mut self, p: f64) -> Self {
        self.peering_parity = p.clamp(0.0, 1.0);
        self
    }

    /// Interpolates this deployment state toward [`DualStackConfig::full_parity`]:
    /// `lambda = 0` returns `self` unchanged, `lambda = 1` the fully deployed
    /// Internet. This is the paper's "path to parity" in one parameter —
    /// adoption, transit replication, peering replication, and tunnel
    /// retirement all advance together, because peering parity only pays
    /// off where both sides have deployed IPv6 at all.
    pub fn toward_parity(self, lambda: f64) -> Self {
        let l = lambda.clamp(0.0, 1.0);
        let lerp = |a: f64, b: f64| a + (b - a) * l;
        let full = Self::full_parity();
        DualStackConfig {
            tier1_adoption: lerp(self.tier1_adoption, full.tier1_adoption),
            transit_adoption: lerp(self.transit_adoption, full.transit_adoption),
            access_adoption: lerp(self.access_adoption, full.access_adoption),
            content_adoption: lerp(self.content_adoption, full.content_adoption),
            cdn_adoption: lerp(self.cdn_adoption, full.cdn_adoption),
            provider_parity: lerp(self.provider_parity, full.provider_parity),
            peering_parity: lerp(self.peering_parity, full.peering_parity),
            tunnel_prob: lerp(self.tunnel_prob, full.tunnel_prob),
            forwarding_penalty_prob: lerp(
                self.forwarding_penalty_prob,
                full.forwarding_penalty_prob,
            ),
            forwarding_factor_range: (
                lerp(self.forwarding_factor_range.0, full.forwarding_factor_range.0),
                lerp(self.forwarding_factor_range.1, full.forwarding_factor_range.1),
            ),
        }
    }

    /// Returns a copy with a different forwarding-penalty probability
    /// (the "H1 fails" counterfactual).
    pub fn with_forwarding_penalty(mut self, prob: f64, range: (f64, f64)) -> Self {
        self.forwarding_penalty_prob = prob.clamp(0.0, 1.0);
        self.forwarding_factor_range = range;
        self
    }

    /// Validates ranges; generator entry points call this.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("tier1_adoption", self.tier1_adoption),
            ("transit_adoption", self.transit_adoption),
            ("access_adoption", self.access_adoption),
            ("content_adoption", self.content_adoption),
            ("cdn_adoption", self.cdn_adoption),
            ("provider_parity", self.provider_parity),
            ("peering_parity", self.peering_parity),
            ("tunnel_prob", self.tunnel_prob),
            ("forwarding_penalty_prob", self.forwarding_penalty_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} outside [0,1]"));
            }
        }
        let (lo, hi) = self.forwarding_factor_range;
        if !(0.0 < lo && lo <= hi && hi <= 1.0) {
            return Err(format!("forwarding_factor_range ({lo}, {hi}) invalid"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(DualStackConfig::year2011().validate().is_ok());
        assert!(DualStackConfig::full_parity().validate().is_ok());
    }

    #[test]
    fn year2011_is_sparse_v6() {
        let c = DualStackConfig::year2011();
        assert!(c.peering_parity < c.provider_parity, "peering lags transit in v6");
        assert!(c.cdn_adoption < 0.3, "CDNs mostly v4-only in 2011");
        assert!(c.forwarding_penalty_prob < 0.1, "H1 regime: rare penalties");
    }

    #[test]
    fn with_peering_parity_clamps() {
        let c = DualStackConfig::year2011().with_peering_parity(1.7);
        assert_eq!(c.peering_parity, 1.0);
        let c = c.with_peering_parity(-0.2);
        assert_eq!(c.peering_parity, 0.0);
    }

    #[test]
    fn invalid_prob_rejected() {
        let mut c = DualStackConfig::year2011();
        c.transit_adoption = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_factor_range_rejected() {
        let mut c = DualStackConfig::year2011();
        c.forwarding_factor_range = (0.9, 0.5);
        assert!(c.validate().is_err());
        c.forwarding_factor_range = (0.0, 0.5);
        assert!(c.validate().is_err());
        c.forwarding_factor_range = (0.5, 1.2);
        assert!(c.validate().is_err());
    }

    #[test]
    fn toward_parity_interpolates_endpoints() {
        let base = DualStackConfig::year2011();
        assert_eq!(base.toward_parity(0.0), base);
        assert_eq!(base.toward_parity(1.0), DualStackConfig::full_parity());
        let mid = base.toward_parity(0.5);
        assert!(mid.peering_parity > base.peering_parity);
        assert!(mid.peering_parity < 1.0);
        assert!(mid.validate().is_ok());
        // clamped outside [0,1]
        assert_eq!(base.toward_parity(7.0), DualStackConfig::full_parity());
    }

    #[test]
    fn full_parity_means_no_gaps() {
        let c = DualStackConfig::full_parity();
        assert_eq!(c.peering_parity, 1.0);
        assert_eq!(c.tunnel_prob, 0.0);
        assert_eq!(c.forwarding_penalty_prob, 0.0);
    }
}
