//! The dual-stack AS graph container.

use crate::asys::{AsId, AsNode, IdOverflow};
use crate::link::LinkProps;
use crate::relationship::Relationship;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Address family of a path, route, or measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// IPv4.
    V4,
    /// IPv6.
    V6,
}

impl Family {
    /// Both families, for iteration.
    pub const BOTH: [Family; 2] = [Family::V4, Family::V6];
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Family::V4 => write!(f, "IPv4"),
            Family::V6 => write!(f, "IPv6"),
        }
    }
}

/// Dense edge identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Dense index for vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Checked conversion from a dense index; errors instead of silently
    /// truncating when a generated world outgrows the `u32` id space.
    pub fn from_index(i: usize) -> Result<Self, IdOverflow> {
        u32::try_from(i).map(EdgeId).map_err(|_| IdOverflow::new("EdgeId", i))
    }
}

/// Metadata of a v6-only tunnel edge (6in4 across v4-only transit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunnelInfo {
    /// Number of underlying IPv4 AS hops the tunnel collapses into one
    /// apparent hop. Table 7's short-IPv6-path anomaly comes from here.
    pub hidden_hops: u8,
    /// Extra one-way delay of the detour through the tunnel, milliseconds.
    pub extra_delay_ms: f64,
}

/// One inter-AS adjacency. An edge may exist in IPv4, IPv6 or both;
/// v6-only edges with `tunnel` set model 6in4 tunnels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Identity.
    pub id: EdgeId,
    /// First endpoint.
    pub a: AsId,
    /// Second endpoint.
    pub b: AsId,
    /// Relationship from `a`'s perspective.
    pub rel_a: Relationship,
    /// Physical link properties.
    pub props: LinkProps,
    /// Present in the IPv4 topology.
    pub v4: bool,
    /// Present in the IPv6 topology.
    pub v6: bool,
    /// Tunnel metadata for v6-only tunnel edges.
    pub tunnel: Option<TunnelInfo>,
}

impl Edge {
    /// Whether the edge exists in `family`.
    pub fn in_family(&self, family: Family) -> bool {
        match family {
            Family::V4 => self.v4,
            Family::V6 => self.v6,
        }
    }

    /// The endpoint opposite to `from`, with the relationship as seen from
    /// `from`. Returns `None` if `from` is not an endpoint.
    pub fn other(&self, from: AsId) -> Option<(AsId, Relationship)> {
        if from == self.a {
            Some((self.b, self.rel_a))
        } else if from == self.b {
            Some((self.a, self.rel_a.reverse()))
        } else {
            None
        }
    }

    /// Effective one-way delay including any tunnel detour.
    pub fn effective_delay_ms(&self) -> f64 {
        self.props.delay_ms + self.tunnel.map_or(0.0, |t| t.extra_delay_ms)
    }
}

/// The dual-stack AS-level topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<AsNode>,
    edges: Vec<Edge>,
    adj_v4: Vec<Vec<(AsId, Relationship, EdgeId)>>,
    adj_v6: Vec<Vec<(AsId, Relationship, EdgeId)>>,
}

impl Topology {
    /// Creates a topology over the given nodes with no edges yet.
    ///
    /// # Panics
    /// Panics if node ids are not the dense sequence `0..n`.
    pub fn new(nodes: Vec<AsNode>) -> Self {
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id.index(), i, "node ids must be dense 0..n");
        }
        let n = nodes.len();
        Topology {
            nodes,
            edges: Vec::new(),
            adj_v4: vec![Vec::new(); n],
            adj_v6: vec![Vec::new(); n],
        }
    }

    /// Adds an edge and indexes it into the per-family adjacency.
    ///
    /// Returns the edge id. Panics on self-loops, unknown endpoints,
    /// family-less edges, or a v6 edge between non-dual-stack endpoints.
    #[allow(clippy::too_many_arguments)] // mirrors the edge record field-for-field
    pub fn add_edge(
        &mut self,
        a: AsId,
        b: AsId,
        rel_a: Relationship,
        props: LinkProps,
        v4: bool,
        v6: bool,
        tunnel: Option<TunnelInfo>,
    ) -> EdgeId {
        assert_ne!(a, b, "self-loop");
        assert!(a.index() < self.nodes.len() && b.index() < self.nodes.len());
        assert!(v4 || v6, "edge must exist in at least one family");
        if v6 {
            assert!(
                self.nodes[a.index()].is_dual_stack() && self.nodes[b.index()].is_dual_stack(),
                "v6 edge requires dual-stack endpoints"
            );
        }
        if tunnel.is_some() {
            assert!(v6 && !v4, "tunnel edges are v6-only");
        }
        let id = EdgeId::from_index(self.edges.len()).expect("edge id space overflow");
        let edge = Edge { id, a, b, rel_a, props, v4, v6, tunnel };
        if v4 {
            self.adj_v4[a.index()].push((b, rel_a, id));
            self.adj_v4[b.index()].push((a, rel_a.reverse(), id));
        }
        if v6 {
            self.adj_v6[a.index()].push((b, rel_a, id));
            self.adj_v6[b.index()].push((a, rel_a.reverse(), id));
        }
        self.edges.push(edge);
        id
    }

    /// Number of ASes.
    pub fn num_ases(&self) -> usize {
        self.nodes.len()
    }

    /// All ASes.
    pub fn nodes(&self) -> &[AsNode] {
        &self.nodes
    }

    /// One AS by id.
    pub fn node(&self, id: AsId) -> &AsNode {
        &self.nodes[id.index()]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// One edge by id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Neighbors of `id` in `family` as `(neighbor, relationship-from-id, edge)`.
    pub fn neighbors(&self, id: AsId, family: Family) -> &[(AsId, Relationship, EdgeId)] {
        match family {
            Family::V4 => &self.adj_v4[id.index()],
            Family::V6 => &self.adj_v6[id.index()],
        }
    }

    /// Number of edges present in `family`.
    pub fn edge_count(&self, family: Family) -> usize {
        self.edges.iter().filter(|e| e.in_family(family)).count()
    }

    /// Number of dual-stack ASes.
    pub fn dual_stack_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_dual_stack()).count()
    }

    /// Returns a copy of the topology with the IPv6 presence of the given
    /// edges flipped: `gains` start carrying IPv6 (must have dual-stack
    /// endpoints), `losses` stop. Used to model mid-campaign IPv6
    /// deployment and withdrawals — the route changes behind some of the
    /// paper's Table 3 transitions.
    ///
    /// # Panics
    /// Panics if a gain's endpoints are not dual-stack, or if a flip would
    /// leave an edge in no family at all.
    pub fn with_v6_flips(&self, gains: &[EdgeId], losses: &[EdgeId]) -> Topology {
        let gains: HashSet<EdgeId> = gains.iter().copied().collect();
        let losses: HashSet<EdgeId> = losses.iter().copied().collect();
        let mut t = Topology::new(self.nodes.clone());
        for e in &self.edges {
            let mut v6 = e.v6;
            if gains.contains(&e.id) {
                v6 = true;
            }
            // tunnel edges are v6-only: withdrawing them would leave the
            // edge in no family, so losses skip them
            if losses.contains(&e.id) && e.tunnel.is_none() {
                v6 = false;
            }
            t.add_edge(e.a, e.b, e.rel_a, e.props, e.v4, v6, e.tunnel);
        }
        t
    }

    /// Finds the edge between `a` and `b` in `family`, if any.
    pub fn edge_between(&self, a: AsId, b: AsId, family: Family) -> Option<EdgeId> {
        self.neighbors(a, family).iter().find(|(n, _, _)| *n == b).map(|(_, _, e)| *e)
    }

    /// Whether the `family` subgraph restricted to dual-stack nodes (for v6)
    /// or all nodes (for v4) is connected. Used by generator tests.
    pub fn is_connected(&self, family: Family) -> bool {
        let eligible: Vec<usize> = match family {
            Family::V4 => (0..self.nodes.len()).collect(),
            Family::V6 => {
                self.nodes.iter().filter(|n| n.is_dual_stack()).map(|n| n.id.index()).collect()
            }
        };
        let Some(&start) = eligible.first() else {
            return true;
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start] = true;
        let mut count = 0usize;
        while let Some(u) = stack.pop() {
            count += 1;
            for &(v, _, _) in self.neighbors(AsId(u as u32), family) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v.index());
                }
            }
        }
        count == eligible.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asys::{Region, Tier, V6Profile};

    fn mk_nodes(n: u32, dual: &[u32]) -> Vec<AsNode> {
        (0..n)
            .map(|i| {
                let (v4, v6) = AsNode::address_plan(AsId(i));
                AsNode {
                    id: AsId(i),
                    tier: Tier::Transit,
                    region: Region::Europe,
                    v4_prefix: v4,
                    v6: dual
                        .contains(&i)
                        .then_some(V6Profile { prefix: v6, forwarding_factor: 1.0 }),
                }
            })
            .collect()
    }

    fn props() -> LinkProps {
        LinkProps::new(10.0, 1000.0, 0.0)
    }

    #[test]
    fn add_edge_populates_both_directions() {
        let mut t = Topology::new(mk_nodes(3, &[0, 1, 2]));
        let e = t.add_edge(AsId(0), AsId(1), Relationship::ProviderOf, props(), true, true, None);
        assert_eq!(t.neighbors(AsId(0), Family::V4), &[(AsId(1), Relationship::ProviderOf, e)]);
        assert_eq!(t.neighbors(AsId(1), Family::V4), &[(AsId(0), Relationship::CustomerOf, e)]);
        assert_eq!(t.neighbors(AsId(0), Family::V6).len(), 1);
        assert_eq!(t.edge_count(Family::V4), 1);
        assert_eq!(t.edge_count(Family::V6), 1);
    }

    #[test]
    fn v4_only_edge_absent_from_v6_adjacency() {
        let mut t = Topology::new(mk_nodes(2, &[0, 1]));
        t.add_edge(AsId(0), AsId(1), Relationship::Peer, props(), true, false, None);
        assert_eq!(t.neighbors(AsId(0), Family::V6).len(), 0);
        assert_eq!(t.edge_count(Family::V6), 0);
    }

    #[test]
    #[should_panic(expected = "dual-stack")]
    fn v6_edge_to_single_stack_panics() {
        let mut t = Topology::new(mk_nodes(2, &[0]));
        t.add_edge(AsId(0), AsId(1), Relationship::Peer, props(), false, true, None);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut t = Topology::new(mk_nodes(1, &[]));
        t.add_edge(AsId(0), AsId(0), Relationship::Peer, props(), true, false, None);
    }

    #[test]
    #[should_panic(expected = "at least one family")]
    fn familyless_edge_panics() {
        let mut t = Topology::new(mk_nodes(2, &[]));
        t.add_edge(AsId(0), AsId(1), Relationship::Peer, props(), false, false, None);
    }

    #[test]
    #[should_panic(expected = "v6-only")]
    fn v4_tunnel_panics() {
        let mut t = Topology::new(mk_nodes(2, &[0, 1]));
        t.add_edge(
            AsId(0),
            AsId(1),
            Relationship::Peer,
            props(),
            true,
            true,
            Some(TunnelInfo { hidden_hops: 2, extra_delay_ms: 20.0 }),
        );
    }

    #[test]
    fn tunnel_edge_effective_delay() {
        let mut t = Topology::new(mk_nodes(2, &[0, 1]));
        let e = t.add_edge(
            AsId(0),
            AsId(1),
            Relationship::CustomerOf,
            props(),
            false,
            true,
            Some(TunnelInfo { hidden_hops: 3, extra_delay_ms: 15.0 }),
        );
        assert_eq!(t.edge(e).effective_delay_ms(), 25.0);
        assert_eq!(t.edge(e).tunnel.unwrap().hidden_hops, 3);
    }

    #[test]
    fn edge_other_endpoint() {
        let mut t = Topology::new(mk_nodes(3, &[]));
        let e = t.add_edge(AsId(0), AsId(2), Relationship::ProviderOf, props(), true, false, None);
        let edge = t.edge(e);
        assert_eq!(edge.other(AsId(0)), Some((AsId(2), Relationship::ProviderOf)));
        assert_eq!(edge.other(AsId(2)), Some((AsId(0), Relationship::CustomerOf)));
        assert_eq!(edge.other(AsId(1)), None);
    }

    #[test]
    fn edge_between_lookup() {
        let mut t = Topology::new(mk_nodes(3, &[0, 1]));
        let e = t.add_edge(AsId(0), AsId(1), Relationship::Peer, props(), true, true, None);
        assert_eq!(t.edge_between(AsId(0), AsId(1), Family::V4), Some(e));
        assert_eq!(t.edge_between(AsId(1), AsId(0), Family::V6), Some(e));
        assert_eq!(t.edge_between(AsId(0), AsId(2), Family::V4), None);
    }

    #[test]
    fn connectivity_check() {
        let mut t = Topology::new(mk_nodes(4, &[0, 1]));
        t.add_edge(AsId(0), AsId(1), Relationship::Peer, props(), true, true, None);
        t.add_edge(AsId(1), AsId(2), Relationship::ProviderOf, props(), true, false, None);
        // v4: node 3 isolated
        assert!(!t.is_connected(Family::V4));
        t.add_edge(AsId(2), AsId(3), Relationship::ProviderOf, props(), true, false, None);
        assert!(t.is_connected(Family::V4));
        // v6 subgraph = {0,1} which is connected
        assert!(t.is_connected(Family::V6));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_panic() {
        let mut nodes = mk_nodes(2, &[]);
        nodes[1].id = AsId(5);
        Topology::new(nodes);
    }

    #[test]
    fn v6_flips_produce_modified_copy() {
        let mut t = Topology::new(mk_nodes(4, &[0, 1, 2, 3]));
        let e_keep = t.add_edge(AsId(0), AsId(1), Relationship::Peer, props(), true, true, None);
        let e_gain =
            t.add_edge(AsId(1), AsId(2), Relationship::ProviderOf, props(), true, false, None);
        let e_lose =
            t.add_edge(AsId(2), AsId(3), Relationship::ProviderOf, props(), true, true, None);
        let t2 = t.with_v6_flips(&[e_gain], &[e_lose]);
        assert!(t2.edge(e_keep).v6);
        assert!(t2.edge(e_gain).v6, "gained edge carries v6");
        assert!(!t2.edge(e_lose).v6, "lost edge dropped v6");
        // original untouched
        assert!(!t.edge(e_gain).v6);
        assert!(t.edge(e_lose).v6);
        // adjacency rebuilt consistently
        assert_eq!(t2.edge_between(AsId(1), AsId(2), Family::V6), Some(e_gain));
        assert_eq!(t2.edge_between(AsId(2), AsId(3), Family::V6), None);
    }

    #[test]
    fn v6_flips_skip_tunnel_losses() {
        let mut t = Topology::new(mk_nodes(2, &[0, 1]));
        let tun = t.add_edge(
            AsId(0),
            AsId(1),
            Relationship::CustomerOf,
            props(),
            false,
            true,
            Some(TunnelInfo { hidden_hops: 2, extra_delay_ms: 30.0 }),
        );
        let t2 = t.with_v6_flips(&[], &[tun]);
        assert!(t2.edge(tun).v6, "tunnel edges cannot lose their only family");
    }

    #[test]
    fn family_display() {
        assert_eq!(Family::V4.to_string(), "IPv4");
        assert_eq!(Family::V6.to_string(), "IPv6");
    }
}
