//! NAT64/DNS64/464XLAT transition-technology substrate.
//!
//! The paper's world is dual-stack circa 2011: clients hold both an IPv4
//! and an IPv6 address and race them. The modern access story is v6-only
//! eyeballs reaching v4-only content through translators. This crate
//! provides the pieces the rest of the pipeline composes:
//!
//! * [`ClientStack`] — the per-vantage axis: classic dual-stack, v6-only
//!   (NAT64/DNS64), or v6-only with a CLAT (464XLAT).
//! * RFC 6052 well-known-prefix helpers ([`synthesize`], [`extract`],
//!   [`is_synthesized`]) — the address algebra DNS64 and the gateway's
//!   v6→v4 rewrite share.
//! * [`place_gateways`] — seeded NAT64 gateway placement in provider
//!   (Tier-1/Transit) ASes, same `derive_rng` discipline as faults.
//! * [`GatewayCost`] / [`gateway_costs`] — the per-gateway stateful
//!   translation cost model (session setup, per-exchange rewrite latency,
//!   capacity cap, translation loss), seeded per gateway.
//! * [`XlatWiring`] — the built artifact the world hands to probes: the
//!   gateway list, each gateway's cost draw, and each gateway's IPv4
//!   routing table toward the site population.
//!
//! Everything here is a pure function of `(seed, config)`; a scenario with
//! zero gateways builds no wiring and leaves every downstream byte
//! untouched.

use ipv6web_bgp::BgpTable;
use ipv6web_stats::derive_rng;
use ipv6web_topology::{AsId, Tier, Topology};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// What address families a vantage point's host stack actually holds.
///
/// Serialized as a kebab-case string; a missing field deserializes as
/// [`ClientStack::DualStack`], so every pre-xlat vantage snapshot and
/// scenario file keeps meaning exactly what it meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClientStack {
    /// Classic dual-stack host: native IPv4 and IPv6, happy-eyeballs races.
    #[default]
    DualStack,
    /// IPv6-only host behind NAT64/DNS64: v4-only destinations are reached
    /// through a translator, never natively.
    V6Only,
    /// IPv6-only host with a CLAT (464XLAT): like [`ClientStack::V6Only`]
    /// plus a host-side v4→v6 translation stage for literal-v4 traffic.
    V6OnlyClat,
}

impl ClientStack {
    /// Wire/scenario name.
    pub fn name(self) -> &'static str {
        match self {
            ClientStack::DualStack => "dual-stack",
            ClientStack::V6Only => "v6-only",
            ClientStack::V6OnlyClat => "v6-only-clat",
        }
    }

    /// Inverse of [`ClientStack::name`].
    pub fn parse(s: &str) -> Option<ClientStack> {
        match s {
            "dual-stack" => Some(ClientStack::DualStack),
            "v6-only" => Some(ClientStack::V6Only),
            "v6-only-clat" => Some(ClientStack::V6OnlyClat),
            _ => None,
        }
    }

    /// Whether this stack's resolver runs in DNS64 mode and its "IPv4"
    /// exchanges ride a NAT64 translator.
    pub fn translates_v4(self) -> bool {
        !matches!(self, ClientStack::DualStack)
    }

    /// Whether a host-side CLAT adds its own per-exchange translation cost.
    pub fn has_clat(self) -> bool {
        matches!(self, ClientStack::V6OnlyClat)
    }
}

impl fmt::Display for ClientStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for ClientStack {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for ClientStack {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => ClientStack::parse(s)
                .ok_or_else(|| DeError::new(format!("unknown client stack `{s}`"))),
            other => Err(DeError::new(format!("client stack must be a string, got {other:?}"))),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, DeError> {
        Ok(ClientStack::DualStack)
    }
}

// ---- RFC 6052 well-known prefix -------------------------------------------

/// The DNS64/NAT64 well-known prefix `64:ff9b::/96` (RFC 6052 §2.1).
pub const WELL_KNOWN_PREFIX: [u16; 2] = [0x0064, 0xff9b];

/// Embeds an IPv4 address in the well-known prefix: `64:ff9b::a.b.c.d`.
pub fn synthesize(v4: Ipv4Addr) -> Ipv6Addr {
    let o = v4.octets();
    Ipv6Addr::new(
        WELL_KNOWN_PREFIX[0],
        WELL_KNOWN_PREFIX[1],
        0,
        0,
        0,
        0,
        u16::from_be_bytes([o[0], o[1]]),
        u16::from_be_bytes([o[2], o[3]]),
    )
}

/// Recovers the IPv4 address from a well-known-prefix synthesis, or `None`
/// for a native IPv6 address — the gateway's v6→v4 header rewrite.
pub fn extract(v6: Ipv6Addr) -> Option<Ipv4Addr> {
    if !is_synthesized(v6) {
        return None;
    }
    let s = v6.segments();
    let [a, b] = s[6].to_be_bytes();
    let [c, d] = s[7].to_be_bytes();
    Some(Ipv4Addr::new(a, b, c, d))
}

/// Whether an address sits inside `64:ff9b::/96` (suffix bits are the
/// embedded IPv4 address, so only segments 0–5 are the prefix test).
pub fn is_synthesized(v6: Ipv6Addr) -> bool {
    let s = v6.segments();
    s[0] == WELL_KNOWN_PREFIX[0]
        && s[1] == WELL_KNOWN_PREFIX[1]
        && s[2] == 0
        && s[3] == 0
        && s[4] == 0
        && s[5] == 0
}

// ---- configuration ---------------------------------------------------------

/// Scenario-level translation-plane configuration.
///
/// The default is the pre-xlat world: zero gateways, every vantage
/// dual-stack — a scenario file without this block behaves exactly as it
/// did before the field existed (every field has a missing-field default).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct XlatConfig {
    /// NAT64 gateways to place in provider ASes. Zero disables the whole
    /// translation plane.
    pub gateways: usize,
    /// Median translator session-setup latency added to a translated
    /// exchange's first round trip, ms (stateful NAT64 binding creation).
    pub setup_ms: f64,
    /// Median per-exchange header-rewrite latency at the gateway, ms
    /// (applied to both directions of a round trip).
    pub per_exchange_ms: f64,
    /// Median per-gateway translation capacity, kB/s: an extra bottleneck
    /// on every translated path through that gateway.
    pub capacity_kbps: f64,
    /// Median extra packet loss introduced by stateful translation.
    pub extra_loss: f64,
    /// Host-side CLAT per-exchange latency for 464XLAT clients, ms.
    pub clat_ms: f64,
    /// Per-vantage client-stack assignment, by vantage name. Vantages not
    /// listed stay dual-stack.
    pub stacks: Vec<(String, ClientStack)>,
}

impl Default for XlatConfig {
    fn default() -> Self {
        XlatConfig {
            gateways: 0,
            setup_ms: 14.0,
            per_exchange_ms: 1.2,
            capacity_kbps: 45_000.0,
            extra_loss: 2e-4,
            clat_ms: 0.4,
            stacks: Vec::new(),
        }
    }
}

impl Deserialize for XlatConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let d = XlatConfig::default();
        let field = |name: &str, def: f64| -> Result<f64, DeError> {
            match v.get_field(name) {
                Some(x) => f64::from_value(x),
                None => Ok(def),
            }
        };
        Ok(XlatConfig {
            gateways: match v.get_field("gateways") {
                Some(x) => usize::from_value(x)?,
                None => d.gateways,
            },
            setup_ms: field("setup_ms", d.setup_ms)?,
            per_exchange_ms: field("per_exchange_ms", d.per_exchange_ms)?,
            capacity_kbps: field("capacity_kbps", d.capacity_kbps)?,
            extra_loss: field("extra_loss", d.extra_loss)?,
            clat_ms: field("clat_ms", d.clat_ms)?,
            stacks: match v.get_field("stacks") {
                Some(x) => Deserialize::from_value(x)?,
                None => d.stacks,
            },
        })
    }

    fn missing_field(_name: &str) -> Result<Self, DeError> {
        Ok(XlatConfig::default())
    }
}

impl XlatConfig {
    /// Whether the translation plane is active at all.
    pub fn is_active(&self) -> bool {
        self.gateways > 0
    }

    /// The client stack assigned to `vantage` (dual-stack when unlisted).
    pub fn stack_of(&self, vantage: &str) -> ClientStack {
        self.stacks
            .iter()
            .find(|(name, _)| name == vantage)
            .map(|(_, s)| *s)
            .unwrap_or(ClientStack::DualStack)
    }

    /// Sanity checks, mirroring `FaultPlan::validate`'s error style.
    pub fn validate(&self) -> Result<(), String> {
        for (what, v) in [
            ("setup_ms", self.setup_ms),
            ("per_exchange_ms", self.per_exchange_ms),
            ("clat_ms", self.clat_ms),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("xlat: {what} must be finite and non-negative, got {v}"));
            }
        }
        if !self.capacity_kbps.is_finite() || self.capacity_kbps <= 0.0 {
            return Err(format!(
                "xlat: capacity_kbps must be finite and positive, got {}",
                self.capacity_kbps
            ));
        }
        if !self.extra_loss.is_finite() || !(0.0..=1.0).contains(&self.extra_loss) {
            return Err(format!("xlat: extra_loss must be in [0, 1], got {}", self.extra_loss));
        }
        if self.gateways == 0 {
            if let Some((name, stack)) =
                self.stacks.iter().find(|(_, s)| s.translates_v4()).cloned()
            {
                return Err(format!(
                    "xlat: vantage `{name}` is {stack} but no NAT64 gateway is configured"
                ));
            }
        }
        Ok(())
    }
}

// ---- gateway placement and cost model --------------------------------------

/// Seeded NAT64 gateway placement: dual-stack provider ASes (Tier-1 and
/// Transit — a translator needs native reach on both sides), shuffled on
/// the `xlat:place` stream and truncated to `n`, then sorted so gateway
/// index order is stable and readable. Requesting more gateways than
/// eligible ASes places one per eligible AS.
pub fn place_gateways(topo: &Topology, seed: u64, n: usize) -> Vec<AsId> {
    let mut candidates: Vec<AsId> = topo
        .nodes()
        .iter()
        .filter(|a| matches!(a.tier, Tier::Tier1 | Tier::Transit) && a.is_dual_stack())
        .map(|a| a.id)
        .collect();
    candidates.shuffle(&mut derive_rng(seed, "xlat:place"));
    candidates.truncate(n);
    candidates.sort();
    ipv6web_obs::add("xlat.gateways_placed", candidates.len() as u64);
    candidates
}

/// One gateway's drawn stateful-translation costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatewayCost {
    /// Session-setup latency for a translated exchange, ms.
    pub setup_ms: f64,
    /// Header-rewrite latency per direction, ms.
    pub per_exchange_ms: f64,
    /// Translation capacity cap, kB/s.
    pub capacity_kbps: f64,
    /// Extra loss across the translator.
    pub extra_loss: f64,
}

/// Draws each gateway's cost profile around the configured medians, one
/// independent `xlat:gw:{index}` stream per gateway — adding a gateway
/// never perturbs another's draw.
pub fn gateway_costs(cfg: &XlatConfig, seed: u64, n_gateways: usize) -> Vec<GatewayCost> {
    (0..n_gateways)
        .map(|i| {
            let mut rng = derive_rng(seed, &format!("xlat:gw:{i}"));
            let jitter = |rng: &mut ipv6web_stats::StudyRng| 0.75 + 0.5 * rng.gen::<f64>();
            GatewayCost {
                setup_ms: cfg.setup_ms * jitter(&mut rng),
                per_exchange_ms: cfg.per_exchange_ms * jitter(&mut rng),
                capacity_kbps: cfg.capacity_kbps * jitter(&mut rng),
                extra_loss: (cfg.extra_loss * (0.5 + rng.gen::<f64>())).clamp(0.0, 1.0),
            }
        })
        .collect()
}

/// The built translation plane a world hands to its probes: parallel
/// per-gateway vectors (AS, cost draw, IPv4 routing table toward the site
/// population).
#[derive(Debug)]
pub struct XlatWiring {
    /// Gateway ASes in index order (the order every preference list and
    /// fault label uses).
    pub gateways: Vec<AsId>,
    /// Per-gateway cost draws, parallel to `gateways`.
    pub costs: Vec<GatewayCost>,
    /// Per-gateway IPv4 tables toward the site population, parallel to
    /// `gateways` — the v4 leg of every translated path.
    pub tables: Vec<BgpTable>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_topology::{generate, TopologyConfig};
    use proptest::prelude::*;

    #[test]
    fn wkp_embed_extract_roundtrip() {
        for v4 in [
            Ipv4Addr::new(0, 0, 0, 0),
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(16, 4, 0, 1),
            Ipv4Addr::new(255, 255, 255, 255),
        ] {
            let v6 = synthesize(v4);
            assert!(is_synthesized(v6), "{v6} must sit in 64:ff9b::/96");
            assert_eq!(extract(v6), Some(v4));
        }
    }

    #[test]
    fn native_addresses_are_not_synthesized() {
        let native = Ipv6Addr::new(0x2400, 7, 0, 0, 0, 0, 0, 1);
        assert!(!is_synthesized(native));
        assert_eq!(extract(native), None);
        // a near-miss: right first segments, nonzero middle
        let near = Ipv6Addr::new(0x0064, 0xff9b, 0, 0, 1, 0, 0, 1);
        assert!(!is_synthesized(near));
    }

    proptest! {
        #[test]
        fn wkp_roundtrips_every_v4_form(bits in any::<u32>()) {
            let v4 = Ipv4Addr::from(bits);
            prop_assert_eq!(extract(synthesize(v4)), Some(v4));
        }
    }

    #[test]
    fn client_stack_serde_and_default() {
        for s in [ClientStack::DualStack, ClientStack::V6Only, ClientStack::V6OnlyClat] {
            assert_eq!(ClientStack::parse(s.name()), Some(s));
            let json = serde_json::to_string(&s).unwrap();
            assert_eq!(json, format!("\"{}\"", s.name()));
            assert_eq!(serde_json::from_str::<ClientStack>(&json).unwrap(), s);
        }
        assert_eq!(ClientStack::missing_field("stack").unwrap(), ClientStack::DualStack);
        assert!(serde_json::from_str::<ClientStack>("\"carrier-pigeon\"").is_err());
    }

    #[test]
    fn config_defaults_from_empty_json() {
        let cfg: XlatConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(cfg, XlatConfig::default());
        assert!(!cfg.is_active());
        assert_eq!(cfg.validate(), Ok(()));
        // roundtrip with a non-default block
        let mut active = XlatConfig::default();
        active.gateways = 3;
        active.stacks.push(("Go6-Slovenia".to_string(), ClientStack::V6Only));
        let json = serde_json::to_string(&active).unwrap();
        let back: XlatConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, active);
        assert_eq!(back.stack_of("Go6-Slovenia"), ClientStack::V6Only);
        assert_eq!(back.stack_of("Comcast"), ClientStack::DualStack);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut cfg = XlatConfig::default();
        cfg.extra_loss = 1.5;
        assert!(cfg.validate().is_err());
        let mut stackless = XlatConfig::default();
        stackless.stacks.push(("Go6-Slovenia".to_string(), ClientStack::V6Only));
        let err = stackless.validate().unwrap_err();
        assert!(err.contains("no NAT64 gateway"), "{err}");
        stackless.gateways = 1;
        assert_eq!(stackless.validate(), Ok(()));
    }

    #[test]
    fn placement_is_seeded_and_provider_only() {
        let topo = generate(&TopologyConfig::test_small(), 77);
        let a = place_gateways(&topo, 42, 3);
        let b = place_gateways(&topo, 42, 3);
        assert_eq!(a, b, "same seed, same placement");
        assert_eq!(a.len(), 3);
        for gw in &a {
            let node = topo.node(*gw);
            assert!(matches!(node.tier, Tier::Tier1 | Tier::Transit), "{gw} not a provider");
            assert!(node.is_dual_stack(), "{gw} must be dual-stack");
        }
        let other = place_gateways(&topo, 43, 3);
        assert_ne!(a, other, "different seed should move gateways");
        // over-asking caps at the eligible set
        let all = place_gateways(&topo, 42, 10_000);
        assert!(all.len() < topo.nodes().len());
        assert!(!all.is_empty());
    }

    #[test]
    fn costs_are_seeded_and_bounded() {
        let cfg = XlatConfig::default();
        let a = gateway_costs(&cfg, 7, 4);
        let b = gateway_costs(&cfg, 7, 4);
        assert_eq!(a, b);
        // extending the fleet never redraws existing gateways
        let more = gateway_costs(&cfg, 7, 6);
        assert_eq!(&more[..4], &a[..]);
        for c in &a {
            assert!(c.setup_ms >= cfg.setup_ms * 0.75 && c.setup_ms <= cfg.setup_ms * 1.25);
            assert!(c.capacity_kbps > 0.0);
            assert!((0.0..=1.0).contains(&c.extra_loss));
        }
    }
}
