//! From BGP routes to path metrics.

use ipv6web_bgp::RouteRef;
use ipv6web_topology::{Family, Topology};
use ipv6web_xlat::GatewayCost;
use serde::{Deserialize, Serialize};

/// Performance-relevant summary of one forwarding path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathMetrics {
    /// Round-trip time in milliseconds (twice the one-way sum, tunnel
    /// detours included).
    pub rtt_ms: f64,
    /// Bottleneck bandwidth available to the flow, kB/s, after applying the
    /// per-AS IPv6 forwarding factors.
    pub bottleneck_kbps: f64,
    /// End-to-end packet loss probability.
    pub loss: f64,
    /// Apparent AS hop count — what `AS_PATH` (or traceroute) shows. A
    /// tunneled edge counts as one hop.
    pub as_hops: usize,
    /// True underlying hop count: apparent hops plus hops hidden inside
    /// tunnels (Table 7's explanation for poor short-path IPv6 performance).
    pub true_hops: usize,
    /// Whether any edge of the path is a 6in4 tunnel.
    pub tunneled: bool,
    /// Product of the per-AS IPv6 forwarding factors crossed (1.0 in IPv4,
    /// and in IPv6 under H1).
    pub forwarding_factor: f64,
}

impl PathMetrics {
    /// Metrics of the degenerate path from an AS to itself (intra-AS
    /// access): a small constant latency, effectively unlimited bandwidth.
    pub fn local() -> Self {
        PathMetrics {
            rtt_ms: 4.0,
            bottleneck_kbps: 50_000.0,
            loss: 0.0001,
            as_hops: 0,
            true_hops: 0,
            tunneled: false,
            forwarding_factor: 1.0,
        }
    }

    /// These metrics with `extra` loss probability composed onto the path
    /// (independent loss processes: `1 - (1-loss)(1-extra)`). Used by fault
    /// injection to model loss bursts without recomputing the path.
    pub fn with_extra_loss(mut self, extra: f64) -> Self {
        let extra = extra.clamp(0.0, 1.0);
        self.loss = 1.0 - (1.0 - self.loss) * (1.0 - extra);
        self
    }
}

/// Composes a NAT64-translated path from its two native legs: the IPv6 leg
/// from the v6-only client to the gateway and the IPv4 leg from the gateway
/// to the destination, joined by the gateway's stateful-translation costs.
///
/// The translator adds its session-setup latency once per exchange, a
/// header-rewrite delay in each direction, a capacity cap on the bottleneck,
/// and its own loss process (independent of both legs). The gateway itself
/// appears as one extra hop in both the apparent and true hop counts; the
/// v6 leg's tunnels and forwarding factors carry through unchanged.
pub fn translated_metrics(
    v6_leg: &PathMetrics,
    v4_leg: &PathMetrics,
    cost: &GatewayCost,
) -> PathMetrics {
    PathMetrics {
        rtt_ms: v6_leg.rtt_ms + v4_leg.rtt_ms + cost.setup_ms + 2.0 * cost.per_exchange_ms,
        bottleneck_kbps: v6_leg.bottleneck_kbps.min(v4_leg.bottleneck_kbps).min(cost.capacity_kbps),
        loss: 1.0
            - (1.0 - v6_leg.loss) * (1.0 - v4_leg.loss) * (1.0 - cost.extra_loss.clamp(0.0, 1.0)),
        as_hops: v6_leg.as_hops + v4_leg.as_hops + 1,
        true_hops: v6_leg.true_hops + v4_leg.true_hops + 1,
        tunneled: v6_leg.tunneled || v4_leg.tunneled,
        forwarding_factor: v6_leg.forwarding_factor * v4_leg.forwarding_factor,
    }
}

/// The data plane: resolves routes against the topology.
#[derive(Debug, Clone, Copy)]
pub struct DataPlane<'a> {
    topo: &'a Topology,
}

impl<'a> DataPlane<'a> {
    /// Wraps a topology.
    pub fn new(topo: &'a Topology) -> Self {
        DataPlane { topo }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    /// Folds `route`'s edges into [`PathMetrics`] for `family`.
    ///
    /// IPv6 paths pay each crossed AS's `forwarding_factor` (applied to the
    /// bottleneck bandwidth) and each tunnel's extra delay and hidden hops;
    /// IPv4 paths see factors of exactly 1.0.
    pub fn metrics(&self, route: RouteRef<'_>, family: Family) -> PathMetrics {
        if route.edges.is_empty() {
            return PathMetrics::local();
        }
        let mut one_way_ms = 2.0; // vantage-side access latency
        let mut bottleneck = f64::INFINITY;
        let mut pass_prob = 1.0;
        let mut hidden = 0usize;
        let mut tunneled = false;
        for &eid in route.edges {
            let e = self.topo.edge(eid);
            one_way_ms += e.effective_delay_ms();
            bottleneck = bottleneck.min(e.props.bandwidth_kbps);
            pass_prob *= 1.0 - e.props.loss;
            if let Some(t) = e.tunnel {
                tunneled = true;
                hidden += t.hidden_hops as usize;
            }
        }
        let mut forwarding_factor = 1.0;
        if family == Family::V6 {
            for &asn in route.as_path.ases() {
                if let Some(p) = &self.topo.node(asn).v6 {
                    forwarding_factor *= p.forwarding_factor;
                }
            }
        }
        let as_hops = route.edges.len();
        PathMetrics {
            rtt_ms: 2.0 * one_way_ms,
            bottleneck_kbps: bottleneck * forwarding_factor,
            loss: 1.0 - pass_prob,
            as_hops,
            // a tunnel edge stands for (1 + hidden) real hops
            true_hops: as_hops + hidden,
            tunneled,
            forwarding_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_bgp::BgpTable;
    use ipv6web_topology::{generate, AsId, DualStackConfig, Tier, TopologyConfig};

    fn topo_with(seed: u64) -> ipv6web_topology::Topology {
        generate(&TopologyConfig::test_small(), seed)
    }

    fn any_table(t: &ipv6web_topology::Topology, family: Family) -> BgpTable {
        let vantage =
            t.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
        let dests: Vec<AsId> = t
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Content && n.is_dual_stack())
            .map(|n| n.id)
            .take(5)
            .collect();
        BgpTable::build(t, vantage, family, &dests)
    }

    #[test]
    fn local_path_metrics() {
        let m = PathMetrics::local();
        assert_eq!(m.as_hops, 0);
        assert!(!m.tunneled);
        assert!(m.rtt_ms < 10.0);
    }

    #[test]
    fn metrics_accumulate_over_edges() {
        let t = topo_with(3);
        let dp = DataPlane::new(&t);
        let table = any_table(&t, Family::V4);
        let route = table.iter().next().unwrap();
        let m = dp.metrics(route, Family::V4);
        assert_eq!(m.as_hops, route.edges.len());
        assert!(m.rtt_ms > 0.0);
        // RTT at least twice the sum of link delays
        let sum: f64 = route.edges.iter().map(|&e| t.edge(e).props.delay_ms).sum();
        assert!(m.rtt_ms >= 2.0 * sum);
        // bottleneck equals the min link bandwidth (v4: factor 1)
        let min_bw = route
            .edges
            .iter()
            .map(|&e| t.edge(e).props.bandwidth_kbps)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(m.bottleneck_kbps, min_bw);
        assert_eq!(m.forwarding_factor, 1.0);
        assert_eq!(m.true_hops, m.as_hops, "no tunnels in v4");
    }

    #[test]
    fn v4_never_tunneled() {
        let t = topo_with(5);
        let dp = DataPlane::new(&t);
        for seed_route in 0..3 {
            let _ = seed_route;
            let table = any_table(&t, Family::V4);
            let m = dp.metrics(table.iter().next().unwrap(), Family::V4);
            assert!(!m.tunneled);
        }
    }

    #[test]
    fn tunneled_v6_path_counts_hidden_hops() {
        // find a v6 route whose edges include a tunnel
        for seed in 0..20u64 {
            let t = topo_with(seed);
            let dp = DataPlane::new(&t);
            let vantage =
                t.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
            let dests: Vec<AsId> = t
                .nodes()
                .iter()
                .filter(|n| n.is_dual_stack() && n.tier == Tier::Content)
                .map(|n| n.id)
                .collect();
            let table = BgpTable::build(&t, vantage, Family::V6, &dests);
            for route in table.iter() {
                let m = dp.metrics(route, Family::V6);
                if m.tunneled {
                    assert!(m.true_hops > m.as_hops, "tunnel must hide hops");
                    return;
                }
                assert_eq!(m.true_hops, m.as_hops);
            }
        }
        panic!("no tunneled v6 route found across 20 seeds — tunnels too rare?");
    }

    #[test]
    fn forwarding_penalty_reduces_v6_bottleneck() {
        // Force heavy forwarding penalties and confirm v6 bottleneck shrinks.
        let mut cfg = TopologyConfig::test_small();
        cfg.dual = DualStackConfig::year2011().with_forwarding_penalty(1.0, (0.5, 0.5));
        let t = generate(&cfg, 7);
        let dp = DataPlane::new(&t);
        let table = any_table(&t, Family::V6);
        let route = table.iter().next().unwrap();
        let m = dp.metrics(route, Family::V6);
        assert!(m.forwarding_factor < 1.0);
        let min_bw = route
            .edges
            .iter()
            .map(|&e| t.edge(e).props.bandwidth_kbps)
            .fold(f64::INFINITY, f64::min);
        assert!(m.bottleneck_kbps < min_bw);
    }

    #[test]
    fn h1_regime_v6_factor_is_one_for_clean_paths() {
        let mut cfg = TopologyConfig::test_small();
        cfg.dual = DualStackConfig::year2011().with_forwarding_penalty(0.0, (0.9, 1.0));
        let t = generate(&cfg, 11);
        let dp = DataPlane::new(&t);
        let table = any_table(&t, Family::V6);
        let m = dp.metrics(table.iter().next().unwrap(), Family::V6);
        assert_eq!(m.forwarding_factor, 1.0, "H1: data-plane parity");
    }

    #[test]
    fn translated_path_composes_both_legs_and_the_gateway() {
        let v6 = PathMetrics {
            rtt_ms: 40.0,
            bottleneck_kbps: 800.0,
            loss: 0.01,
            as_hops: 3,
            true_hops: 5,
            tunneled: true,
            forwarding_factor: 0.9,
        };
        let v4 = PathMetrics {
            rtt_ms: 30.0,
            bottleneck_kbps: 1200.0,
            loss: 0.02,
            as_hops: 2,
            true_hops: 2,
            tunneled: false,
            forwarding_factor: 1.0,
        };
        let cost = GatewayCost {
            setup_ms: 10.0,
            per_exchange_ms: 1.5,
            capacity_kbps: 500.0,
            extra_loss: 0.001,
        };
        let m = translated_metrics(&v6, &v4, &cost);
        assert_eq!(m.rtt_ms, 40.0 + 30.0 + 10.0 + 3.0);
        assert_eq!(m.bottleneck_kbps, 500.0, "translator capacity caps the flow");
        let expected_loss = 1.0 - 0.99 * 0.98 * 0.999;
        assert!((m.loss - expected_loss).abs() < 1e-12);
        assert_eq!(m.as_hops, 6, "gateway is one apparent hop");
        assert_eq!(m.true_hops, 8);
        assert!(m.tunneled, "v6 leg's tunnel carries through");
        assert_eq!(m.forwarding_factor, 0.9);
        // a roomy translator leaves the native bottleneck in charge
        let roomy = GatewayCost { capacity_kbps: 1e9, ..cost };
        assert_eq!(translated_metrics(&v6, &v4, &roomy).bottleneck_kbps, 800.0);
    }

    #[test]
    fn loss_composes_monotonically() {
        let t = topo_with(9);
        let dp = DataPlane::new(&t);
        let table = any_table(&t, Family::V4);
        let route = table.iter().next().unwrap();
        let m = dp.metrics(route, Family::V4);
        let max_single = route.edges.iter().map(|&e| t.edge(e).props.loss).fold(0.0, f64::max);
        let sum: f64 = route.edges.iter().map(|&e| t.edge(e).props.loss).sum();
        assert!(m.loss >= max_single);
        assert!(m.loss <= sum + 1e-12);
    }
}
