//! Packet-faithful traceroute over a simulated route.
//!
//! Section 3 of the paper explains why it correlates performance with
//! BGP `AS_PATH`s instead of traceroute: *"our initial experiments using
//! traceroute to obtain path information were unsuccessful (did not
//! complete) over 50% of the time."* This module reproduces that reality:
//! probes are real IPv4/IPv6 packets whose hop limit is decremented per
//! simulated router, intermediate routers answer with genuine ICMP Time
//! Exceeded messages (built and parsed with `ipv6web-packet`), some hops
//! silently drop probes, and many destinations filter the final probe.

use ipv6web_bgp::RouteRef;
use ipv6web_packet::{
    Icmpv4Message, Icmpv6Message, Ipv4Header, Ipv6Header, UdpHeader, IPPROTO_UDP,
};
use ipv6web_stats::coin;
use ipv6web_topology::{AsId, Family, Topology};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Traceroute behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracerouteConfig {
    /// Probability an intermediate router silently drops probes (no ICMP).
    pub hop_silence_prob: f64,
    /// Probability the destination host never answers the final probe
    /// (ICMP filtered) — the dominant cause of "did not complete".
    pub dest_filter_prob: f64,
    /// Probes per TTL before declaring the hop silent.
    pub probes_per_hop: u32,
    /// Maximum TTL probed.
    pub max_ttl: u8,
}

impl TracerouteConfig {
    /// Calibrated so that, over many destinations, more than half of
    /// traceroutes fail to complete — matching the paper's experience.
    pub fn paper() -> Self {
        TracerouteConfig {
            hop_silence_prob: 0.12,
            dest_filter_prob: 0.55,
            probes_per_hop: 3,
            max_ttl: 30,
        }
    }
}

/// One hop of a traceroute result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracerouteHop {
    /// TTL/hop-limit value that elicited this hop.
    pub ttl: u8,
    /// Responding router address, or `None` for `* * *`.
    pub addr: Option<IpAddr>,
    /// AS owning the responding router, when known.
    pub asn: Option<AsId>,
    /// Round-trip time to this hop in milliseconds, when it responded.
    pub rtt_ms: Option<f64>,
}

/// A completed (or abandoned) traceroute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Traceroute {
    /// Address family probed.
    pub family: Family,
    /// Per-TTL results, in order.
    pub hops: Vec<TracerouteHop>,
    /// Whether the destination itself responded.
    pub completed: bool,
}

impl Traceroute {
    /// The AS-level path inferred from responding hops (consecutive
    /// duplicates collapsed) — what an AS-traceroute tool would output.
    pub fn inferred_as_path(&self) -> Vec<AsId> {
        let mut out: Vec<AsId> = Vec::new();
        for h in &self.hops {
            if let Some(asn) = h.asn {
                if out.last() != Some(&asn) {
                    out.push(asn);
                }
            }
        }
        out
    }
}

/// Runs a traceroute along `route` in `family`.
///
/// Every probe is a real UDP-in-IP packet; every response is a real ICMP
/// message, encoded and then decoded, so the packet crate's wire formats
/// are exercised end to end.
pub fn traceroute<R: Rng>(
    rng: &mut R,
    topo: &Topology,
    route: RouteRef<'_>,
    family: Family,
    cfg: &TracerouteConfig,
) -> Traceroute {
    let path = route.as_path.ases();
    let src_as = topo.node(path[0]);
    let dst_as = topo.node(*path.last().expect("non-empty path"));

    // Router address of hop k (1-based AS index into the path).
    let hop_addr = |k: usize| -> Option<IpAddr> {
        let node = topo.node(path[k]);
        match family {
            Family::V4 => Some(IpAddr::V4(node.v4_host(200 + k as u32))),
            Family::V6 => node.v6_host(200 + k as u32).map(IpAddr::V6),
        }
    };

    // Cumulative one-way delay to hop k.
    let mut cum_delay = vec![2.0f64];
    for &eid in route.edges {
        let prev = *cum_delay.last().expect("non-empty");
        cum_delay.push(prev + topo.edge(eid).effective_delay_ms());
    }

    let mut hops = Vec::new();
    let mut completed = false;
    let total_hops = route.edges.len();
    for ttl in 1..=cfg.max_ttl {
        let k = ttl as usize;
        if k > total_hops {
            break;
        }
        let is_dest = k == total_hops;

        // Build and "send" the probe: UDP datagram with the classic high port.
        let probe_valid = match family {
            Family::V4 => {
                let src = src_as.v4_host(1);
                let dst = dst_as.v4_host(1);
                let udp = UdpHeader::new(33434, 33434 + ttl as u16, 8);
                let payload = udp.to_vec_v4(src, dst, &[0u8; 8]);
                let mut hdr = Ipv4Header::new(src, dst, IPPROTO_UDP, payload.len() as u16);
                hdr.ttl = ttl;
                let mut wire = hdr.to_vec();
                wire.extend_from_slice(&payload);
                // Routers decrement TTL; at hop k the TTL hits zero.
                let mut parsed = Ipv4Header::decode(&mut &wire[..]).expect("own probe parses");
                parsed.ttl = parsed.ttl.saturating_sub(k as u8);
                // ICMP Time Exceeded quotes the invoking packet.
                let reply = Icmpv4Message::time_exceeded(&wire);
                Icmpv4Message::decode(&reply.to_vec()).is_ok() && (parsed.ttl == 0 || is_dest)
            }
            Family::V6 => {
                let Some(src) = src_as.v6_host(1) else {
                    return Traceroute { family, hops, completed: false };
                };
                let Some(dst) = dst_as.v6_host(1) else {
                    return Traceroute { family, hops, completed: false };
                };
                let udp = UdpHeader::new(33434, 33434 + ttl as u16, 8);
                let payload = udp.to_vec_v6(src, dst, &[0u8; 8]);
                let mut hdr = Ipv6Header::new(src, dst, IPPROTO_UDP, payload.len() as u16);
                hdr.hop_limit = ttl;
                let mut wire = hdr.to_vec();
                wire.extend_from_slice(&payload);
                let mut parsed = Ipv6Header::decode(&mut &wire[..]).expect("own probe parses");
                parsed.hop_limit = parsed.hop_limit.saturating_sub(k as u8);
                let reply = Icmpv6Message::time_exceeded(&wire);
                Icmpv6Message::decode(&reply.to_vec(src, dst), src, dst).is_ok()
                    && (parsed.hop_limit == 0 || is_dest)
            }
        };
        debug_assert!(probe_valid, "probe construction must be self-consistent");

        // Does this hop answer? Filtering is a property of the router/host
        // configuration, not of the individual probe: a hop that filters
        // ICMP swallows all `probes_per_hop` retries alike, so one draw
        // decides the hop.
        let silence_p = if is_dest { cfg.dest_filter_prob } else { cfg.hop_silence_prob };
        let answered = !coin(rng, silence_p);
        if answered {
            let rtt = 2.0 * cum_delay[k] * rng.gen_range(0.95..1.15);
            hops.push(TracerouteHop {
                ttl,
                addr: hop_addr(k),
                asn: Some(path[k]),
                rtt_ms: Some(rtt),
            });
            if is_dest {
                completed = true;
            }
        } else {
            hops.push(TracerouteHop { ttl, addr: None, asn: None, rtt_ms: None });
        }
    }
    Traceroute { family, hops, completed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_bgp::BgpTable;
    use ipv6web_stats::derive_rng;
    use ipv6web_topology::{generate, Tier, TopologyConfig};

    fn setup() -> (ipv6web_topology::Topology, BgpTable) {
        let t = generate(&TopologyConfig::test_small(), 31);
        let vantage =
            t.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
        let dests: Vec<AsId> =
            t.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).take(40).collect();
        let table = BgpTable::build(&t, vantage, Family::V4, &dests);
        (t, table)
    }

    #[test]
    fn always_on_config_reaches_destination() {
        let (t, table) = setup();
        let cfg = TracerouteConfig {
            hop_silence_prob: 0.0,
            dest_filter_prob: 0.0,
            probes_per_hop: 1,
            max_ttl: 30,
        };
        let mut rng = derive_rng(1, "tr");
        let first = table.iter().next().unwrap();
        let tr = traceroute(&mut rng, &t, first, Family::V4, &cfg);
        assert!(tr.completed);
        assert_eq!(tr.hops.len(), first.edges.len());
        assert!(tr.hops.iter().all(|h| h.addr.is_some() && h.rtt_ms.is_some()));
    }

    #[test]
    fn inferred_as_path_matches_bgp_when_fully_responsive() {
        let (t, table) = setup();
        let cfg = TracerouteConfig {
            hop_silence_prob: 0.0,
            dest_filter_prob: 0.0,
            probes_per_hop: 1,
            max_ttl: 30,
        };
        let mut rng = derive_rng(2, "tr");
        for route in table.iter().take(10) {
            let tr = traceroute(&mut rng, &t, route, Family::V4, &cfg);
            let inferred = tr.inferred_as_path();
            // inferred path excludes the source AS (hop 0 never probed)
            assert_eq!(inferred, route.as_path.ases()[1..].to_vec());
        }
    }

    #[test]
    fn rtt_increases_along_the_path() {
        let (t, table) = setup();
        let cfg = TracerouteConfig {
            hop_silence_prob: 0.0,
            dest_filter_prob: 0.0,
            probes_per_hop: 1,
            max_ttl: 30,
        };
        let mut rng = derive_rng(3, "tr");
        let route = table.iter().find(|r| r.edges.len() >= 3).expect("long route");
        let tr = traceroute(&mut rng, &t, route, Family::V4, &cfg);
        let rtts: Vec<f64> = tr.hops.iter().filter_map(|h| h.rtt_ms).collect();
        // allow jitter-induced local inversions, but the last hop must be
        // well beyond the first
        assert!(rtts.last().unwrap() > rtts.first().unwrap());
    }

    #[test]
    fn paper_config_fails_over_half_the_time() {
        let (t, table) = setup();
        let cfg = TracerouteConfig::paper();
        let mut rng = derive_rng(4, "tr");
        let routes: Vec<RouteRef<'_>> = table.iter().collect();
        let mut failed = 0;
        let n = 200;
        for i in 0..n {
            let route = routes[i % routes.len()];
            let tr = traceroute(&mut rng, &t, route, Family::V4, &cfg);
            if !tr.completed {
                failed += 1;
            }
        }
        assert!(failed * 2 > n, "only {failed}/{n} failed; paper saw >50% failures");
        assert!(failed < n, "some traceroutes must still succeed");
    }

    #[test]
    fn silent_hops_show_as_stars() {
        let (t, table) = setup();
        let cfg = TracerouteConfig {
            hop_silence_prob: 1.0,
            dest_filter_prob: 1.0,
            probes_per_hop: 2,
            max_ttl: 30,
        };
        let mut rng = derive_rng(5, "tr");
        let tr = traceroute(&mut rng, &t, table.iter().next().unwrap(), Family::V4, &cfg);
        assert!(!tr.completed);
        assert!(tr.hops.iter().all(|h| h.addr.is_none()));
        assert!(tr.inferred_as_path().is_empty());
    }

    #[test]
    fn v6_traceroute_works_on_dual_stack_route() {
        let t = generate(&TopologyConfig::test_small(), 37);
        let vantage =
            t.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
        let dests: Vec<AsId> = t
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Content && n.is_dual_stack())
            .map(|n| n.id)
            .collect();
        let table = BgpTable::build(&t, vantage, Family::V6, &dests);
        let route = table.iter().next().expect("some v6 route");
        let cfg = TracerouteConfig {
            hop_silence_prob: 0.0,
            dest_filter_prob: 0.0,
            probes_per_hop: 1,
            max_ttl: 30,
        };
        let mut rng = derive_rng(6, "tr");
        let tr = traceroute(&mut rng, &t, route, Family::V6, &cfg);
        assert!(tr.completed);
        assert!(tr.hops.iter().all(|h| matches!(h.addr, Some(IpAddr::V6(_)))));
    }

    #[test]
    fn max_ttl_truncates() {
        let (t, table) = setup();
        let route = table.iter().find(|r| r.edges.len() >= 3).unwrap();
        let cfg = TracerouteConfig {
            hop_silence_prob: 0.0,
            dest_filter_prob: 0.0,
            probes_per_hop: 1,
            max_ttl: 2,
        };
        let mut rng = derive_rng(7, "tr");
        let tr = traceroute(&mut rng, &t, route, Family::V4, &cfg);
        assert_eq!(tr.hops.len(), 2);
        assert!(!tr.completed);
    }
}
