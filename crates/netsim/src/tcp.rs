//! TCP download-time model.
//!
//! A main-page download in 2011 is a short TCP transfer: connection setup
//! and slow start dominate, with the steady-state rate capped by the
//! receive window, the path bottleneck, and the loss-driven PFTK limit
//! (Padhye, Firoiu, Towsley, Kurose, SIGCOMM '98):
//!
//! ```text
//! B ≈ MSS / (RTT·√(2p/3) + t_RTO·min(1, 3·√(3p/8))·p·(1+32p²))
//! ```
//!
//! The model reproduces the paper's observed magnitudes (tens of kB/s for
//! ~50–100 kB pages over intercontinental RTTs) and, crucially, the
//! *decline of download speed with path length* visible in Tables 7 and 9.

use crate::dataplane::PathMetrics;
use ipv6web_stats::lognormal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// TCP/transfer model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size in bytes (Ethernet-path default).
    pub mss: u32,
    /// Initial congestion window in segments (RFC 3390-era value).
    pub init_cwnd: u32,
    /// Receive window in bytes (no window scaling — 2011 defaults).
    pub rwnd: u32,
    /// Retransmission timeout used in the PFTK cap, milliseconds.
    pub rto_ms: f64,
    /// Multiplicative per-download jitter (σ of a log-normal on total time).
    pub jitter_sigma: f64,
}

impl TcpConfig {
    /// Defaults matching 2011-era stacks.
    pub fn paper() -> Self {
        TcpConfig { mss: 1460, init_cwnd: 3, rwnd: 65_535, rto_ms: 1000.0, jitter_sigma: 0.03 }
    }

    /// A config for a tunneled IPv6 path: MSS shrinks by the 6in4 overhead.
    pub fn with_tunnel_mss(mut self) -> Self {
        self.mss = self.mss.saturating_sub(ipv6web_packet::tunnel::TUNNEL_OVERHEAD as u32);
        self
    }
}

/// Result of one modeled page download.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DownloadOutcome {
    /// Total wall-clock time, seconds (handshake + request + transfer).
    pub time_s: f64,
    /// Average download speed in kB/s (bytes/1024 per second) — the paper's
    /// performance metric.
    pub speed_kbps: f64,
    /// Number of slow-start rounds taken.
    pub slow_start_rounds: u32,
    /// The steady-state rate the transfer was capped at, kB/s.
    pub steady_rate_kbps: f64,
}

/// PFTK steady-state throughput in bytes/second.
fn pftk_bytes_per_s(mss: f64, rtt_s: f64, loss: f64, rto_s: f64) -> f64 {
    if loss <= 0.0 {
        return f64::INFINITY;
    }
    let term1 = rtt_s * (2.0 * loss / 3.0).sqrt();
    let term2 =
        rto_s * (1.0f64).min(3.0 * (3.0 * loss / 8.0).sqrt()) * loss * (1.0 + 32.0 * loss * loss);
    mss / (term1 + term2)
}

/// Models the download of `bytes` over a path with `metrics`, plus
/// `server_think_ms` of server-side processing before the first byte.
///
/// Deterministic apart from the log-normal jitter drawn from `rng`.
pub fn download_time<R: Rng>(
    rng: &mut R,
    bytes: u64,
    metrics: &PathMetrics,
    server_think_ms: f64,
    cfg: &TcpConfig,
) -> DownloadOutcome {
    assert!(bytes > 0, "empty download");
    let cfg_eff = if metrics.tunneled { cfg.with_tunnel_mss() } else { *cfg };
    let mss = cfg_eff.mss as f64;
    let rtt_s = (metrics.rtt_ms / 1000.0).max(1e-4);

    // Steady-state cap: min(receive-window rate, bottleneck, PFTK).
    let rwnd_rate = cfg_eff.rwnd as f64 / rtt_s; // bytes/s
    let bottleneck_rate = metrics.bottleneck_kbps * 1024.0; // bytes/s
    let pftk_rate = pftk_bytes_per_s(mss, rtt_s, metrics.loss, cfg_eff.rto_ms / 1000.0);
    let steady = rwnd_rate.min(bottleneck_rate).min(pftk_rate);
    let steady_per_rtt = (steady * rtt_s / mss).max(1.0); // segments/RTT

    // Slow start: cwnd doubles each RTT from init_cwnd up to the steady cap.
    let total_segments = (bytes as f64 / mss).ceil();
    let mut cwnd = cfg_eff.init_cwnd as f64;
    let mut sent = 0.0;
    let mut rounds = 0u32;
    while sent < total_segments && cwnd < steady_per_rtt {
        sent += cwnd;
        cwnd = (cwnd * 2.0).min(steady_per_rtt);
        rounds += 1;
        if rounds > 64 {
            break; // defensive: cannot happen with sane configs
        }
    }
    // Remaining bytes flow at the steady rate.
    let remaining_bytes = ((total_segments - sent).max(0.0)) * mss;
    let transfer_s = rounds as f64 * rtt_s + remaining_bytes / steady;

    // 1 RTT handshake + 1 RTT request/first-byte + server think time.
    let base = 2.0 * rtt_s + server_think_ms / 1000.0 + transfer_s;
    let time_s = base * lognormal(rng, 1.0, cfg_eff.jitter_sigma);
    DownloadOutcome {
        time_s,
        speed_kbps: bytes as f64 / 1024.0 / time_s,
        slow_start_rounds: rounds,
        steady_rate_kbps: steady / 1024.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_stats::derive_rng;
    use proptest::prelude::*;

    fn metrics(rtt_ms: f64, bw_kbps: f64, loss: f64) -> PathMetrics {
        PathMetrics {
            rtt_ms,
            bottleneck_kbps: bw_kbps,
            loss,
            as_hops: 3,
            true_hops: 3,
            tunneled: false,
            forwarding_factor: 1.0,
        }
    }

    #[test]
    fn typical_2011_page_lands_in_paper_range() {
        // 60 kB page, 150 ms RTT, clean path: expect tens of kB/s.
        let mut rng = derive_rng(1, "tcp");
        let m = metrics(150.0, 10_000.0, 0.001);
        let out = download_time(&mut rng, 60_000, &m, 20.0, &TcpConfig::paper());
        assert!(
            out.speed_kbps > 20.0 && out.speed_kbps < 150.0,
            "speed {} kB/s out of paper range",
            out.speed_kbps
        );
    }

    #[test]
    fn longer_rtt_means_slower_download() {
        let mut rng = derive_rng(2, "tcp");
        let cfg = TcpConfig { jitter_sigma: 0.0, ..TcpConfig::paper() };
        let fast = download_time(&mut rng, 60_000, &metrics(80.0, 10_000.0, 0.001), 20.0, &cfg);
        let slow = download_time(&mut rng, 60_000, &metrics(250.0, 10_000.0, 0.001), 20.0, &cfg);
        assert!(fast.speed_kbps > slow.speed_kbps * 1.5);
    }

    #[test]
    fn narrow_bottleneck_caps_throughput() {
        let mut rng = derive_rng(3, "tcp");
        let cfg = TcpConfig { jitter_sigma: 0.0, ..TcpConfig::paper() };
        // 5 MB transfer so steady state dominates; 100 kB/s bottleneck
        let out = download_time(&mut rng, 5_000_000, &metrics(50.0, 100.0, 0.0), 0.0, &cfg);
        assert!(
            (out.speed_kbps - 100.0).abs() < 15.0,
            "speed {} should approach the 100 kB/s bottleneck",
            out.speed_kbps
        );
    }

    #[test]
    fn loss_reduces_throughput_via_pftk() {
        let mut rng = derive_rng(4, "tcp");
        let cfg = TcpConfig { jitter_sigma: 0.0, ..TcpConfig::paper() };
        let clean =
            download_time(&mut rng, 2_000_000, &metrics(100.0, 50_000.0, 0.0001), 0.0, &cfg);
        let lossy = download_time(&mut rng, 2_000_000, &metrics(100.0, 50_000.0, 0.02), 0.0, &cfg);
        assert!(clean.speed_kbps > 2.0 * lossy.speed_kbps);
    }

    #[test]
    fn pftk_formula_known_value() {
        // MSS 1460 B, RTT 0.1 s, p = 0.01: term1 = 0.1*sqrt(0.00667) = 0.008165
        // term2 = 1.0 * min(1, 3*sqrt(0.00375)) * 0.01 * (1+0.0032)
        //       = 1.0 * 0.18371 * 0.010032 = 0.0018430
        // B = 1460 / 0.010008 = ~145,890 B/s
        let b = pftk_bytes_per_s(1460.0, 0.1, 0.01, 1.0);
        assert!((b - 145_900.0).abs() < 2_000.0, "PFTK {b}");
    }

    #[test]
    fn zero_loss_pftk_unbounded() {
        assert!(pftk_bytes_per_s(1460.0, 0.1, 0.0, 1.0).is_infinite());
    }

    #[test]
    fn tunnel_shrinks_mss() {
        let cfg = TcpConfig::paper().with_tunnel_mss();
        assert_eq!(cfg.mss, 1460 - 20);
    }

    #[test]
    fn tunneled_path_slower_than_native_same_metrics() {
        let mut rng = derive_rng(5, "tcp");
        let cfg = TcpConfig { jitter_sigma: 0.0, ..TcpConfig::paper() };
        let mut m = metrics(150.0, 10_000.0, 0.005);
        let native = download_time(&mut rng, 500_000, &m, 0.0, &cfg);
        m.tunneled = true;
        let tunneled = download_time(&mut rng, 500_000, &m, 0.0, &cfg);
        assert!(native.speed_kbps > tunneled.speed_kbps, "MSS tax must show");
    }

    #[test]
    fn server_think_time_adds_latency() {
        let mut rng = derive_rng(6, "tcp");
        let cfg = TcpConfig { jitter_sigma: 0.0, ..TcpConfig::paper() };
        let quick = download_time(&mut rng, 60_000, &metrics(100.0, 10_000.0, 0.001), 0.0, &cfg);
        let slowsrv =
            download_time(&mut rng, 60_000, &metrics(100.0, 10_000.0, 0.001), 500.0, &cfg);
        assert!((slowsrv.time_s - quick.time_s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn slow_start_round_count() {
        let mut rng = derive_rng(7, "tcp");
        let cfg = TcpConfig { jitter_sigma: 0.0, ..TcpConfig::paper() };
        // 42 segments, cwnd 3,6,12,24 -> 45 cumulative after 4 rounds
        let out = download_time(&mut rng, 42 * 1460, &metrics(100.0, 50_000.0, 0.0001), 0.0, &cfg);
        assert_eq!(out.slow_start_rounds, 4);
    }

    #[test]
    #[should_panic(expected = "empty download")]
    fn zero_bytes_panics() {
        let mut rng = derive_rng(8, "tcp");
        download_time(&mut rng, 0, &metrics(100.0, 1000.0, 0.0), 0.0, &TcpConfig::paper());
    }

    proptest! {
        #[test]
        fn time_positive_and_speed_consistent(
            bytes in 1_000u64..5_000_000,
            rtt in 10.0f64..400.0,
            bw in 200.0f64..50_000.0,
            loss in 0.0f64..0.05,
        ) {
            let mut rng = derive_rng(9, "tcp-prop");
            let cfg = TcpConfig { jitter_sigma: 0.0, ..TcpConfig::paper() };
            let out = download_time(&mut rng, bytes, &metrics(rtt, bw, loss), 10.0, &cfg);
            prop_assert!(out.time_s > 0.0);
            prop_assert!((out.speed_kbps - bytes as f64 / 1024.0 / out.time_s).abs() < 1e-9);
            // can never beat the bottleneck over the transfer portion by much:
            // allow slack for the handshake not carrying data
            prop_assert!(out.speed_kbps <= bw * 1.01 + 1.0);
        }

        #[test]
        fn monotone_in_bytes_speed_rises_then_saturates(
            rtt in 20.0f64..300.0,
        ) {
            // Larger transfers amortize the handshake: speed should not
            // decrease drastically with size on a clean path.
            let mut rng = derive_rng(10, "tcp-prop2");
            let cfg = TcpConfig { jitter_sigma: 0.0, ..TcpConfig::paper() };
            let small = download_time(&mut rng, 10_000, &metrics(rtt, 20_000.0, 0.0005), 10.0, &cfg);
            let large = download_time(&mut rng, 1_000_000, &metrics(rtt, 20_000.0, 0.0005), 10.0, &cfg);
            prop_assert!(large.speed_kbps >= small.speed_kbps * 0.9);
        }
    }
}
