//! Flow-level data plane for the simulated Internet.
//!
//! The monitor downloads pages; what it observes is a download *time*. This
//! crate turns a BGP route (sequence of inter-AS edges) into the
//! performance-relevant path metrics — RTT, bottleneck bandwidth, loss,
//! per-AS IPv6 forwarding factors, tunnel effects — and models the TCP
//! transfer on top:
//!
//! * [`dataplane::DataPlane::metrics`] folds a route's links and ASes into
//!   [`dataplane::PathMetrics`];
//! * [`tcp`] computes the page download time with connection setup, slow
//!   start, and a PFTK-style steady-state cap (the standard
//!   Padhye–Firoiu–Towsley–Kurose throughput formula);
//! * [`traceroute`] runs a packet-faithful traceroute over the same path
//!   (hop-limit countdown, ICMP Time Exceeded built with `ipv6web-packet`),
//!   reproducing the paper's observation that over 50% of traceroutes fail
//!   to complete — the reason it used BGP tables instead (Section 3).
//!
//! Hypothesis H1 lives here: with every AS's `forwarding_factor` at 1.0 the
//! IPv6 and IPv4 data planes are indistinguishable, and any measured
//! difference must come from routing (H2) or servers.

pub mod dataplane;
pub mod happy_eyeballs;
pub mod mtu;
pub mod ping;
pub mod tcp;
pub mod traceroute;

pub use dataplane::{translated_metrics, DataPlane, PathMetrics};
pub use happy_eyeballs::{race, race_with_stack, HappyEyeballsConfig, RaceOutcome};
pub use mtu::{
    discover_pmtud, path_mtu, translate_ptb_mtu, translated_path_mtu, Pmtud, PmtudConfig,
};
pub use ping::{ping, PingConfig, PingOutcome};
pub use tcp::{download_time, DownloadOutcome, TcpConfig};
pub use traceroute::{traceroute, Traceroute, TracerouteConfig, TracerouteHop};
