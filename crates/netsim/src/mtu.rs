//! Path MTU discovery over simulated routes.
//!
//! 6in4 tunnels shrink the IPv6 path MTU by the encapsulation overhead
//! (RFC 4213), and in 2011 broken PMTUD — ICMPv6 Packet Too Big messages
//! filtered somewhere along the path — was a notorious source of IPv6
//! "connection hangs" that simple reachability checks missed. This module
//! walks a route the way a sending host's PMTUD state machine does:
//!
//! 1. send a full-size packet;
//! 2. the first link whose MTU is smaller answers Packet Too Big (built
//!    and parsed with `ipv6web-packet`) advertising its MTU — unless that
//!    ICMP message is filtered (the blackhole case);
//! 3. repeat until the packet fits end to end.

use ipv6web_bgp::RouteRef;
use ipv6web_packet::tunnel::TUNNEL_OVERHEAD;
use ipv6web_packet::Icmpv6Message;
use ipv6web_stats::coin;
use ipv6web_topology::{Family, Topology};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Conventional Ethernet MTU, the starting point of discovery.
pub const BASE_MTU: u16 = 1500;

/// IPv6 minimum link MTU (RFC 8200 §5).
pub const V6_MIN_MTU: u16 = 1280;

/// Header growth across a NAT64 translator: the 40-byte IPv6 header
/// replaces a 20-byte IPv4 header, so a translated packet is 20 bytes
/// larger on the v6 side of the gateway.
pub const XLAT_HEADER_DELTA: u16 = 20;

/// Translates an ICMPv4 "Fragmentation Needed" MTU arriving at a NAT64
/// gateway into the MTU the gateway's ICMPv6 Packet Too Big advertises to
/// the v6-only sender (RFC 7915 §4.2): a v6 packet shrinks by
/// [`XLAT_HEADER_DELTA`] when translated, so the v6-side limit is the v4
/// MTU plus that delta, never below the IPv6 minimum MTU.
pub fn translate_ptb_mtu(v4_mtu: u16) -> u16 {
    v4_mtu.saturating_add(XLAT_HEADER_DELTA).max(V6_MIN_MTU)
}

/// The effective path MTU a v6-only sender sees across a NAT64 gateway:
/// the v6 leg's own MTU (tunnels and all), capped by the v4 leg's MTU as
/// the translator reports it back through [`translate_ptb_mtu`].
pub fn translated_path_mtu(topo: &Topology, v6_leg: RouteRef<'_>, v4_leg: RouteRef<'_>) -> u16 {
    path_mtu(topo, v6_leg).min(translate_ptb_mtu(path_mtu(topo, v4_leg)))
}

/// PMTUD behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmtudConfig {
    /// Probability the Packet Too Big message from a hop is filtered,
    /// turning the undersized link into a blackhole.
    pub ptb_filter_prob: f64,
    /// Maximum discovery iterations before giving up.
    pub max_probes: u32,
}

impl PmtudConfig {
    /// 2011-flavored defaults: PTB filtering was common enough to matter.
    pub fn paper_era() -> Self {
        PmtudConfig { ptb_filter_prob: 0.1, max_probes: 8 }
    }

    /// A clean network: every PTB message arrives.
    pub fn clean() -> Self {
        PmtudConfig { ptb_filter_prob: 0.0, max_probes: 8 }
    }
}

/// Outcome of a path-MTU discovery walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pmtud {
    /// Discovery converged to this path MTU.
    Discovered(u16),
    /// A hop dropped the oversized packet and its Packet Too Big message
    /// never arrived — the classic PMTUD blackhole. The payload carries
    /// the hop index (0-based along the route).
    Blackhole(usize),
}

/// Per-link MTU: tunnels charge the 6in4 encapsulation overhead; native
/// links run at the base MTU.
pub fn link_mtu(topo: &Topology, edge: ipv6web_topology::EdgeId) -> u16 {
    if topo.edge(edge).tunnel.is_some() {
        BASE_MTU - TUNNEL_OVERHEAD as u16
    } else {
        BASE_MTU
    }
}

/// The true end-to-end MTU of a route (minimum link MTU).
pub fn path_mtu(topo: &Topology, route: RouteRef<'_>) -> u16 {
    route.edges.iter().map(|&e| link_mtu(topo, e)).min().unwrap_or(BASE_MTU)
}

/// Runs the PMTUD state machine along `route` in `family`.
///
/// IPv4 paths in this simulator never contain tunnels, so IPv4 discovery
/// converges trivially at [`BASE_MTU`]; the interesting cases are IPv6.
pub fn discover_pmtud<R: Rng>(
    rng: &mut R,
    topo: &Topology,
    route: RouteRef<'_>,
    family: Family,
    cfg: &PmtudConfig,
) -> Pmtud {
    let mut current = BASE_MTU;
    for _ in 0..cfg.max_probes {
        // find the first link the current packet size does not fit through
        let Some((hop_idx, edge)) =
            route.edges.iter().enumerate().find(|(_, &e)| link_mtu(topo, e) < current)
        else {
            return Pmtud::Discovered(current);
        };
        let next_mtu = link_mtu(topo, *edge);
        // the constricting hop emits a Packet Too Big — if not filtered
        if family == Family::V6 {
            if coin(rng, cfg.ptb_filter_prob) {
                return Pmtud::Blackhole(hop_idx);
            }
            // build + parse the actual ICMPv6 message
            let e = topo.edge(*edge);
            let hop_as = topo.node(e.a);
            let (Some(src), Some(dst)) =
                (hop_as.v6_host(250), topo.node(route.as_path.source()).v6_host(1))
            else {
                return Pmtud::Blackhole(hop_idx);
            };
            let ptb = Icmpv6Message::packet_too_big(next_mtu as u32, &[0u8; 64]);
            // A PTB that fails to round-trip the codec is a PTB the sender
            // never understood — identical to a filtered one: blackhole.
            let Ok(parsed) = Icmpv6Message::decode(&ptb.to_vec(src, dst), src, dst) else {
                ipv6web_obs::inc("netsim.ptb_codec_errors");
                return Pmtud::Blackhole(hop_idx);
            };
            debug_assert_eq!(parsed.mtu(), Some(next_mtu as u32));
        }
        current = next_mtu;
    }
    Pmtud::Discovered(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_bgp::BgpTable;
    use ipv6web_stats::derive_rng;
    use ipv6web_topology::{generate, AsId, Tier, TopologyConfig};

    fn routes(family: Family, seed: u64) -> (ipv6web_topology::Topology, BgpTable) {
        let topo = generate(&TopologyConfig::test_small(), seed);
        let vantage =
            topo.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
        let dests: Vec<AsId> = topo
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Content && (family == Family::V4 || n.is_dual_stack()))
            .map(|n| n.id)
            .collect();
        let table = BgpTable::build(&topo, vantage, family, &dests);
        (topo, table)
    }

    #[test]
    fn v4_paths_full_mtu() {
        let (topo, table) = routes(Family::V4, 3);
        let mut rng = derive_rng(1, "pmtud");
        for r in table.iter().take(20) {
            assert_eq!(path_mtu(&topo, r), BASE_MTU);
            assert_eq!(
                discover_pmtud(&mut rng, &topo, r, Family::V4, &PmtudConfig::paper_era()),
                Pmtud::Discovered(BASE_MTU)
            );
        }
    }

    #[test]
    fn tunneled_v6_path_discovers_reduced_mtu() {
        let mut rng = derive_rng(2, "pmtud");
        for seed in 0..20u64 {
            let (topo, table) = routes(Family::V6, seed);
            for r in table.iter() {
                if r.edges.iter().any(|&e| topo.edge(e).tunnel.is_some()) {
                    let true_mtu = path_mtu(&topo, r);
                    assert_eq!(true_mtu, BASE_MTU - TUNNEL_OVERHEAD as u16);
                    let out = discover_pmtud(&mut rng, &topo, r, Family::V6, &PmtudConfig::clean());
                    assert_eq!(out, Pmtud::Discovered(true_mtu));
                    return;
                }
            }
        }
        panic!("no tunneled v6 route found across 20 seeds");
    }

    #[test]
    fn filtered_ptb_blackholes() {
        let mut rng = derive_rng(3, "pmtud");
        let cfg = PmtudConfig { ptb_filter_prob: 1.0, max_probes: 8 };
        for seed in 0..20u64 {
            let (topo, table) = routes(Family::V6, seed);
            for r in table.iter() {
                if let Some(pos) = r.edges.iter().position(|&e| topo.edge(e).tunnel.is_some()) {
                    let out = discover_pmtud(&mut rng, &topo, r, Family::V6, &cfg);
                    assert_eq!(out, Pmtud::Blackhole(pos));
                    return;
                }
            }
        }
        panic!("no tunneled v6 route found");
    }

    #[test]
    fn untunneled_v6_path_unaffected_by_filtering() {
        let mut rng = derive_rng(4, "pmtud");
        let cfg = PmtudConfig { ptb_filter_prob: 1.0, max_probes: 8 };
        let (topo, table) = routes(Family::V6, 5);
        let clean = table
            .iter()
            .find(|r| r.edges.iter().all(|&e| topo.edge(e).tunnel.is_none()))
            .expect("some native v6 route");
        assert_eq!(
            discover_pmtud(&mut rng, &topo, clean, Family::V6, &cfg),
            Pmtud::Discovered(BASE_MTU),
            "nothing to constrict, nothing to filter"
        );
    }

    #[test]
    fn ptb_through_translator_regression() {
        // RFC 7915 §4.2: v4 MTU + header delta, floored at the v6 minimum.
        assert_eq!(translate_ptb_mtu(1500), 1520);
        assert_eq!(translate_ptb_mtu(1480), 1500);
        assert_eq!(translate_ptb_mtu(1260), 1280);
        assert_eq!(translate_ptb_mtu(576), V6_MIN_MTU);
        assert_eq!(translate_ptb_mtu(u16::MAX), u16::MAX, "saturates, never wraps");
        // The translated PTB rides the real ICMPv6 codec bit-exact, from a
        // synthesized source the way a gateway-originated error would.
        let src: std::net::Ipv6Addr = "64:ff9b::c000:201".parse().unwrap();
        let dst: std::net::Ipv6Addr = "2001:db8::1".parse().unwrap();
        for v4_mtu in [68u16, 576, 1400, 1480, 1500] {
            let v6_mtu = translate_ptb_mtu(v4_mtu);
            let ptb = Icmpv6Message::packet_too_big(v6_mtu as u32, &[0u8; 64]);
            let parsed = Icmpv6Message::decode(&ptb.to_vec(src, dst), src, dst).unwrap();
            assert_eq!(parsed.mtu(), Some(v6_mtu as u32), "v4 MTU {v4_mtu}");
        }
    }

    #[test]
    fn translated_path_mtu_takes_the_tighter_side() {
        for seed in 0..20u64 {
            let (topo, v6_table) = routes(Family::V6, seed);
            let Some(v6_route) =
                v6_table.iter().find(|r| r.edges.iter().any(|&e| topo.edge(e).tunnel.is_some()))
            else {
                continue;
            };
            let (_, v4_table) = routes(Family::V4, seed);
            let v4_route = v4_table.iter().next().unwrap();
            // v4 paths carry no tunnels, so the translator reports
            // 1500 + 20 and the tunneled v6 leg stays the constriction.
            let m = translated_path_mtu(&topo, v6_route, v4_route);
            assert_eq!(m, BASE_MTU - TUNNEL_OVERHEAD as u16);
            return;
        }
        panic!("no tunneled v6 route found across 20 seeds");
    }

    #[test]
    fn empty_route_is_base_mtu() {
        let (topo, _table) = routes(Family::V4, 7);
        // fabricate a local (0-edge) route: path_mtu on no edges falls
        // back to BASE_MTU
        let path = ipv6web_bgp::AsPath::new(vec![AsId(0)]);
        let local = RouteRef { dest: AsId(0), as_path: path.as_ref(), edges: &[] };
        assert_eq!(path_mtu(&topo, local), BASE_MTU);
    }
}
