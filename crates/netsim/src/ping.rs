//! ICMP echo (ping) measurement over simulated routes.
//!
//! The paper's related work (\[2\] Cho, Luckie, Huffaker; \[11\] Zhou & Van
//! Mieghem) compared IPv6 and IPv4 *RTTs* with ping rather than download
//! speeds. This module reproduces that methodology over the same simulated
//! data plane, so the repository can run the earlier studies' experiment
//! next to the paper's own (see `examples/ping_survey.rs`).
//!
//! Every probe is a real ICMP echo request built and parsed with
//! `ipv6web-packet`; replies mirror the request's identifier/sequence, and
//! per-probe loss follows the path's composed loss probability.

use crate::dataplane::PathMetrics;
use ipv6web_packet::{Icmpv4Message, Icmpv6Message};
use ipv6web_stats::{coin, lognormal, Welford};
use ipv6web_topology::{Family, Topology};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ping measurement parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PingConfig {
    /// Echo requests per measurement.
    pub count: u32,
    /// Payload bytes carried by each echo.
    pub payload_len: usize,
    /// Multiplicative per-probe RTT jitter (log-normal σ).
    pub jitter_sigma: f64,
}

impl PingConfig {
    /// The classic `ping -c 10` with 56-byte payloads.
    pub fn standard() -> Self {
        PingConfig { count: 10, payload_len: 56, jitter_sigma: 0.05 }
    }
}

/// Result of one ping measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PingOutcome {
    /// Address family probed.
    pub family: Family,
    /// Echo requests sent.
    pub sent: u32,
    /// Replies received.
    pub received: u32,
    /// Minimum observed RTT, ms (`None` if all probes lost).
    pub min_ms: Option<f64>,
    /// Mean observed RTT, ms.
    pub avg_ms: Option<f64>,
    /// Maximum observed RTT, ms.
    pub max_ms: Option<f64>,
}

impl PingOutcome {
    /// Fraction of probes lost.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            (self.sent - self.received) as f64 / self.sent as f64
        }
    }
}

/// Pings across a path with the given metrics.
///
/// `topo` supplies the endpoint addresses for the wire-level echo exchange
/// (source host in `src_as`, target in `dst_as`); RTT and loss come from
/// `metrics`.
pub fn ping<R: Rng>(
    rng: &mut R,
    topo: &Topology,
    src_as: ipv6web_topology::AsId,
    dst_as: ipv6web_topology::AsId,
    metrics: &PathMetrics,
    family: Family,
    cfg: &PingConfig,
) -> PingOutcome {
    let mut rtts = Welford::new();
    let mut received = 0u32;
    let payload = vec![0xa5u8; cfg.payload_len];
    let ident: u16 = rng.gen();
    for seq in 0..cfg.count {
        // Build, "send", answer, and parse a real echo exchange. A codec
        // failure anywhere in the exchange means this probe never came
        // back: count it lost and move on, never panic mid-campaign. The
        // `continue`s are unreachable while the codec is healthy, so they
        // cannot perturb the RNG stream of a normal run.
        let echo_ok = match family {
            Family::V4 => {
                let req = Icmpv4Message::echo_request(ident, seq as u16, payload.clone());
                let wire = req.to_vec();
                let Ok(parsed) = Icmpv4Message::decode(&wire) else {
                    ipv6web_obs::inc("netsim.ping_codec_errors");
                    continue;
                };
                let (Some(p_ident), Some(p_seq)) = (parsed.echo_ident(), parsed.echo_seq()) else {
                    ipv6web_obs::inc("netsim.ping_codec_errors");
                    continue;
                };
                let reply = Icmpv4Message::echo_reply(p_ident, p_seq, parsed.payload.clone());
                let Ok(reply_parsed) = Icmpv4Message::decode(&reply.to_vec()) else {
                    ipv6web_obs::inc("netsim.ping_codec_errors");
                    continue;
                };
                reply_parsed.echo_ident() == Some(ident)
                    && reply_parsed.echo_seq() == Some(seq as u16)
            }
            Family::V6 => {
                let (Some(src), Some(dst)) =
                    (topo.node(src_as).v6_host(1), topo.node(dst_as).v6_host(1))
                else {
                    return PingOutcome {
                        family,
                        sent: cfg.count,
                        received: 0,
                        min_ms: None,
                        avg_ms: None,
                        max_ms: None,
                    };
                };
                let req = Icmpv6Message::echo_request(ident, seq as u16, payload.clone());
                let wire = req.to_vec(src, dst);
                let Ok(parsed) = Icmpv6Message::decode(&wire, src, dst) else {
                    ipv6web_obs::inc("netsim.ping_codec_errors");
                    continue;
                };
                let (Some(p_ident), Some(p_seq)) = (parsed.echo_ident(), parsed.echo_seq()) else {
                    ipv6web_obs::inc("netsim.ping_codec_errors");
                    continue;
                };
                let reply = Icmpv6Message::echo_reply(p_ident, p_seq, parsed.payload.clone());
                let Ok(reply_parsed) = Icmpv6Message::decode(&reply.to_vec(dst, src), dst, src)
                else {
                    ipv6web_obs::inc("netsim.ping_codec_errors");
                    continue;
                };
                reply_parsed.echo_ident() == Some(ident)
            }
        };
        if !echo_ok {
            // A mangled exchange is a lost probe, not a crash.
            ipv6web_obs::inc("netsim.ping_codec_errors");
            continue;
        }

        // Round trip crosses every link twice: loss applies both ways.
        let delivered = !coin(rng, metrics.loss) && !coin(rng, metrics.loss);
        if delivered {
            received += 1;
            rtts.push(metrics.rtt_ms * lognormal(rng, 1.0, cfg.jitter_sigma));
        }
    }
    PingOutcome {
        family,
        sent: cfg.count,
        received,
        min_ms: rtts.min(),
        avg_ms: (received > 0).then(|| rtts.mean()),
        max_ms: rtts.max(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_stats::derive_rng;
    use ipv6web_topology::{generate, AsId, Tier, TopologyConfig};

    fn world() -> (ipv6web_topology::Topology, AsId, AsId) {
        let topo = generate(&TopologyConfig::test_small(), 41);
        let src =
            topo.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
        let dst =
            topo.nodes().iter().find(|n| n.tier == Tier::Content && n.is_dual_stack()).unwrap().id;
        (topo, src, dst)
    }

    fn metrics(rtt: f64, loss: f64) -> PathMetrics {
        PathMetrics {
            rtt_ms: rtt,
            bottleneck_kbps: 1000.0,
            loss,
            as_hops: 3,
            true_hops: 3,
            tunneled: false,
            forwarding_factor: 1.0,
        }
    }

    #[test]
    fn clean_path_all_replies_near_rtt() {
        let (topo, src, dst) = world();
        let mut rng = derive_rng(1, "ping");
        let out = ping(
            &mut rng,
            &topo,
            src,
            dst,
            &metrics(120.0, 0.0),
            Family::V4,
            &PingConfig::standard(),
        );
        assert_eq!(out.received, 10);
        assert_eq!(out.loss_rate(), 0.0);
        let avg = out.avg_ms.unwrap();
        assert!((100.0..140.0).contains(&avg), "avg {avg}");
        assert!(out.min_ms.unwrap() <= avg && avg <= out.max_ms.unwrap());
    }

    #[test]
    fn lossy_path_drops_probes() {
        let (topo, src, dst) = world();
        let mut rng = derive_rng(2, "ping");
        let mut lost_any = false;
        for _ in 0..20 {
            let out = ping(
                &mut rng,
                &topo,
                src,
                dst,
                &metrics(50.0, 0.3),
                Family::V4,
                &PingConfig::standard(),
            );
            if out.received < out.sent {
                lost_any = true;
            }
        }
        assert!(lost_any, "30% loss must drop probes");
    }

    #[test]
    fn v6_ping_works_between_dual_stack_ases() {
        let (topo, src, dst) = world();
        let mut rng = derive_rng(3, "ping");
        let out = ping(
            &mut rng,
            &topo,
            src,
            dst,
            &metrics(80.0, 0.001),
            Family::V6,
            &PingConfig::standard(),
        );
        assert!(out.received >= 8);
        assert!(out.avg_ms.unwrap() > 0.0);
    }

    #[test]
    fn v6_ping_to_single_stack_as_fails_cleanly() {
        let topo = generate(&TopologyConfig::test_small(), 43);
        let src = topo.nodes().iter().find(|n| n.is_dual_stack()).unwrap().id;
        let dst = topo.nodes().iter().find(|n| !n.is_dual_stack()).unwrap().id;
        let mut rng = derive_rng(4, "ping");
        let out = ping(
            &mut rng,
            &topo,
            src,
            dst,
            &metrics(80.0, 0.0),
            Family::V6,
            &PingConfig::standard(),
        );
        assert_eq!(out.received, 0);
        assert_eq!(out.avg_ms, None);
        assert_eq!(out.loss_rate(), 1.0);
    }

    #[test]
    fn zero_count_ping_is_well_formed() {
        let (topo, src, dst) = world();
        let mut rng = derive_rng(6, "ping");
        let cfg = PingConfig { count: 0, payload_len: 56, jitter_sigma: 0.05 };
        let out = ping(&mut rng, &topo, src, dst, &metrics(80.0, 0.0), Family::V4, &cfg);
        assert_eq!(out.sent, 0);
        assert_eq!(out.received, 0);
        assert_eq!(out.loss_rate(), 0.0, "0/0 probes lost is 0, not NaN");
        assert_eq!(out.min_ms, None);
        assert_eq!(out.avg_ms, None);
        assert_eq!(out.max_ms, None);
    }

    #[test]
    fn total_loss_yields_empty_stats() {
        let (topo, src, dst) = world();
        let mut rng = derive_rng(5, "ping");
        let out = ping(
            &mut rng,
            &topo,
            src,
            dst,
            &metrics(80.0, 0.999),
            Family::V4,
            &PingConfig::standard(),
        );
        assert_eq!(out.min_ms, None);
        assert!(out.loss_rate() > 0.9);
    }
}
