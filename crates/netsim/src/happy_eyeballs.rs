//! Happy Eyeballs (RFC 6555): dual-stack connection racing.
//!
//! The paper frames poor IPv6 quality as a *disincentive* for content
//! providers — Google's white-listing existed precisely because a browser
//! that prefers IPv6 inherits IPv6's problems. Happy Eyeballs is the
//! client-side answer the IETF standardized shortly after the paper's
//! measurement window: try IPv6 first, arm a fallback timer (default
//! 300 ms historically; RFC 6555 suggests 150–250 ms), and race IPv4 if
//! IPv6 has not connected in time.
//!
//! This module simulates that state machine over the simulated data plane,
//! quantifying what the transition debate was really about: how often a
//! dual-stack user silently falls back, and what latency the attempt
//! costs them.

use crate::dataplane::PathMetrics;
use ipv6web_stats::{coin, lognormal};
use ipv6web_topology::Family;
use ipv6web_xlat::ClientStack;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Happy Eyeballs client parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HappyEyeballsConfig {
    /// Fallback timer: how long IPv6 gets before IPv4 is raced, ms.
    pub fallback_timer_ms: f64,
    /// Per-attempt SYN loss probability multiplier on the path loss (SYNs
    /// cross the path once; loss applies per direction).
    pub syn_jitter_sigma: f64,
    /// Connection attempt timeout, ms (a blackholed SYN burns this long).
    pub connect_timeout_ms: f64,
}

impl HappyEyeballsConfig {
    /// RFC 6555's recommended region: a 250 ms fallback timer.
    pub fn rfc6555() -> Self {
        HappyEyeballsConfig {
            fallback_timer_ms: 250.0,
            syn_jitter_sigma: 0.05,
            connect_timeout_ms: 3_000.0,
        }
    }

    /// The pre-Happy-Eyeballs world: sequential with the full OS connect
    /// timeout before falling back — the behaviour that made broken IPv6
    /// painful enough to motivate white-listing.
    pub fn sequential() -> Self {
        HappyEyeballsConfig {
            fallback_timer_ms: 21_000.0, // classic 3 SYN retransmits
            syn_jitter_sigma: 0.05,
            connect_timeout_ms: 21_000.0,
        }
    }
}

/// Which family won the race, and at what cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaceOutcome {
    /// Family the connection was established over.
    pub winner: Family,
    /// Wall-clock time until the winning connection completed, ms.
    pub connect_ms: f64,
    /// True when IPv6 was usable but lost only on the timer race.
    pub v6_lost_on_timer: bool,
}

/// One family's connection attempt: time to SYN-ACK, or `None` if the
/// attempt times out (unroutable or blackholed path).
fn attempt<R: Rng>(
    rng: &mut R,
    metrics: Option<&PathMetrics>,
    broken: bool,
    cfg: &HappyEyeballsConfig,
) -> Option<f64> {
    let m = metrics?;
    if broken {
        return None;
    }
    // SYN and SYN-ACK each cross the path once; a lost SYN costs a 1 s
    // retransmit (classic initRTO = 1 s per RFC 6298's predecessor values).
    let mut t = m.rtt_ms * lognormal(rng, 1.0, cfg.syn_jitter_sigma);
    let mut retries = 0;
    while coin(rng, m.loss) {
        retries += 1;
        t += 1_000.0 * (1 << retries.min(4)) as f64 / 2.0;
        if t > cfg.connect_timeout_ms {
            return None;
        }
    }
    Some(t)
}

/// Races IPv6 against IPv4 per RFC 6555.
///
/// `v6`/`v4` carry each family's path metrics (`None` = no route);
/// `v6_broken` marks a path that drops the connection silently (e.g. a
/// PMTUD blackhole) despite being routed.
pub fn race<R: Rng>(
    rng: &mut R,
    v6: Option<&PathMetrics>,
    v4: Option<&PathMetrics>,
    v6_broken: bool,
    cfg: &HappyEyeballsConfig,
) -> Option<RaceOutcome> {
    ipv6web_obs::inc("netsim.he.races");
    let t6 = attempt(rng, v6, v6_broken, cfg);
    let t4 = attempt(rng, v4, false, cfg);
    match (t6, t4) {
        (Some(t6), Some(t4)) => {
            // IPv6 is preferred: it wins unless it is still unconnected
            // when the fallback timer fires AND IPv4 then beats it.
            let v4_finish = cfg.fallback_timer_ms.max(0.0) + t4;
            if t6 <= cfg.fallback_timer_ms || t6 <= v4_finish {
                Some(RaceOutcome { winner: Family::V6, connect_ms: t6, v6_lost_on_timer: false })
            } else {
                ipv6web_obs::inc("netsim.he.fallbacks");
                Some(RaceOutcome {
                    winner: Family::V4,
                    connect_ms: v4_finish,
                    v6_lost_on_timer: true,
                })
            }
        }
        (Some(t6), None) => {
            Some(RaceOutcome { winner: Family::V6, connect_ms: t6, v6_lost_on_timer: false })
        }
        (None, Some(t4)) => {
            if v6.is_some() {
                // a v6 route existed but never connected: silent fallback
                ipv6web_obs::inc("netsim.he.fallbacks");
            }
            Some(RaceOutcome {
                winner: Family::V4,
                // if a v6 route existed but broke, the user waits out the timer
                connect_ms: if v6.is_some() { cfg.fallback_timer_ms + t4 } else { t4 },
                v6_lost_on_timer: false,
            })
        }
        (None, None) => None,
    }
}

/// [`race`] with client-stack awareness. A v6-only host holds no native
/// IPv4 address, so IPv4 is never raced no matter what routes exist — any
/// reach into the v4 Internet is an IPv6 flow to a NAT64 gateway and rides
/// the `v6` slot upstream of this call. Dual-stack hosts race exactly as
/// [`race`] always has.
pub fn race_with_stack<R: Rng>(
    rng: &mut R,
    stack: ClientStack,
    v6: Option<&PathMetrics>,
    v4: Option<&PathMetrics>,
    v6_broken: bool,
    cfg: &HappyEyeballsConfig,
) -> Option<RaceOutcome> {
    let v4 = if stack.translates_v4() { None } else { v4 };
    race(rng, v6, v4, v6_broken, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_stats::derive_rng;

    fn metrics(rtt: f64, loss: f64) -> PathMetrics {
        PathMetrics {
            rtt_ms: rtt,
            bottleneck_kbps: 1000.0,
            loss,
            as_hops: 3,
            true_hops: 3,
            tunneled: false,
            forwarding_factor: 1.0,
        }
    }

    #[test]
    fn fast_v6_wins_outright() {
        let mut rng = derive_rng(1, "he");
        let out = race(
            &mut rng,
            Some(&metrics(80.0, 0.0)),
            Some(&metrics(40.0, 0.0)),
            false,
            &HappyEyeballsConfig::rfc6555(),
        )
        .unwrap();
        assert_eq!(out.winner, Family::V6, "v6 under the timer wins even if v4 is faster");
        assert!(!out.v6_lost_on_timer);
        assert!((out.connect_ms - 80.0).abs() < 20.0);
    }

    #[test]
    fn slow_v6_loses_on_the_timer() {
        let mut rng = derive_rng(2, "he");
        // v6 RTT beyond the 250 ms timer; v4 fast
        let out = race(
            &mut rng,
            Some(&metrics(600.0, 0.0)),
            Some(&metrics(50.0, 0.0)),
            false,
            &HappyEyeballsConfig::rfc6555(),
        )
        .unwrap();
        assert_eq!(out.winner, Family::V4);
        assert!(out.v6_lost_on_timer);
        // user pays timer + v4 RTT, not the full v6 RTT
        assert!(out.connect_ms < 600.0);
        assert!(out.connect_ms >= 250.0);
    }

    #[test]
    fn broken_v6_costs_the_timer_not_the_timeout() {
        let mut rng = derive_rng(3, "he");
        let cfg = HappyEyeballsConfig::rfc6555();
        let out = race(
            &mut rng,
            Some(&metrics(80.0, 0.0)),
            Some(&metrics(50.0, 0.0)),
            true, // blackholed v6
            &cfg,
        )
        .unwrap();
        assert_eq!(out.winner, Family::V4);
        assert!((250.0..500.0).contains(&out.connect_ms), "{}", out.connect_ms);
    }

    #[test]
    fn sequential_era_made_broken_v6_catastrophic() {
        let mut rng = derive_rng(4, "he");
        let cfg = HappyEyeballsConfig::sequential();
        let out = race(&mut rng, Some(&metrics(80.0, 0.0)), Some(&metrics(50.0, 0.0)), true, &cfg)
            .unwrap();
        assert_eq!(out.winner, Family::V4);
        assert!(
            out.connect_ms > 20_000.0,
            "pre-Happy-Eyeballs fallback stalls for the OS timeout: {}",
            out.connect_ms
        );
    }

    #[test]
    fn v4_only_host_connects_directly() {
        let mut rng = derive_rng(5, "he");
        let out =
            race(&mut rng, None, Some(&metrics(70.0, 0.0)), false, &HappyEyeballsConfig::rfc6555())
                .unwrap();
        assert_eq!(out.winner, Family::V4);
        assert!(out.connect_ms < 100.0, "no v6 route => no timer penalty");
    }

    #[test]
    fn nothing_routes_nothing_connects() {
        let mut rng = derive_rng(6, "he");
        assert_eq!(race(&mut rng, None, None, false, &HappyEyeballsConfig::rfc6555()), None);
    }

    #[test]
    fn v6_only_host_never_races_v4() {
        let cfg = HappyEyeballsConfig::rfc6555();
        for stack in [ClientStack::V6Only, ClientStack::V6OnlyClat] {
            // Slow, lossy v6 against a pristine v4: a dual-stack host would
            // fall back, a v6-only host cannot.
            let mut rng = derive_rng(8, "he");
            for _ in 0..200 {
                let out = race_with_stack(
                    &mut rng,
                    stack,
                    Some(&metrics(600.0, 0.2)),
                    Some(&metrics(40.0, 0.0)),
                    false,
                    &cfg,
                );
                if let Some(out) = out {
                    assert_eq!(out.winner, Family::V6, "{stack}: v4 must never win");
                    assert!(!out.v6_lost_on_timer);
                }
            }
            // Broken v6 means no connection at all — there is no v4 to save it.
            let mut rng = derive_rng(9, "he");
            assert_eq!(
                race_with_stack(
                    &mut rng,
                    stack,
                    Some(&metrics(80.0, 0.0)),
                    Some(&metrics(40.0, 0.0)),
                    true,
                    &cfg
                ),
                None,
                "{stack}: broken v6 cannot fall back to v4"
            );
        }
        // Dual-stack through the same entry point behaves exactly like race().
        let mut rng = derive_rng(10, "he");
        let out = race_with_stack(
            &mut rng,
            ClientStack::DualStack,
            Some(&metrics(600.0, 0.0)),
            Some(&metrics(50.0, 0.0)),
            false,
            &cfg,
        )
        .unwrap();
        assert_eq!(out.winner, Family::V4);
    }

    #[test]
    fn lossy_v6_syn_can_retry_past_the_timer() {
        // with heavy loss, some races fall back even though v6 is routed
        let mut rng = derive_rng(7, "he");
        let cfg = HappyEyeballsConfig::rfc6555();
        let mut fallbacks = 0;
        for _ in 0..300 {
            let out = race(
                &mut rng,
                Some(&metrics(100.0, 0.4)),
                Some(&metrics(60.0, 0.001)),
                false,
                &cfg,
            )
            .unwrap();
            if out.winner == Family::V4 {
                fallbacks += 1;
            }
        }
        assert!(fallbacks > 30, "40% SYN loss must push races past the timer: {fallbacks}");
        assert!(fallbacks < 300, "but not every race");
    }
}
