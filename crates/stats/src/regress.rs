//! Ordinary least squares regression and steady-trend detection.
//!
//! Section 5.1: *"The last two columns of the table give the number of sites
//! for which a linear regression revealed a steady upward (downward) trend in
//! performance."* Such sites are non-stationary and are excluded from the
//! average-performance analysis.

use serde::{Deserialize, Serialize};

/// Result of an ordinary least squares fit `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl Regression {
    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y = a + b·x` by OLS over index positions `x = 0, 1, …`.
///
/// Returns `None` for fewer than two points or a degenerate (constant-x) fit.
pub fn linear_regression(ys: &[f64]) -> Option<Regression> {
    let n = ys.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (i, &y) in ys.iter().enumerate() {
        let dx = i as f64 - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Some(Regression { slope, intercept, r2: r2.clamp(0.0, 1.0), n })
}

/// Trend classification of a performance series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trend {
    /// No steady drift; the series is usable for averaging.
    Stationary,
    /// Steady upward drift (paper's ↗ column).
    Upward,
    /// Steady downward drift (paper's ↘ column).
    Downward,
}

/// Classifies a series as trending when the OLS fit is both *explanatory*
/// (`r² ≥ min_r2`) and *material* (total fitted change over the series is at
/// least `min_total_change` of the series mean).
///
/// The paper does not publish its exact thresholds; `min_r2 = 0.5` and
/// `min_total_change = 0.3` (30%, matching its transition magnitude) are the
/// defaults used by the analysis crate.
pub fn trend(ys: &[f64], min_r2: f64, min_total_change: f64) -> Trend {
    let Some(fit) = linear_regression(ys) else {
        return Trend::Stationary;
    };
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    if mean <= 0.0 || fit.r2 < min_r2 {
        return Trend::Stationary;
    }
    let total_change = fit.slope * (ys.len() as f64 - 1.0);
    if total_change.abs() / mean < min_total_change {
        return Trend::Stationary;
    }
    if fit.slope > 0.0 {
        Trend::Upward
    } else {
        Trend::Downward
    }
}

/// Paper-default trend classification (r² ≥ 0.5, ≥30% total drift).
pub fn trend_paper(ys: &[f64]) -> Trend {
    trend(ys, 0.5, 0.30)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fits_exact_line() {
        let ys: Vec<f64> = (0..10).map(|i| 3.0 + 2.0 * i as f64).collect();
        let fit = linear_regression(&ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 43.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_zero_slope_full_r2() {
        let fit = linear_regression(&[5.0; 8]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn too_short_returns_none() {
        assert!(linear_regression(&[]).is_none());
        assert!(linear_regression(&[1.0]).is_none());
    }

    #[test]
    fn noisy_flat_series_is_stationary() {
        let ys: Vec<f64> = (0..30).map(|i| 100.0 + ((i * 37) % 11) as f64 - 5.0).collect();
        assert_eq!(trend_paper(&ys), Trend::Stationary);
    }

    #[test]
    fn strong_upward_trend_detected() {
        let ys: Vec<f64> = (0..30).map(|i| 100.0 + 3.0 * i as f64).collect();
        assert_eq!(trend_paper(&ys), Trend::Upward);
    }

    #[test]
    fn strong_downward_trend_detected() {
        let ys: Vec<f64> = (0..30).map(|i| 200.0 - 3.0 * i as f64).collect();
        assert_eq!(trend_paper(&ys), Trend::Downward);
    }

    #[test]
    fn small_drift_is_stationary() {
        // total drift 10% over the whole series: below the 30% threshold
        let ys: Vec<f64> = (0..30).map(|i| 100.0 + 10.0 * i as f64 / 29.0).collect();
        assert_eq!(trend_paper(&ys), Trend::Stationary);
    }

    #[test]
    fn big_but_unexplained_drift_is_stationary() {
        // alternate wildly; slope ~0 explanatory power
        let ys: Vec<f64> = (0..30).map(|i| if i % 2 == 0 { 50.0 } else { 150.0 }).collect();
        assert_eq!(trend_paper(&ys), Trend::Stationary);
    }

    proptest! {
        #[test]
        fn recovers_generated_slope(
            a in -100.0f64..100.0,
            b in -10.0f64..10.0,
            n in 3usize..100,
        ) {
            let ys: Vec<f64> = (0..n).map(|i| a + b * i as f64).collect();
            let fit = linear_regression(&ys).unwrap();
            prop_assert!((fit.slope - b).abs() < 1e-6 * (1.0 + b.abs()));
            prop_assert!((fit.intercept - a).abs() < 1e-6 * (1.0 + a.abs()));
        }

        #[test]
        fn r2_in_unit_interval(ys in proptest::collection::vec(-1e4f64..1e4, 2..80)) {
            if let Some(fit) = linear_regression(&ys) {
                prop_assert!((0.0..=1.0).contains(&fit.r2));
            }
        }

        #[test]
        fn trend_sign_matches_slope_sign(
            b in prop_oneof![-20.0f64..-5.0, 5.0f64..20.0],
            n in 10usize..60,
        ) {
            let ys: Vec<f64> = (0..n).map(|i| 500.0 + b * i as f64).collect();
            // keep everything positive
            prop_assume!(ys.iter().all(|&y| y > 0.0));
            match trend_paper(&ys) {
                Trend::Upward => prop_assert!(b > 0.0),
                Trend::Downward => prop_assert!(b < 0.0),
                Trend::Stationary => {
                    // acceptable only if total drift below threshold
                    let mean = ys.iter().sum::<f64>() / n as f64;
                    prop_assert!((b * (n as f64 - 1.0)).abs() / mean < 0.30 + 1e-9);
                }
            }
        }
    }
}
