//! Deterministic RNG derivation.
//!
//! Every stochastic component of the study derives its own ChaCha stream from
//! the scenario seed plus a component label, so adding or reordering one
//! component never perturbs another's random draws — the whole campaign is
//! reproducible bit-for-bit from a single `u64` seed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// RNG type used throughout the study.
pub type StudyRng = ChaCha8Rng;

/// Derives an independent RNG stream from `(seed, label)`.
///
/// Uses an FNV-1a hash of the label mixed into the seed material so distinct
/// labels give statistically independent streams.
pub fn derive_rng(seed: u64, label: &str) -> StudyRng {
    ipv6web_obs::inc("stats.rng_derivations");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut key = [0u8; 32];
    key[..8].copy_from_slice(&seed.to_le_bytes());
    key[8..16].copy_from_slice(&h.to_le_bytes());
    key[16..24].copy_from_slice(&seed.rotate_left(32).to_le_bytes());
    key[24..32].copy_from_slice(&h.rotate_left(17).to_le_bytes());
    ChaCha8Rng::from_seed(key)
}

/// Draws from a log-normal distribution parameterized by the *median* and the
/// multiplicative spread `sigma` (std-dev of the underlying normal).
///
/// Web page download speeds, link delays, and page sizes are all heavy-tailed;
/// log-normal keeps them positive with a realistic tail.
pub fn lognormal<R: Rng>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    debug_assert!(median > 0.0, "median must be positive");
    // Box–Muller from two uniforms.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

/// Bernoulli draw with probability `p` (clamped to `[0,1]`).
pub fn coin<R: Rng>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_seed_label_reproduces() {
        let mut a = derive_rng(42, "topology");
        let mut b = derive_rng(42, "topology");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = derive_rng(42, "topology");
        let mut b = derive_rng(42, "dns");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams must be independent");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = derive_rng(1, "x");
        let mut b = derive_rng(2, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn lognormal_positive_and_centered() {
        let mut rng = derive_rng(7, "ln");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| lognormal(&mut rng, 100.0, 0.5)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[n / 2];
        assert!((median - 100.0).abs() < 5.0, "median {median}");
    }

    #[test]
    fn coin_respects_probability() {
        let mut rng = derive_rng(9, "coin");
        let hits = (0..10_000).filter(|_| coin(&mut rng, 0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
        assert!(!coin(&mut rng, 0.0));
        assert!(coin(&mut rng, 1.0));
    }

    #[test]
    fn coin_clamps_out_of_range() {
        let mut rng = derive_rng(9, "coin2");
        assert!(coin(&mut rng, 2.0));
        assert!(!coin(&mut rng, -1.0));
    }
}
