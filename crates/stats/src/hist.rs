//! Histograms and the paper's zero-mode detection.
//!
//! Section 4: for an AS whose aggregate IPv6 performance is worse than IPv4,
//! the paper examines the distribution of per-site IPv6−IPv4 performance
//! differences. A *mode around zero* — at least one site whose difference is
//! within the 10% measurement confidence of IPv4 performance — indicates the
//! shared network path is fine and the deficit comes from servers.

use serde::{Deserialize, Serialize};

/// Fixed-width bin histogram over a closed range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `nbins` equal bins.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "nbins must be positive");
        assert!(hi > lo, "hi must exceed lo");
        Histogram { lo, hi, bins: vec![0; nbins], underflow: 0, overflow: 0 }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x > self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Center x of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Index of the highest bin (first one on ties), or `None` when empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total() == 0 {
            return None;
        }
        let mut best = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            if c > self.bins[best] {
                best = i;
            }
        }
        Some(best)
    }
}

/// Result of a zero-mode test over per-site performance differences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZeroMode {
    /// True if at least one site's relative difference is within tolerance.
    pub present: bool,
    /// Number of sites within tolerance of zero.
    pub sites_at_zero: usize,
    /// Total sites tested.
    pub total_sites: usize,
}

/// The paper's zero-mode rule.
///
/// `diffs_rel` holds, per site in an AS, the relative performance difference
/// `(v6 − v4) / v4`. *"A zero-mode is claimed, if there is at least one site
/// for which this difference is within 10% of IPv4 performance"* — i.e. at
/// least one `|diff| ≤ tolerance` (paper tolerance: 0.10).
pub fn zero_mode(diffs_rel: &[f64], tolerance: f64) -> ZeroMode {
    let sites_at_zero = diffs_rel.iter().filter(|d| d.abs() <= tolerance).count();
    ZeroMode { present: sites_at_zero >= 1, sites_at_zero, total_sites: diffs_rel.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_bins_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.99, 10.0] {
            h.push(x);
        }
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 2, "x == hi lands in last bin");
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_under_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-0.1);
        h.push(1.1);
        h.push(0.5);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(-1.0, 1.0, 20);
        for _ in 0..10 {
            h.push(0.02); // near zero
        }
        for _ in 0..3 {
            h.push(-0.8);
        }
        let m = h.mode_bin().unwrap();
        assert!((h.bin_center(m)).abs() < 0.1, "mode near zero, got {}", h.bin_center(m));
    }

    #[test]
    fn mode_bin_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.mode_bin(), None);
    }

    #[test]
    #[should_panic(expected = "nbins")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn zero_mode_single_site_within_tolerance() {
        // one site at -5% difference, rest badly negative
        let zm = zero_mode(&[-0.05, -0.5, -0.6, -0.4], 0.10);
        assert!(zm.present);
        assert_eq!(zm.sites_at_zero, 1);
        assert_eq!(zm.total_sites, 4);
    }

    #[test]
    fn zero_mode_absent_when_all_bad() {
        let zm = zero_mode(&[-0.5, -0.3, -0.2, -0.11], 0.10);
        assert!(!zm.present);
        assert_eq!(zm.sites_at_zero, 0);
    }

    #[test]
    fn zero_mode_empty_is_absent() {
        let zm = zero_mode(&[], 0.10);
        assert!(!zm.present);
        assert_eq!(zm.total_sites, 0);
    }

    #[test]
    fn zero_mode_boundary_inclusive() {
        let zm = zero_mode(&[0.10], 0.10);
        assert!(zm.present, "exactly-at-tolerance counts");
    }

    proptest! {
        #[test]
        fn histogram_conserves_samples(xs in proptest::collection::vec(-2.0f64..2.0, 0..200)) {
            let mut h = Histogram::new(-1.0, 1.0, 16);
            for &x in &xs {
                h.push(x);
            }
            prop_assert_eq!(h.total() + h.underflow + h.overflow, xs.len() as u64);
        }

        #[test]
        fn zero_mode_count_matches_filter(
            xs in proptest::collection::vec(-1.0f64..1.0, 0..100),
            tol in 0.01f64..0.5,
        ) {
            let zm = zero_mode(&xs, tol);
            let expect = xs.iter().filter(|d| d.abs() <= tol).count();
            prop_assert_eq!(zm.sites_at_zero, expect);
            prop_assert_eq!(zm.present, expect >= 1);
        }

        #[test]
        fn bin_centers_inside_range(nbins in 1usize..64) {
            let h = Histogram::new(-3.0, 7.0, nbins);
            for i in 0..nbins {
                let c = h.bin_center(i);
                prop_assert!(c > -3.0 && c < 7.0);
            }
        }
    }
}
