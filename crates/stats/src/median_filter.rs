//! Median-filter transition detection.
//!
//! Section 5.1, footnote 16 of the paper: *"Transitions were detected using a
//! median filter of length 11 configured to report changes in performance of
//! magnitude greater than 30%, i.e., it triggered after 6 or more consecutive
//! samples 30% higher (lower) than the previous ones."*
//!
//! [`MedianFilter`] is the generic sliding-window median; [`detect_transition`]
//! applies the paper's exact rule to a site's per-round performance series.

use serde::{Deserialize, Serialize};

/// Sliding-window median filter over an `f64` series.
#[derive(Debug, Clone)]
pub struct MedianFilter {
    window: usize,
}

impl MedianFilter {
    /// Creates a filter with the given (odd, nonzero) window length.
    ///
    /// # Panics
    /// Panics if `window` is zero or even — the median of an even window is
    /// ambiguous and the paper uses 11.
    pub fn new(window: usize) -> Self {
        assert!(window % 2 == 1 && window > 0, "window must be odd and > 0");
        MedianFilter { window }
    }

    /// Window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Filters `xs`, producing one median per input position.
    ///
    /// Edges use a shrunken window (the samples that exist within half the
    /// window on each side), so the output has the same length as the input.
    pub fn filter(&self, xs: &[f64]) -> Vec<f64> {
        let half = self.window / 2;
        let mut out = Vec::with_capacity(xs.len());
        let mut buf: Vec<f64> = Vec::with_capacity(self.window);
        for i in 0..xs.len() {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(xs.len());
            buf.clear();
            buf.extend_from_slice(&xs[lo..hi]);
            buf.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median filter input"));
            let m = buf.len();
            let med = if m % 2 == 1 { buf[m / 2] } else { (buf[m / 2 - 1] + buf[m / 2]) / 2.0 };
            out.push(med);
        }
        out
    }
}

/// A detected sharp transition in a performance series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Index (round number) at which the shift is first sustained.
    pub index: usize,
    /// Relative change of the post-shift level vs the pre-shift level;
    /// positive for an upward shift.
    pub magnitude: f64,
    /// True if performance jumped up, false if it dropped.
    pub upward: bool,
}

/// Applies the paper's transition rule to a per-round performance series.
///
/// A transition is reported at index `i` when the median-filtered series
/// shows `consecutive` (paper: 6) samples starting at `i` that are all at
/// least `threshold` (paper: 0.30) above — or all below — the filtered level
/// just before `i`. Returns the first such transition, or `None`.
pub fn detect_transition(
    xs: &[f64],
    window: usize,
    threshold: f64,
    consecutive: usize,
) -> Option<Transition> {
    if xs.len() < consecutive + 1 {
        return None;
    }
    let filtered = MedianFilter::new(window).filter(xs);
    for i in 1..filtered.len().saturating_sub(consecutive - 1) {
        let base = filtered[i - 1];
        if base <= 0.0 {
            continue;
        }
        let run = &filtered[i..i + consecutive];
        let all_up = run.iter().all(|&x| x >= base * (1.0 + threshold));
        let all_down = run.iter().all(|&x| x <= base * (1.0 - threshold));
        if all_up || all_down {
            let post = run.iter().sum::<f64>() / consecutive as f64;
            return Some(Transition { index: i, magnitude: (post - base) / base, upward: all_up });
        }
    }
    None
}

/// The paper's exact configuration: window 11, 30% magnitude, 6 consecutive.
pub fn detect_transition_paper(xs: &[f64]) -> Option<Transition> {
    detect_transition(xs, 11, 0.30, 6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn median_of_constant_is_constant() {
        let f = MedianFilter::new(11);
        let xs = [3.0; 20];
        assert_eq!(f.filter(&xs), vec![3.0; 20]);
    }

    #[test]
    fn median_removes_single_spike() {
        let f = MedianFilter::new(5);
        let mut xs = vec![10.0; 15];
        xs[7] = 1000.0;
        let out = f.filter(&xs);
        assert_eq!(out[7], 10.0, "lone spike must not survive a width-5 median");
    }

    #[test]
    fn median_window_shrinks_at_edges() {
        let f = MedianFilter::new(5);
        let xs = [1.0, 2.0, 3.0];
        let out = f.filter(&xs);
        assert_eq!(out.len(), 3);
        // position 0 uses window [1,2,3] -> 2
        assert_eq!(out[0], 2.0);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_window_panics() {
        MedianFilter::new(4);
    }

    #[test]
    fn detects_upward_step() {
        let mut xs = vec![50.0; 12];
        xs.extend(vec![80.0; 12]); // +60%
        let t = detect_transition_paper(&xs).expect("step must be detected");
        assert!(t.upward);
        assert!(t.magnitude > 0.30);
        // The step is at raw index 12; median smearing allows a few positions.
        assert!((8..=16).contains(&t.index), "index {}", t.index);
    }

    #[test]
    fn detects_downward_step() {
        let mut xs = vec![100.0; 12];
        xs.extend(vec![60.0; 12]); // -40%
        let t = detect_transition_paper(&xs).expect("drop must be detected");
        assert!(!t.upward);
        assert!(t.magnitude < -0.30);
    }

    #[test]
    fn ignores_small_step() {
        let mut xs = vec![100.0; 12];
        xs.extend(vec![115.0; 12]); // +15% < 30%
        assert_eq!(detect_transition_paper(&xs), None);
    }

    #[test]
    fn ignores_short_burst() {
        // 4 high samples then back to baseline: fewer than 6 consecutive.
        let mut xs = vec![100.0; 12];
        xs.extend(vec![200.0; 4]);
        xs.extend(vec![100.0; 12]);
        assert_eq!(detect_transition_paper(&xs), None);
    }

    #[test]
    fn short_series_returns_none() {
        assert_eq!(detect_transition_paper(&[100.0; 4]), None);
        assert_eq!(detect_transition_paper(&[]), None);
    }

    #[test]
    fn noisy_step_still_detected() {
        // baseline ~100 with +-5 noise, then ~160 with noise
        let mut xs: Vec<f64> = (0..14).map(|i| 100.0 + (i % 5) as f64 - 2.0).collect();
        xs.extend((0..14).map(|i| 160.0 + (i % 7) as f64 - 3.0));
        let t = detect_transition_paper(&xs).expect("noisy step detected");
        assert!(t.upward);
    }

    proptest! {
        #[test]
        fn median_output_within_input_range(
            xs in proptest::collection::vec(0.0f64..1e4, 1..100),
            w in prop_oneof![Just(3usize), Just(5), Just(7), Just(11)],
        ) {
            let out = MedianFilter::new(w).filter(&xs);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for m in out {
                prop_assert!(m >= lo && m <= hi);
            }
        }

        #[test]
        fn constant_series_never_triggers(level in 1.0f64..1e4, n in 7usize..60) {
            let xs = vec![level; n];
            prop_assert_eq!(detect_transition_paper(&xs), None);
        }

        #[test]
        fn monotone_small_drift_never_triggers(n in 20usize..60) {
            // 0.5% per-round drift stays under the 30% threshold locally
            let xs: Vec<f64> = (0..n).map(|i| 100.0 * 1.005f64.powi(i as i32)).collect();
            // Only triggers if cumulative drift within ~a window exceeds 30%,
            // which 0.5%/round cannot do over 11 samples.
            prop_assert_eq!(detect_transition_paper(&xs), None);
        }
    }
}
