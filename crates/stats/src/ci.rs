//! Student-t confidence intervals and the paper's repeat-until-confident rule.
//!
//! The monitoring tool downloads a page repeatedly "until the measured
//! average download time is within 10% of the mean with 95% confidence"
//! (Section 3). [`RelativeCiRule`] encodes exactly that stopping rule; the
//! same rule is reused at analysis time to decide whether a site's
//! months-long sample set is usable at all.

use crate::welford::Welford;
use serde::{Deserialize, Serialize};

/// Two-sided Student-t critical values.
///
/// Exact table for small degrees of freedom where the t correction matters,
/// falling back to a Cornish–Fisher-style expansion of the normal quantile
/// for larger `df`. Accurate to ~1e-3 over the supported confidence levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StudentT {
    /// 90% two-sided confidence.
    P90,
    /// 95% two-sided confidence (the paper's level).
    P95,
    /// 99% two-sided confidence.
    P99,
}

impl StudentT {
    /// Two-sided critical value t*(df) for this confidence level.
    ///
    /// `df` is the degrees of freedom (n − 1). `df == 0` returns infinity:
    /// a single sample admits no confidence statement.
    pub fn critical(self, df: u64) -> f64 {
        if df == 0 {
            return f64::INFINITY;
        }
        let table: &[f64] = match self {
            // df = 1..=30
            StudentT::P90 => &[
                6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782,
                1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
                1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
            ],
            StudentT::P95 => &[
                12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201,
                2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
                2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
            ],
            StudentT::P99 => &[
                63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106,
                3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807,
                2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
            ],
        };
        if (df as usize) <= table.len() {
            return table[df as usize - 1];
        }
        // Normal quantile z for the level, then the classic t expansion
        // t ≈ z + (z^3+z)/(4 df) + (5z^5+16z^3+3z)/(96 df^2).
        let z: f64 = match self {
            StudentT::P90 => 1.6448536269514722,
            StudentT::P95 => 1.959963984540054,
            StudentT::P99 => 2.5758293035489004,
        };
        let d = df as f64;
        z + (z.powi(3) + z) / (4.0 * d)
            + (5.0 * z.powi(5) + 16.0 * z.powi(3) + 3.0 * z) / (96.0 * d * d)
    }

    /// The confidence level as a fraction (e.g. 0.95).
    pub fn level(self) -> f64 {
        match self {
            StudentT::P90 => 0.90,
            StudentT::P95 => 0.95,
            StudentT::P99 => 0.99,
        }
    }
}

/// A confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval; the interval is `mean ± half_width`.
    pub half_width: f64,
    /// Number of samples the interval was computed from.
    pub n: u64,
}

impl ConfidenceInterval {
    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Half-width relative to the mean's magnitude; infinity for a zero mean
    /// with nonzero width.
    pub fn relative_half_width(&self) -> f64 {
        if self.half_width == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Computes the Student-t confidence interval of the mean of `acc`.
pub fn mean_ci(acc: &Welford, level: StudentT) -> ConfidenceInterval {
    let n = acc.count();
    let half_width = if n < 2 { f64::INFINITY } else { level.critical(n - 1) * acc.std_error() };
    ConfidenceInterval { mean: acc.mean(), half_width, n }
}

/// The paper's stopping rule: keep sampling until the `level` confidence
/// interval is within `relative_tolerance` (e.g. 0.10) of the mean, with a
/// floor on sample count and a cap to bound monitoring cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelativeCiRule {
    /// Confidence level of the interval (paper: 95%).
    pub level: StudentT,
    /// Target relative half-width (paper: 0.10, i.e. "within 10% of the mean").
    pub relative_tolerance: f64,
    /// Never stop before this many samples.
    pub min_samples: u64,
    /// Give up (unconfident) after this many samples.
    pub max_samples: u64,
}

impl RelativeCiRule {
    /// The configuration used throughout the paper: 95% CI within 10% of the
    /// mean, at least 3 downloads, at most 30 per site per round.
    pub fn paper() -> Self {
        RelativeCiRule {
            level: StudentT::P95,
            relative_tolerance: 0.10,
            min_samples: 3,
            max_samples: 30,
        }
    }

    /// Returns true when the accumulated samples satisfy the confidence
    /// target.
    pub fn satisfied(&self, acc: &Welford) -> bool {
        if acc.count() < self.min_samples {
            return false;
        }
        let ci = mean_ci(acc, self.level);
        ci.relative_half_width() <= self.relative_tolerance
    }

    /// Decision after one more sample: `Continue`, `Accept` (target met) or
    /// `GiveUp` (cap reached without meeting the target).
    pub fn decide(&self, acc: &Welford) -> SamplingDecision {
        if self.satisfied(acc) {
            SamplingDecision::Accept
        } else if acc.count() >= self.max_samples {
            SamplingDecision::GiveUp
        } else {
            SamplingDecision::Continue
        }
    }
}

/// Outcome of applying a [`RelativeCiRule`] after a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingDecision {
    /// Take another sample.
    Continue,
    /// Confidence target met; record the mean.
    Accept,
    /// Sample cap reached without confidence; discard.
    GiveUp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn critical_values_match_tables() {
        assert!((StudentT::P95.critical(1) - 12.706).abs() < 1e-9);
        assert!((StudentT::P95.critical(10) - 2.228).abs() < 1e-9);
        assert!((StudentT::P95.critical(30) - 2.042).abs() < 1e-9);
        assert!((StudentT::P90.critical(5) - 2.015).abs() < 1e-9);
        assert!((StudentT::P99.critical(2) - 9.925).abs() < 1e-9);
    }

    #[test]
    fn critical_value_large_df_approaches_z() {
        // t(1000) at 95% is 1.9623
        let t = StudentT::P95.critical(1000);
        assert!((t - 1.9623).abs() < 2e-3, "got {t}");
        // and converges to z from above
        assert!(StudentT::P95.critical(100_000) > 1.9599);
        assert!(StudentT::P95.critical(100_000) < 1.961);
    }

    #[test]
    fn critical_value_df40_accurate() {
        // published t(40, 95%) = 2.021
        assert!((StudentT::P95.critical(40) - 2.021).abs() < 2e-3);
        // published t(60, 95%) = 2.000
        assert!((StudentT::P95.critical(60) - 2.000).abs() < 2e-3);
    }

    #[test]
    fn zero_df_gives_infinite() {
        assert!(StudentT::P95.critical(0).is_infinite());
    }

    #[test]
    fn critical_table_boundary_df() {
        // df = 0 (zero or one sample) must not panic at any level
        for level in [StudentT::P90, StudentT::P95, StudentT::P99] {
            assert!(level.critical(0).is_infinite());
            assert!(level.critical(1).is_finite());
            // df 30 is the last table row, df 31 the first Cornish–Fisher
            // value: the handoff must stay monotone and nearly seamless.
            let t30 = level.critical(30);
            let t31 = level.critical(31);
            assert!(t31 < t30, "t(31)={t31} should be below t(30)={t30}");
            assert!(t30 - t31 < 0.01, "table/series gap too wide: {}", t30 - t31);
        }
    }

    #[test]
    fn ci_of_constant_samples_is_tight() {
        let acc: Welford = [5.0; 10].into_iter().collect();
        let ci = mean_ci(&acc, StudentT::P95);
        assert_eq!(ci.mean, 5.0);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.relative_half_width(), 0.0);
    }

    #[test]
    fn ci_single_sample_is_infinite() {
        let acc: Welford = [5.0].into_iter().collect();
        let ci = mean_ci(&acc, StudentT::P95);
        assert!(ci.half_width.is_infinite());
    }

    #[test]
    fn ci_known_example() {
        // samples 10, 12, 14: mean 12, sd 2, se 2/sqrt(3), t(2)=4.303
        let acc: Welford = [10.0, 12.0, 14.0].into_iter().collect();
        let ci = mean_ci(&acc, StudentT::P95);
        let expected = 4.303 * 2.0 / 3f64.sqrt();
        assert!((ci.half_width - expected).abs() < 1e-9);
        assert!((ci.lo() - (12.0 - expected)).abs() < 1e-12);
        assert!((ci.hi() - (12.0 + expected)).abs() < 1e-12);
    }

    #[test]
    fn rule_accepts_low_variance_quickly() {
        let rule = RelativeCiRule::paper();
        let mut acc = Welford::new();
        let mut decisions = vec![];
        for x in [100.0, 101.0, 99.5, 100.2] {
            acc.push(x);
            decisions.push(rule.decide(&acc));
        }
        // first two: below min samples
        assert_eq!(decisions[0], SamplingDecision::Continue);
        assert_eq!(decisions[1], SamplingDecision::Continue);
        // by sample 3 or 4 the CI is tiny relative to 100
        assert!(decisions[2..].contains(&SamplingDecision::Accept));
    }

    #[test]
    fn rule_gives_up_on_wild_samples() {
        let rule = RelativeCiRule {
            level: StudentT::P95,
            relative_tolerance: 0.10,
            min_samples: 3,
            max_samples: 8,
        };
        // alternating 1 and 100: never converges to within 10%
        let mut acc = Welford::new();
        let mut last = SamplingDecision::Continue;
        for i in 0..8 {
            acc.push(if i % 2 == 0 { 1.0 } else { 100.0 });
            last = rule.decide(&acc);
            if last != SamplingDecision::Continue {
                break;
            }
        }
        assert_eq!(last, SamplingDecision::GiveUp);
    }

    #[test]
    fn rule_respects_min_samples() {
        let rule = RelativeCiRule {
            level: StudentT::P95,
            relative_tolerance: 0.5,
            min_samples: 5,
            max_samples: 30,
        };
        let mut acc = Welford::new();
        for _ in 0..4 {
            acc.push(7.0);
            assert_eq!(rule.decide(&acc), SamplingDecision::Continue);
        }
        acc.push(7.0);
        assert_eq!(rule.decide(&acc), SamplingDecision::Accept);
    }

    proptest! {
        #[test]
        fn critical_decreases_with_df(df in 1u64..500) {
            prop_assert!(StudentT::P95.critical(df) >= StudentT::P95.critical(df + 1) - 1e-9);
        }

        #[test]
        fn critical_never_panics_and_stays_sane(df in 0u64..200) {
            for level in [StudentT::P90, StudentT::P95, StudentT::P99] {
                let t = level.critical(df);
                if df == 0 {
                    prop_assert!(t.is_infinite());
                } else {
                    prop_assert!(t.is_finite() && t > 0.0, "t({df})={t}");
                    prop_assert!(t >= level.critical(df + 1) - 1e-9);
                }
            }
        }

        #[test]
        fn higher_level_wider_interval(df in 1u64..500) {
            prop_assert!(StudentT::P90.critical(df) < StudentT::P95.critical(df));
            prop_assert!(StudentT::P95.critical(df) < StudentT::P99.critical(df));
        }

        #[test]
        fn ci_contains_mean(xs in proptest::collection::vec(0.1f64..1e4, 2..100)) {
            let acc: Welford = xs.iter().copied().collect();
            let ci = mean_ci(&acc, StudentT::P95);
            prop_assert!(ci.lo() <= ci.mean && ci.mean <= ci.hi());
        }

        #[test]
        fn accepted_samples_really_meet_target(
            base in 10.0f64..1000.0,
            noise in proptest::collection::vec(-0.5f64..0.5, 3..30),
        ) {
            let rule = RelativeCiRule::paper();
            let mut acc = Welford::new();
            for d in &noise {
                acc.push(base + d);
                if rule.decide(&acc) == SamplingDecision::Accept {
                    let ci = mean_ci(&acc, StudentT::P95);
                    prop_assert!(ci.relative_half_width() <= 0.10 + 1e-12);
                    break;
                }
            }
        }
    }
}
