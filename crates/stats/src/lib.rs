//! Statistics substrate for the `ipv6web` measurement study.
//!
//! The paper's monitoring tool and analysis pipeline lean on a small set of
//! statistical primitives:
//!
//! * **Repeat-until-confident sampling** — page downloads repeat until the
//!   95% confidence interval of the mean download time is within 10% of the
//!   mean ([`ci::RelativeCiRule`]).
//! * **Transition detection** — sites whose performance shifted sharply
//!   during the campaign are excluded; the paper uses a length-11 median
//!   filter triggering on ≥30% sustained change ([`median_filter`]).
//! * **Trend detection** — sites with a steady upward/downward drift are
//!   excluded via linear regression ([`regress`]).
//! * **Zero-mode detection** — an AS whose per-site IPv6−IPv4 performance
//!   difference distribution has a mode at zero indicates the *network* is
//!   not responsible for AS-level differences ([`hist`]).
//!
//! Everything here is deterministic and allocation-light; the monitor calls
//! these on hot paths.

pub mod ci;
pub mod hist;
pub mod median_filter;
pub mod quantile;
pub mod regress;
pub mod rng;
pub mod welford;

pub use ci::{mean_ci, ConfidenceInterval, RelativeCiRule, StudentT};
pub use hist::{zero_mode, Histogram, ZeroMode};
pub use median_filter::{detect_transition, detect_transition_paper, MedianFilter, Transition};
pub use quantile::{quantile, summary, summary_sorted, Summary};
pub use regress::{linear_regression, trend, trend_paper, Regression, Trend};
pub use rng::{coin, derive_rng, lognormal, StudyRng};
pub use welford::Welford;
