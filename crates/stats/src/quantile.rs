//! Quantiles and five-number summaries for reporting distributions.

use serde::{Deserialize, Serialize};

/// Five-number summary plus mean and count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub min: f64,
    pub p25: f64,
    pub median: f64,
    pub p75: f64,
    pub max: f64,
    pub mean: f64,
}

/// Linear-interpolation quantile (type 7, the R/NumPy default) of `sorted`.
///
/// `sorted` must be ascending; `q` in `[0, 1]`. Returns `None` on empty input.
pub fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Sorts a copy of `xs` and produces a [`Summary`]. Returns `None` on empty
/// input or any NaN.
pub fn summary(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    Some(Summary {
        n: s.len(),
        min: s[0],
        p25: quantile(&s, 0.25)?,
        median: quantile(&s, 0.5)?,
        p75: quantile(&s, 0.75)?,
        max: s[s.len() - 1],
        mean: s.iter().sum::<f64>() / s.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantile_endpoints() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&s, 0.0), Some(1.0));
        assert_eq!(quantile(&s, 1.0), Some(4.0));
    }

    #[test]
    fn quantile_interpolates() {
        let s = [10.0, 20.0];
        assert_eq!(quantile(&s, 0.5), Some(15.0));
        assert_eq!(quantile(&s, 0.25), Some(12.5));
    }

    #[test]
    fn quantile_empty_none() {
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn summary_known() {
        let s = summary(&[3.0, 1.0, 2.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
    }

    #[test]
    fn summary_rejects_nan() {
        assert!(summary(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn summary_empty_none() {
        assert!(summary(&[]).is_none());
    }

    proptest! {
        #[test]
        fn quantile_monotone_in_q(
            mut xs in proptest::collection::vec(-1e4f64..1e4, 1..100),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, lo).unwrap() <= quantile(&xs, hi).unwrap() + 1e-9);
        }

        #[test]
        fn summary_ordering_invariant(xs in proptest::collection::vec(-1e4f64..1e4, 1..100)) {
            let s = summary(&xs).unwrap();
            prop_assert!(s.min <= s.p25 + 1e-9);
            prop_assert!(s.p25 <= s.median + 1e-9);
            prop_assert!(s.median <= s.p75 + 1e-9);
            prop_assert!(s.p75 <= s.max + 1e-9);
            prop_assert!(s.min <= s.mean && s.mean <= s.max);
        }
    }
}
