//! Quantiles and five-number summaries for reporting distributions.

use serde::{Deserialize, Serialize};

/// Five-number summary plus mean and count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub min: f64,
    pub p25: f64,
    pub median: f64,
    pub p75: f64,
    pub max: f64,
    pub mean: f64,
}

/// Linear-interpolation quantile (type 7, the R/NumPy default) of `sorted`.
///
/// `sorted` must be ascending; `q` in `[0, 1]`. Returns `None` on empty input.
pub fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Produces a [`Summary`] of an already-sorted, NaN-free slice without
/// allocating — the entry point for grouped analyses that sort each group
/// once and summarize in place. Returns `None` on empty input or when a NaN
/// is present (under a total order NaNs surface at the ends, so both ends
/// are checked).
pub fn summary_sorted(sorted: &[f64]) -> Option<Summary> {
    let (&first, &last) = (sorted.first()?, sorted.last()?);
    if first.is_nan() || last.is_nan() {
        return None;
    }
    Some(Summary {
        n: sorted.len(),
        min: first,
        p25: quantile(sorted, 0.25)?,
        median: quantile(sorted, 0.5)?,
        p75: quantile(sorted, 0.75)?,
        max: last,
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
    })
}

/// Sorts a copy of `xs` and produces a [`Summary`]. Returns `None` on empty
/// input or any NaN. The NaN check is folded into the single copy pass (so
/// bad input bails before the sort), and the sort is unstable — `f64`s that
/// compare equal are interchangeable.
pub fn summary(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let mut s = Vec::with_capacity(xs.len());
    for &x in xs {
        if x.is_nan() {
            return None;
        }
        s.push(x);
    }
    s.sort_unstable_by(f64::total_cmp);
    summary_sorted(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantile_endpoints() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&s, 0.0), Some(1.0));
        assert_eq!(quantile(&s, 1.0), Some(4.0));
    }

    #[test]
    fn quantile_interpolates() {
        let s = [10.0, 20.0];
        assert_eq!(quantile(&s, 0.5), Some(15.0));
        assert_eq!(quantile(&s, 0.25), Some(12.5));
    }

    #[test]
    fn quantile_empty_none() {
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn summary_known() {
        let s = summary(&[3.0, 1.0, 2.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
    }

    #[test]
    fn summary_rejects_nan() {
        assert!(summary(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn summary_empty_none() {
        assert!(summary(&[]).is_none());
    }

    #[test]
    fn summary_sorted_matches_summary_without_alloc() {
        let mut xs = vec![3.0, 1.0, 2.0, 4.0, 5.0];
        let via_copy = summary(&xs).unwrap();
        xs.sort_unstable_by(f64::total_cmp);
        assert_eq!(summary_sorted(&xs), Some(via_copy));
    }

    #[test]
    fn summary_sorted_rejects_nan_and_empty() {
        assert!(summary_sorted(&[]).is_none());
        assert!(summary_sorted(&[1.0, f64::NAN]).is_none());
        // a sign-negative NaN sorts below everything under total order
        assert!(summary_sorted(&[-f64::NAN, 1.0]).is_none());
    }

    proptest! {
        #[test]
        fn quantile_monotone_in_q(
            mut xs in proptest::collection::vec(-1e4f64..1e4, 1..100),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, lo).unwrap() <= quantile(&xs, hi).unwrap() + 1e-9);
        }

        #[test]
        fn summary_ordering_invariant(xs in proptest::collection::vec(-1e4f64..1e4, 1..100)) {
            let s = summary(&xs).unwrap();
            prop_assert!(s.min <= s.p25 + 1e-9);
            prop_assert!(s.p25 <= s.median + 1e-9);
            prop_assert!(s.median <= s.p75 + 1e-9);
            prop_assert!(s.p75 <= s.max + 1e-9);
            prop_assert!(s.min <= s.mean && s.mean <= s.max);
        }
    }
}
