//! Welford's online algorithm for numerically stable running mean/variance.
//!
//! The monitor accumulates download-time samples one at a time and asks,
//! after each sample, whether the confidence target has been met. Welford's
//! update keeps that O(1) per sample without catastrophic cancellation.

use serde::{Deserialize, Serialize};

/// Running mean/variance accumulator (Welford's online algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (n−1 denominator); 0.0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (stddev / √n); 0.0 when empty.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest sample seen; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample seen; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.n = n_total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut w = Welford::new();
        for x in iter {
            w.push(x);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = if xs.len() < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        };
        (mean, var)
    }

    #[test]
    fn empty_accumulator() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn single_sample() {
        let w: Welford = [42.0].into_iter().collect();
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), Some(42.0));
        assert_eq!(w.max(), Some(42.0));
    }

    #[test]
    fn known_values() {
        let w: Welford = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // population variance is 4 => sample variance is 32/7
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn merge_matches_sequential() {
        let xs = [1.0, 2.5, 3.7, 10.0, -4.0];
        let ys = [0.5, 100.0, 2.0];
        let mut a: Welford = xs.into_iter().collect();
        let b: Welford = ys.into_iter().collect();
        a.merge(&b);
        let all: Welford = xs.into_iter().chain(ys).collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Welford = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    proptest! {
        #[test]
        fn matches_naive_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let w: Welford = xs.iter().copied().collect();
            let (mean, var) = naive_mean_var(&xs);
            prop_assert!((w.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
            prop_assert!((w.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        }

        #[test]
        fn merge_is_order_independent(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..50),
            ys in proptest::collection::vec(-1e3f64..1e3, 1..50),
        ) {
            let a: Welford = xs.iter().copied().collect();
            let b: Welford = ys.iter().copied().collect();
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
            prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
        }

        #[test]
        fn min_max_bound_mean(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let w: Welford = xs.iter().copied().collect();
            prop_assert!(w.min().unwrap() <= w.mean() + 1e-9);
            prop_assert!(w.max().unwrap() >= w.mean() - 1e-9);
        }
    }
}
