//! The central-repository workflow: each vantage point runs its campaign,
//! archives its local database as JSON, and the aggregation site loads and
//! merges them — exactly the paper's "common repository at Penn aggregates
//! the measurement data from the different vantage points".

use ipv6web_alexa::TopList;
use ipv6web_bgp::BgpTable;
use ipv6web_monitor::{
    run_campaign, CampaignConfig, DisturbanceConfig, Disturbances, MonitorDb, ProbeContext,
    VantageKind, VantagePoint,
};
use ipv6web_netsim::TcpConfig;
use ipv6web_stats::RelativeCiRule;
use ipv6web_topology::{generate, AsId, Family, Tier, TopologyConfig};
use ipv6web_web::{build_zone, population, PopulationConfig};

#[test]
fn campaign_snapshot_and_central_merge() {
    let topo = generate(&TopologyConfig::test_small(), 99);
    let mut pcfg = PopulationConfig::test_small(10);
    pcfg.n_sites = 250;
    let (sites, names) = population::generate(&pcfg, &topo, 99);
    let zone = build_zone(&topo, &sites, names);
    let list = TopList::from_parts(sites.iter().map(|s| (s.id.0, s.rank, s.first_seen_week)));
    let disturbances = Disturbances::generate(&DisturbanceConfig::none(), sites.len(), 10, 99);

    let vantage_ases: Vec<AsId> = topo
        .nodes()
        .iter()
        .filter(|n| n.tier == Tier::Access && n.is_dual_stack())
        .map(|n| n.id)
        .take(2)
        .collect();
    assert_eq!(vantage_ases.len(), 2, "need two vantage points");

    let mut dests: Vec<AsId> = sites.iter().map(|s| s.v4_as).collect();
    dests.extend(sites.iter().filter_map(|s| s.v6.as_ref().map(|v| v.dest_as)));
    dests.sort();
    dests.dedup();

    let dir = std::env::temp_dir().join("ipv6web-snapshot-flow");
    std::fs::create_dir_all(&dir).unwrap();

    let mut archived_paths = Vec::new();
    for (i, &as_id) in vantage_ases.iter().enumerate() {
        let name = format!("VP{i}");
        let t4 = BgpTable::build(&topo, as_id, Family::V4, &dests);
        let t6 = BgpTable::build(&topo, as_id, Family::V6, &dests);
        let vantage = VantagePoint {
            name: name.clone(),
            location: "Lab".into(),
            as_id,
            start_week: 0,
            has_as_path: true,
            white_listed: false,
            kind: VantageKind::Academic,
            external_inputs: false,
            stack: ipv6web_xlat::ClientStack::DualStack,
        };
        let ctx = ProbeContext {
            topo: &topo,
            sites: &sites,
            zone: &zone,
            table_v4: &t4,
            table_v6: &t6,
            disturbances: &disturbances,
            tcp: TcpConfig::paper(),
            ci_rule: RelativeCiRule::paper(),
            identity_threshold: 0.06,
            round_noise_sigma: 0.05,
            seed: 99,
            vantage_name: &name,
            white_listed: false,
            v6_epoch: None,
            faults: None,
            stack: ipv6web_xlat::ClientStack::DualStack,
            xlat: None,
        };
        let cfg =
            CampaignConfig { total_weeks: 10, workers: 4, max_workers: 25, ipv6_day_rounds: 2 };
        let db = run_campaign(&ctx, &vantage, &list, &[], |_| 0, &cfg).unwrap();
        assert!(!db.is_empty());
        let path = dir.join(format!("{name}.json"));
        db.save_json(&path).unwrap();
        archived_paths.push((path, db));
    }

    // the central repository reloads the archives and merges them
    let mut central = MonitorDb::new("central repository");
    for (path, original) in &archived_paths {
        let loaded = MonitorDb::load_json(path).unwrap();
        assert_eq!(&loaded, original, "archive must round-trip exactly");
        central.merge_samples_from(&loaded);
    }
    assert!(central.len() >= archived_paths[0].1.len());
    // merged sample counts are the per-vantage sums
    let merged_samples: usize = central.iter().map(|(_, r)| r.samples_v4.len()).sum();
    let individual: usize = archived_paths
        .iter()
        .map(|(_, db)| db.iter().map(|(_, r)| r.samples_v4.len()).sum::<usize>())
        .sum();
    assert_eq!(merged_samples, individual);

    for (path, _) in &archived_paths {
        std::fs::remove_file(path).ok();
    }
}
