//! Campaign execution: weekly rounds over a worker pool.
//!
//! Mirrors the tool's structure from Fig 2: each round refreshes the
//! ranked list (new sites join the monitored set permanently), randomizes
//! the site order, and fans the sites out to a pool of worker threads over
//! a bounded crossbeam channel (capacity = worker count, so a slow round
//! never buffers the whole site list). The worker count is validated
//! against [`CampaignConfig::max_workers`] up front — an out-of-range
//! configuration is an error, not a silent clamp. Every probe derives its
//! randomness from `(seed, vantage, week, site)`, so results are
//! independent of thread scheduling — the parallel run and a serial run
//! produce the same database.

use crate::db::MonitorDb;
use crate::probe::{probe_site, ProbeContext, ProbeOutcome};
use crate::vantage::VantagePoint;
use ipv6web_alexa::{MonitoredSet, TopList};
use ipv6web_dns::Resolver;
use ipv6web_stats::derive_rng;
use ipv6web_web::SiteId;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Campaign execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Campaign length, weeks (one round per week, as the paper's
    /// "approximately bi-weekly to weekly" cadence).
    pub total_weeks: u32,
    /// Worker threads. Must be in `1..=max_workers`; see [`Self::validate`].
    pub workers: usize,
    /// Hard cap on worker threads (the paper's tool ran "no more than 25"
    /// parallel monitoring threads).
    pub max_workers: usize,
    /// Number of World IPv6 Day rounds (paper: every 30 min for a day).
    pub ipv6_day_rounds: u32,
}

impl CampaignConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        CampaignConfig { total_weeks: 52, workers: 25, max_workers: 25, ipv6_day_rounds: 48 }
    }

    /// A fast configuration for tests.
    pub fn test_small() -> Self {
        CampaignConfig { total_weeks: 20, workers: 4, max_workers: 25, ipv6_day_rounds: 4 }
    }

    /// Checks the worker settings. Replaces the old behavior of silently
    /// clamping any requested count into `1..=25`.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_workers == 0 {
            return Err("max_workers must be at least 1".into());
        }
        if self.workers == 0 {
            return Err("workers must be at least 1".into());
        }
        if self.workers > self.max_workers {
            return Err(format!(
                "workers ({}) exceeds max_workers ({})",
                self.workers, self.max_workers
            ));
        }
        Ok(())
    }

    /// The validated worker count; panics with the validation error on a
    /// misconfigured campaign (callers that want a `Result` use
    /// [`Self::validate`] first).
    pub fn validated_workers(&self) -> usize {
        if let Err(e) = self.validate() {
            panic!("invalid campaign config: {e}");
        }
        self.workers
    }
}

/// Applies one probe outcome to the database.
fn apply_outcome(
    db: &mut MonitorDb,
    site: SiteId,
    added_week: u32,
    week: u32,
    outcome: ProbeOutcome,
) {
    let rec = db.record_mut(site, added_week);
    match outcome {
        ProbeOutcome::NxDomain => {
            rec.has_a = false;
        }
        ProbeOutcome::V4Only => {
            rec.has_a = true;
            rec.has_aaaa = false;
        }
        ProbeOutcome::Unroutable(_) => {
            rec.has_a = true;
            rec.has_aaaa = true;
            rec.dual_since.get_or_insert(week);
        }
        ProbeOutcome::DifferentContent => {
            rec.has_a = true;
            rec.has_aaaa = true;
            rec.dual_since.get_or_insert(week);
            rec.content_identical = Some(false);
        }
        ProbeOutcome::Measured { v4, v6 } => {
            rec.has_a = true;
            rec.has_aaaa = true;
            rec.dual_since.get_or_insert(week);
            rec.content_identical = Some(true);
            rec.samples_v4.push(v4);
            rec.samples_v6.push(v6);
        }
        ProbeOutcome::Unconfident(_) => {
            rec.has_a = true;
            rec.has_aaaa = true;
            rec.dual_since.get_or_insert(week);
            rec.unconfident_rounds += 1;
        }
    }
}

/// Runs one round's sites through the worker pool, returning
/// `(site, outcome)` pairs sorted by site id so callers never observe
/// completion order. `workers` must already be validated
/// ([`CampaignConfig::validated_workers`]).
fn run_pool(
    ctx: &ProbeContext<'_>,
    sites: &[SiteId],
    week: u32,
    salt: u32,
    ipv6_day_mode: bool,
    workers: usize,
) -> Vec<(SiteId, ProbeOutcome)> {
    let workers = workers.min(sites.len().max(1));
    ipv6web_obs::inc("monitor.rounds");
    ipv6web_obs::gauge_max("monitor.peak_workers", workers as u64);
    if workers == 1 {
        let mut resolver = Resolver::new();
        let mut out: Vec<(SiteId, ProbeOutcome)> = sites
            .iter()
            .map(|&s| (s, probe_site(ctx, &mut resolver, s, week, salt, ipv6_day_mode)))
            .collect();
        out.sort_by_key(|(s, _)| s.0);
        return out;
    }

    // Both channels are bounded to the worker count: the feeder blocks once
    // every worker has a site in flight, and workers block once the drain
    // thread falls behind — memory stays O(workers), not O(sites).
    let (work_tx, work_rx) = crossbeam::channel::bounded::<SiteId>(workers);
    let (res_tx, res_rx) = crossbeam::channel::bounded::<(SiteId, ProbeOutcome)>(workers);
    let mut out = std::thread::scope(|scope| {
        scope.spawn(move || {
            for &s in sites {
                if work_tx.send(s).is_err() {
                    break; // all workers gone (only possible on panic)
                }
            }
        });
        for _ in 0..workers {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                // each worker keeps its own caching resolver, like each of
                // the paper's monitoring threads resolving independently
                let mut resolver = Resolver::new();
                while let Ok(site) = work_rx.recv() {
                    let outcome = probe_site(ctx, &mut resolver, site, week, salt, ipv6_day_mode);
                    res_tx.send((site, outcome)).expect("result channel open");
                }
                // merge this worker's metric shard at pool join: totals are
                // then independent of scheduling and worker count
                ipv6web_obs::flush_thread();
            });
        }
        drop(res_tx);
        drop(work_rx);
        res_rx.iter().collect::<Vec<_>>()
    });
    out.sort_by_key(|(s, _)| s.0);
    out
}

/// Runs a full weekly campaign for one vantage point.
///
/// `list` supplies the ranked-list snapshots; `extra_ids` are the vantage
/// point's external inputs (Penn's DNS-cache tail), ingested when the
/// vantage point has `external_inputs` and the site has churned in.
/// `extra_first_seen(id)` gives each extra site's first availability week.
pub fn run_campaign(
    ctx: &ProbeContext<'_>,
    vantage: &VantagePoint,
    list: &TopList,
    extra_ids: &[u32],
    extra_first_seen: impl Fn(u32) -> u32,
    cfg: &CampaignConfig,
) -> MonitorDb {
    let workers = cfg.validated_workers();
    let mut db = MonitorDb::new(vantage.name.clone());
    let mut monitored = MonitoredSet::new();
    for week in vantage.start_week..cfg.total_weeks {
        monitored.ingest(week, list.snapshot(week));
        if vantage.external_inputs {
            monitored
                .ingest(week, extra_ids.iter().copied().filter(|&id| extra_first_seen(id) <= week));
        }
        // randomized order per round "to avoid time-of-day biases"
        let mut order: Vec<SiteId> = monitored.members().map(SiteId).collect();
        let mut rng = derive_rng(ctx.seed, &format!("{}:order:{week}", vantage.name));
        order.shuffle(&mut rng);

        for (site, outcome) in run_pool(ctx, &order, week, 0, false, workers) {
            let added = monitored.added_week(site.0).expect("probed sites are monitored");
            apply_outcome(&mut db, site, added, week, outcome);
        }
    }
    db
}

/// Runs the World IPv6 Day side experiment: `cfg.ipv6_day_rounds` rounds
/// against the participant subset, with server-side IPv6 penalties lifted.
/// Returns a separate database whose samples all carry the event week.
pub fn run_ipv6_day_rounds(
    ctx: &ProbeContext<'_>,
    vantage: &VantagePoint,
    participants: &[SiteId],
    event_week: u32,
    cfg: &CampaignConfig,
) -> MonitorDb {
    let workers = cfg.validated_workers();
    let mut db = MonitorDb::new(format!("{} (IPv6 Day)", vantage.name));
    for round in 0..cfg.ipv6_day_rounds {
        for (site, outcome) in run_pool(ctx, participants, event_week, round + 1, true, workers) {
            apply_outcome(&mut db, site, event_week, event_week, outcome);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disturbance::{DisturbanceConfig, Disturbances};
    use ipv6web_bgp::BgpTable;
    use ipv6web_netsim::TcpConfig;
    use ipv6web_stats::RelativeCiRule;
    use ipv6web_topology::{generate as gen_topo, AsId, Family, Tier, TopologyConfig};
    use ipv6web_web::{build_zone, population, PopulationConfig, Site};

    struct World {
        topo: ipv6web_topology::Topology,
        sites: Vec<Site>,
        zone: ipv6web_dns::ZoneDb,
        table_v4: BgpTable,
        table_v6: BgpTable,
        disturbances: Disturbances,
        list: TopList,
        vantage: VantagePoint,
    }

    fn world(n_sites: usize) -> World {
        let topo = gen_topo(&TopologyConfig::test_small(), 77);
        let mut pop_cfg = PopulationConfig::test_small(20);
        pop_cfg.n_sites = n_sites;
        let sites = population::generate(&pop_cfg, &topo, 77);
        let zone = build_zone(&topo, &sites);
        let vantage_as =
            topo.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
        let mut dests: Vec<AsId> = sites.iter().map(|s| s.v4_as).collect();
        dests.extend(sites.iter().filter_map(|s| s.v6.as_ref().map(|v| v.dest_as)));
        dests.sort();
        dests.dedup();
        let table_v4 = BgpTable::build(&topo, vantage_as, Family::V4, &dests);
        let table_v6 = BgpTable::build(&topo, vantage_as, Family::V6, &dests);
        let disturbances = Disturbances::generate(&DisturbanceConfig::paper(), sites.len(), 20, 77);
        let list = TopList::from_parts(sites.iter().map(|s| (s.id.0, s.rank, s.first_seen_week)));
        let vantage = VantagePoint {
            name: "TestVP".into(),
            location: "Lab".into(),
            as_id: vantage_as,
            start_week: 0,
            has_as_path: true,
            white_listed: false,
            kind: crate::vantage::VantageKind::Academic,
            external_inputs: false,
        };
        World { topo, sites, zone, table_v4, table_v6, disturbances, list, vantage }
    }

    fn ctx<'a>(w: &'a World) -> ProbeContext<'a> {
        ProbeContext {
            topo: &w.topo,
            sites: &w.sites,
            zone: &w.zone,
            table_v4: &w.table_v4,
            table_v6: &w.table_v6,
            disturbances: &w.disturbances,
            tcp: TcpConfig::paper(),
            ci_rule: RelativeCiRule::paper(),
            identity_threshold: 0.06,
            round_noise_sigma: 0.08,
            seed: 42,
            vantage_name: "TestVP",
            white_listed: false,
            v6_epoch: None,
        }
    }

    #[test]
    fn campaign_produces_samples_for_dual_sites() {
        let w = world(400);
        let c = ctx(&w);
        let cfg = CampaignConfig::test_small();
        let db = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg);
        assert!(db.len() > 300, "most sites monitored, got {}", db.len());
        let dual: Vec<SiteId> = db.dual_stack_sites().collect();
        assert!(!dual.is_empty(), "some dual-stack sites observed");
        let with_samples =
            dual.iter().filter(|s| !db.record(**s).unwrap().samples_v4.is_empty()).count();
        assert!(with_samples > 0, "performance samples collected");
        // v4-only sites must have no samples
        for (site, rec) in db.iter() {
            if rec.dual_since.is_none() {
                assert!(rec.samples_v4.is_empty(), "{site}: v4-only site sampled");
            }
        }
    }

    #[test]
    fn campaign_deterministic_across_worker_counts() {
        let w = world(120);
        let c = ctx(&w);
        let mut cfg1 = CampaignConfig::test_small();
        cfg1.total_weeks = 6;
        cfg1.workers = 1;
        let mut cfg8 = cfg1;
        cfg8.workers = 8;
        let db1 = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg1);
        let db8 = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg8);
        assert_eq!(db1, db8, "scheduling must not affect results");
    }

    #[test]
    fn config_validation_rejects_bad_worker_counts() {
        assert!(CampaignConfig::paper().validate().is_ok());
        assert!(CampaignConfig::test_small().validate().is_ok());
        let mut zero = CampaignConfig::test_small();
        zero.workers = 0;
        assert!(zero.validate().is_err());
        let mut over = CampaignConfig::test_small();
        over.workers = over.max_workers + 1;
        assert!(over.validate().is_err(), "over-cap must be an error, not a clamp");
        let mut no_cap = CampaignConfig::test_small();
        no_cap.max_workers = 0;
        assert!(no_cap.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid campaign config")]
    fn campaign_panics_on_over_cap_workers() {
        let w = world(10);
        let c = ctx(&w);
        let mut cfg = CampaignConfig::test_small();
        cfg.workers = cfg.max_workers + 10;
        run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg);
    }

    #[test]
    fn late_start_vantage_sees_fewer_weeks() {
        let w = world(150);
        let c = ctx(&w);
        let mut late = w.vantage.clone();
        late.start_week = 15;
        let cfg = CampaignConfig::test_small();
        let db = run_campaign(&c, &late, &w.list, &[], |_| 0, &cfg);
        for (_, rec) in db.iter() {
            assert!(rec.added_week >= 15);
            for s in rec.samples_v4.iter().chain(&rec.samples_v6) {
                assert!(s.week >= 15);
            }
        }
    }

    #[test]
    fn external_inputs_only_for_flagged_vantage() {
        let w = world(100);
        let c = ctx(&w);
        let mut cfg = CampaignConfig::test_small();
        cfg.total_weeks = 3;
        let extra = [5000u32, 5001];
        // not flagged: extras ignored (and they're beyond the site vec, so
        // probing them would panic — their absence proves they're skipped)
        let db = run_campaign(&c, &w.vantage, &w.list, &extra, |_| 0, &cfg);
        assert!(db.record(SiteId(5000)).is_none());
    }

    #[test]
    fn churned_sites_join_late() {
        let w = world(300);
        let c = ctx(&w);
        let cfg = CampaignConfig::test_small();
        let db = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg);
        let late_site = w
            .sites
            .iter()
            .find(|s| (5..cfg.total_weeks - 1).contains(&s.first_seen_week))
            .expect("some churned site");
        let rec = db.record(late_site.id).expect("monitored eventually");
        assert_eq!(rec.added_week, late_site.first_seen_week);
    }

    #[test]
    fn reachability_grows_over_campaign() {
        let w = world(500);
        let c = ctx(&w);
        let cfg = CampaignConfig::test_small();
        let db = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg);
        let early = db.reachability_at(1);
        let late = db.reachability_at(cfg.total_weeks - 1);
        // churn adds v4-only sites to the denominator, so small dips are
        // legitimate; collapse is not (this population publishes all AAAA
        // records from week 0)
        assert!(late >= early * 0.8, "reachability must not collapse: {early} -> {late}");
        assert!(late > 0.0);
    }

    #[test]
    fn ipv6_day_rounds_accumulate_samples() {
        let w = world(300);
        let c = ctx(&w);
        let cfg = CampaignConfig::test_small();
        let participants: Vec<SiteId> = w
            .sites
            .iter()
            .filter(|s| s.v6.as_ref().is_some_and(|v| v.ipv6_day_participant && v.from_week <= 10))
            .map(|s| s.id)
            .collect();
        assert!(!participants.is_empty(), "some participants in population");
        let db = run_ipv6_day_rounds(&c, &w.vantage, &participants, 10, &cfg);
        let sampled = participants
            .iter()
            .filter(|s| db.record(**s).is_some_and(|r| r.samples_v4.len() >= 2))
            .count();
        assert!(sampled > 0, "multiple rounds must stack samples");
        // all samples carry the event week
        for (_, rec) in db.iter() {
            for s in rec.samples_v4.iter().chain(&rec.samples_v6) {
                assert_eq!(s.week, 10);
            }
        }
    }
}
